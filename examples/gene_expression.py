"""Biclustering gene-expression data with maximal biclique enumeration.

One of the paper's cited applications (§1): in a binary gene×condition
matrix ("gene g is differentially expressed under condition c"), every
inclusion-maximal bicluster — a set of genes co-expressed across a set
of conditions — is a maximal biclique of the bipartite graph.

We synthesize an expression matrix with three overlapping planted
modules plus speckle noise, enumerate all maximal bicliques with GMBE,
and rank biclusters by area to recover the modules.

Run:  python examples/gene_expression.py
"""

import numpy as np

from repro import BicliqueCollector
from repro.gmbe import gmbe_gpu
from repro.graph import BipartiteGraph

RNG = np.random.default_rng(11)

N_GENES = 400
N_CONDITIONS = 60
#: planted co-expression modules: (genes, conditions)
MODULES = [(40, 12), (30, 9), (25, 15)]
NOISE_P = 0.015


def build_expression_matrix() -> tuple[np.ndarray, list[tuple[set, set]]]:
    matrix = RNG.random((N_GENES, N_CONDITIONS)) < NOISE_P
    planted: list[tuple[set, set]] = []
    prev_genes: np.ndarray | None = None
    for n_genes, n_conds in MODULES:
        genes = RNG.choice(N_GENES, size=n_genes, replace=False)
        if prev_genes is not None:  # overlap a third with the previous module
            genes[: n_genes // 3] = prev_genes[: n_genes // 3]
            genes = np.unique(genes)
        conds = RNG.choice(N_CONDITIONS, size=n_conds, replace=False)
        matrix[np.ix_(genes, conds)] = True
        planted.append((set(genes.tolist()), set(conds.tolist())))
        prev_genes = genes
    return matrix, planted


def main() -> None:
    matrix, planted = build_expression_matrix()
    graph = BipartiteGraph.from_biadjacency(matrix, name="expression")
    print(f"expression graph: {graph}")

    collector = BicliqueCollector()
    result = gmbe_gpu(graph, collector)
    print(f"{result.n_maximal} maximal biclusters found")

    # Rank by bicluster area; the planted modules should top the list.
    ranked = sorted(collector.bicliques, key=lambda b: b.n_edges, reverse=True)
    print("\ntop biclusters (genes x conditions = area):")
    for b in ranked[:6]:
        print(f"  {len(b.left):4d} x {len(b.right):2d} = {b.n_edges}")

    recovered = 0
    for genes, conds in planted:
        if any(
            genes <= set(b.left) and conds <= set(b.right) for b in ranked[:20]
        ):
            recovered += 1
    print(f"\nplanted modules recovered in top-20: {recovered}/{len(MODULES)}")
    assert recovered == len(MODULES)


if __name__ == "__main__":
    main()
