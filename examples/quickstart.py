"""Quickstart: enumerate maximal bicliques three ways.

Builds the example bipartite graph from the paper's Fig. 1, enumerates
its maximal bicliques with a serial CPU baseline, with sequential GMBE,
and with GMBE on the simulated GPU, and shows they agree.

Run:  python examples/quickstart.py
"""

from repro import BicliqueCollector, BipartiteGraph, oombea
from repro.gmbe import gmbe_gpu, gmbe_host

# --- 1. Build a bipartite graph -------------------------------------
# The paper's G0: customers u1..u5 (ids 0..4) and products v1..v4
# (ids 0..3); an edge means "u bought v".
edges = [
    (0, 0), (1, 0),                    # v1 bought by u1, u2
    (0, 1), (1, 1), (2, 1), (3, 1),    # v2 bought by u1..u4
    (0, 2), (1, 2), (3, 2),            # v3 bought by u1, u2, u4
    (1, 3), (3, 3), (4, 3),            # v4 bought by u2, u4, u5
]
graph = BipartiteGraph.from_edges(5, 4, edges, name="G0")
print(graph)

# --- 2. Enumerate with a CPU baseline --------------------------------
collector = BicliqueCollector()
result = oombea(graph, collector)
print(f"\nooMBEA found {result.n_maximal} maximal bicliques:")
for biclique in sorted(collector.bicliques):
    left = ", ".join(f"u{u + 1}" for u in biclique.left)
    right = ", ".join(f"v{v + 1}" for v in biclique.right)
    print(f"  {{{left}}} x {{{right}}}")

# --- 3. Enumerate with GMBE (sequential, then simulated GPU) ---------
host = gmbe_host(graph)
gpu_collector = BicliqueCollector()
gpu = gmbe_gpu(graph, gpu_collector)

assert host.n_maximal == gpu.n_maximal == result.n_maximal
assert gpu_collector.as_set() == collector.as_set()
print(f"\nGMBE (host) agrees: {host.n_maximal} bicliques")
print(
    f"GMBE (simulated A100) agrees: {gpu.n_maximal} bicliques "
    f"in {gpu.sim_time * 1e6:.2f} simulated microseconds"
)
print(
    f"  nodes generated: {gpu.counters.nodes_generated}, "
    f"pruned candidates: {gpu.counters.pruned}, "
    f"modeled lane utilization: {gpu.extras['warp_efficiency']:.0%}"
)
