"""Fraud-ring detection in an e-commerce purchase graph.

The paper's motivating application (§1): online sellers inflate ratings
through coordinated fake purchases, so *a large group of customers all
buying the same set of products* is suspicious.  Every such group is a
maximal biclique of the customer-product graph.

This example plants three fraud rings inside a realistic power-law
purchase background, enumerates all maximal bicliques with GMBE on the
simulated GPU, filters them by size, and checks the planted rings were
recovered.

Run:  python examples/fraud_detection.py
"""

import numpy as np

from repro import BicliqueCollector
from repro.gmbe import gmbe_gpu
from repro.graph import BipartiteGraph, power_law_bipartite

RNG = np.random.default_rng(42)

N_CUSTOMERS = 3000
N_PRODUCTS = 900
#: (customers, products) per planted fraud ring
RINGS = [(14, 7), (11, 9), (17, 5)]
#: minimum ring size we alert on: at least this many customers AND products
MIN_CUSTOMERS, MIN_PRODUCTS = 8, 4


def build_market() -> tuple[BipartiteGraph, list[tuple[set, set]]]:
    """Organic purchases plus planted rings; returns graph and rings."""
    organic = power_law_bipartite(
        N_CUSTOMERS, N_PRODUCTS, 12_000, exponent_u=2.6, exponent_v=2.2, seed=7
    )
    edges = [
        np.column_stack(
            [
                np.repeat(np.arange(N_CUSTOMERS), np.diff(organic.u_indptr)),
                organic.u_indices,
            ]
        )
    ]
    planted: list[tuple[set, set]] = []
    for n_cust, n_prod in RINGS:
        custs = RNG.choice(N_CUSTOMERS, size=n_cust, replace=False)
        prods = RNG.choice(N_PRODUCTS, size=n_prod, replace=False)
        edges.append(
            np.column_stack(
                [np.repeat(custs, n_prod), np.tile(prods, n_cust)]
            )
        )
        planted.append((set(custs.tolist()), set(prods.tolist())))
    graph = BipartiteGraph.from_edges(
        N_CUSTOMERS, N_PRODUCTS, np.concatenate(edges), name="market"
    )
    return graph, planted


def main() -> None:
    graph, planted = build_market()
    print(f"purchase graph: {graph}")

    collector = BicliqueCollector()
    result = gmbe_gpu(graph, collector)
    print(
        f"GMBE enumerated {result.n_maximal} maximal bicliques "
        f"({result.sim_time * 1e3:.3f} simulated ms on an A100)"
    )

    suspicious = [
        b
        for b in collector.bicliques
        if len(b.left) >= MIN_CUSTOMERS and len(b.right) >= MIN_PRODUCTS
    ]
    suspicious.sort(key=lambda b: b.n_edges, reverse=True)
    print(f"\n{len(suspicious)} suspicious co-purchase groups "
          f"(>= {MIN_CUSTOMERS} customers x {MIN_PRODUCTS} products):")
    for b in suspicious[:10]:
        print(
            f"  {len(b.left)} customers x {len(b.right)} products "
            f"({b.n_edges} purchases)"
        )

    # Verify every planted ring is contained in some reported group.
    recovered = 0
    for custs, prods in planted:
        if any(
            custs <= set(b.left) and prods <= set(b.right)
            for b in suspicious
        ):
            recovered += 1
    print(f"\nplanted rings recovered: {recovered}/{len(planted)}")
    assert recovered == len(planted), "a planted ring went undetected!"


if __name__ == "__main__":
    main()
