"""Beyond enumeration: constrained queries, maximum biclique, streaming.

Three sibling problems the paper's introduction motivates, all built on
the same machinery:

1. size-constrained enumeration — "give me only groups of at least
   6 customers x 4 products" with core reduction and bound pruning;
2. maximum biclique — the single densest co-purchase block;
3. streaming maintenance — keep the answer set current while purchase
   edges arrive and expire.

Run:  python examples/advanced_queries.py
"""

import time

import numpy as np

from repro.core import (
    BicliqueCollector,
    constrained_mbe,
    maximum_biclique,
    oombea,
)
from repro.graph import planted_bicliques
from repro.streaming import BicliqueMaintainer

RNG = np.random.default_rng(5)


def main() -> None:
    graph = planted_bicliques(
        600, 400,
        [(12, 7), (9, 9), (15, 5)],
        noise_p=0.006,
        overlap=0.3,
        seed=13,
        name="market",
    )
    print(f"graph: {graph}")

    # --- full enumeration as the baseline -----------------------------
    full = BicliqueCollector()
    full_res = oombea(graph, full)
    print(f"\nfull enumeration: {full_res.n_maximal} maximal bicliques "
          f"({full_res.counters.nodes_generated:,} nodes)")

    # --- 1. constrained query ------------------------------------------
    con = BicliqueCollector()
    con_res = constrained_mbe(graph, 6, 4, con)
    print(
        f"constrained (>=6 x >=4): {con_res.n_maximal} bicliques, "
        f"explored {con_res.counters.nodes_generated:,} nodes "
        f"({full_res.counters.nodes_generated / max(con_res.counters.nodes_generated, 1):.0f}x fewer)"
    )
    for b in sorted(con.bicliques, key=lambda b: -b.n_edges)[:5]:
        print(f"   {len(b.left):3d} x {len(b.right):2d} = {b.n_edges} edges")

    # --- 2. maximum biclique -------------------------------------------
    best, search = maximum_biclique(graph, objective="edges")
    print(
        f"\nmaximum biclique: {len(best.left)} x {len(best.right)} "
        f"({best.n_edges} edges) after {search.counters.nodes_generated:,} "
        f"nodes (vs {full_res.counters.nodes_generated:,} for full enumeration)"
    )

    # --- 3. streaming maintenance ---------------------------------------
    maintainer = BicliqueMaintainer(graph)
    print(f"\nstreaming: maintaining {len(maintainer)} bicliques")
    t0 = time.perf_counter()
    n_updates = 25
    for _ in range(n_updates):
        u = int(RNG.integers(0, graph.n_u))
        v = int(RNG.integers(0, graph.n_v))
        if maintainer.graph.has_edge(u, v):
            maintainer.delete_edge(u, v)
        else:
            maintainer.insert_edge(u, v)
    dt = time.perf_counter() - t0
    assert maintainer.bicliques == maintainer.recompute()
    print(
        f"{n_updates} edge updates in {dt:.2f}s "
        f"({1e3 * dt / n_updates:.1f} ms/update); set now has "
        f"{len(maintainer)} bicliques — audited against full recompute"
    )


if __name__ == "__main__":
    main()
