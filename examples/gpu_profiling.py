"""Profiling GMBE on the simulated GPU.

Walks through the observability surface of the simulator on one
dataset analog: scheduling schemes, the active-SM timeline (the paper's
Fig. 9 diagnostic), queue traffic, the memory model of §3.1/§4.1, and
multi-GPU scaling — everything a performance engineer would look at
before touching a real A100.

Run:  python examples/gpu_profiling.py
"""

from repro.bench.common import scale_device
from repro.datasets import load
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim import A100, MemoryModel, active_sm_curve
from repro.graph.stats import compute_stats

DATASET = "EE"  # the EuAll analog: skewed, biclique-rich


def main() -> None:
    graph = load(DATASET)
    device = scale_device(A100)  # capacity matched to analog scale
    print(f"dataset: {graph}")
    print(f"device:  {device.name} ({device.n_sms} SMs x "
          f"{device.warps_per_sm} warps)")

    # --- scheduling schemes ------------------------------------------
    runs = {}
    for scheme in ("task", "warp", "block"):
        res = gmbe_gpu(graph, config=GMBEConfig(scheduling=scheme), device=device)
        runs[scheme] = res
        rep = res.extras["report"]
        print(
            f"\n[{scheme:5s}] {res.n_maximal} bicliques in "
            f"{res.sim_time * 1e6:.1f} simulated us | "
            f"tasks={rep.tasks_executed} splits={rep.tasks_split} | "
            f"lane util={res.extras['warp_efficiency']:.0%}"
        )
        if scheme == "task":
            q = res.extras["queue_stats"][0]
            print(
                f"        queue ops: {q.local_enqueues} local enq, "
                f"{q.global_enqueues} global enq, {q.spills} spills"
            )

    # --- active-SM timeline (Fig. 9) ---------------------------------
    print("\nactive SMs over time (10 samples per scheme):")
    for scheme, res in runs.items():
        rec = res.extras["report"].recorders[0]
        _, counts = active_sm_curve(rec, n_samples=10)
        bar = " ".join(f"{c:3d}" for c in counts)
        print(f"  {scheme:5s} |{bar}|  finish={res.sim_time * 1e6:.1f}us")

    # --- memory model (§3.1 vs §4.1) ----------------------------------
    stats = compute_stats(graph)
    mem = MemoryModel(stats)
    reuse = mem.demand_with_reuse(device)
    naive = mem.demand_without_reuse(device)
    print(
        f"\nmemory demand: node-reuse {reuse.total_bytes / 1e6:.1f} MB vs "
        f"naive {naive.total_bytes / 1e6:.1f} MB "
        f"({naive.total_bytes / reuse.total_bytes:.0f}x saving)"
    )
    print(
        f"max concurrent node-reuse procedures in {device.name} memory: "
        f"{mem.max_concurrent_procedures(device):,}"
    )

    # --- multi-GPU scaling (Fig. 13) ----------------------------------
    print("\nmulti-GPU scaling:")
    base = None
    for n in (1, 2, 4):
        res = gmbe_gpu(graph, device=device, n_gpus=n)
        base = base or res.sim_time
        print(
            f"  {n} GPU(s): {res.sim_time * 1e6:8.1f} us "
            f"(speedup {base / res.sim_time:4.2f}x)"
        )


if __name__ == "__main__":
    main()
