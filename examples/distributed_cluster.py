"""Distributed GMBE across simulated machines (the paper's future work).

The paper (§5) sketches extending GMBE beyond one machine: share the
``processing_v`` counter over the network, keep everything else local.
This example runs the BookCrossing analog on 1, 2 and 4 simulated
machines (2 V100s each) and shows the claim-batching trade-off: with
per-vertex claims a slow network erases the scaling; reserving vertices
in batches restores it.

Run:  python examples/distributed_cluster.py
"""

from repro.bench.common import scale_device
from repro.datasets import load
from repro.gmbe import ClusterSpec, gmbe_cluster
from repro.gpusim import V100

DATASET = "EE"
RTT_CYCLES = 20_000  # ~14 us network round-trip at V100 clock


def main() -> None:
    graph = load(DATASET)
    device = scale_device(V100)
    print(f"dataset: {graph}")
    print(f"per-machine GPUs: 2x {device.name}, counter RTT ~"
          f"{RTT_CYCLES / device.clock_hz * 1e6:.1f} us\n")

    baseline = None
    for n_nodes in (1, 2, 4):
        for batch in (1, 32):
            spec = ClusterSpec(
                n_nodes=n_nodes,
                gpus_per_node=2,
                device=device,
                remote_pull_cycles=RTT_CYCLES,
                claim_batch=batch,
            )
            res = gmbe_cluster(graph, cluster=spec)
            if baseline is None:
                baseline = res.sim_time
            per_node = " ".join(
                f"{t * 1e6:.0f}us" for t in res.extras["per_node_seconds"]
            )
            print(
                f"machines={n_nodes} claim_batch={batch:2d}: "
                f"{res.sim_time * 1e6:7.1f} us "
                f"(speedup {baseline / res.sim_time:4.2f}x) "
                f"per-node finish: {per_node}"
            )
        print()


if __name__ == "__main__":
    main()
