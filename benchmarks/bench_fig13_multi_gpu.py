"""Bench target: Fig. 13 — multi-GPU scalability (1/2/4/8 V100s).

Paper shape: near-linear scaling on BookCrossing and Github because the
shared atomic counter balances roots across devices and per-GPU finish
times stay close (each GPU "finishes its execution almost at the same
time").
"""

from conftest import SCALE, once

from repro.bench import experiment_fig13, print_fig13


def test_fig13_multi_gpu_scaling(benchmark):
    rows = once(benchmark, lambda: experiment_fig13(scale=SCALE))
    print_fig13(rows)

    by_code: dict[str, dict[int, object]] = {}
    for r in rows:
        by_code.setdefault(r.code, {})[r.n_gpus] = r

    for code, per in by_code.items():
        t1, t2, t4 = per[1].total_s, per[2].total_s, per[4].total_s
        # More GPUs never slower; clear speedups at 2 and 4 GPUs.  At
        # analog scale the hub tree's split chain (a critical path the
        # full-size datasets amortize away) caps scaling below the
        # paper's near-linear 8-GPU curve — see EXPERIMENTS.md.
        assert t2 <= t1 and t4 <= t2, code
        assert t1 / t2 > 1.3, (code, t1 / t2)
        assert t1 / t4 > 1.7, (code, t1 / t4)
        # Per-GPU finish times stay reasonably close (the paper's
        # load-balance claim; looser at 8 GPUs where work runs out).
        for n, row in per.items():
            if 1 < n <= 4:
                assert row.imbalance < 1.6, (code, n, row.imbalance)
            elif n > 4:
                assert row.imbalance < 2.0, (code, n, row.imbalance)
