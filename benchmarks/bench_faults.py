"""Fault-machinery overhead benchmark: robust mode vs plain mode.

Times adjacent plain/robust pairs of the same GMBE enumeration — robust
meaning the robustness machinery is armed but idle (a zero-probability
:class:`~repro.gpusim.faults.FaultPlan`, which switches the kernel into
lineage tracking + exactly-once emission ledger without ever firing a
fault) — and reports the median paired wall-clock throughput ratio
``plain / robust``.  The acceptance criterion is that always-on crash
tolerance costs at most 5% (ratio ≥ 0.95); ``check_regression.py
--only faults`` gates this against the committed ``BENCH_faults.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_faults.py
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.datasets import load
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim.faults import FaultPlan

OUT_PATH = Path(__file__).resolve().parent / "BENCH_faults.json"

CODES = ("Mti", "WA")
REPEATS = 9  # odd, so the paired-ratio median is a real sample
#: split-friendly bounds so the two-level queues and the ledger both see
#: real traffic (roots + split children), not just root tasks
CONFIG = GMBEConfig(bound_height=4, bound_size=32)


def _time_run(graph, *, robust: bool) -> tuple[float, int]:
    plan = FaultPlan(0) if robust else None  # zero probs: never fires
    t0 = time.perf_counter()
    res = gmbe_gpu(graph, config=CONFIG, fault_plan=plan)
    wall = time.perf_counter() - t0
    if robust:
        log = res.extras["fault_log"]
        assert len(log) == 0, "zero-probability plan fired a fault"
    return wall, res.n_maximal


def run() -> dict:
    per_code = {}
    ratios = []
    for code in CODES:
        graph = load(code)
        # untimed warmup pair: first-touch allocations and dataset
        # caches would otherwise land on whichever side runs first
        _time_run(graph, robust=False)
        _time_run(graph, robust=True)
        plain_times, robust_times, pair_ratios = [], [], []
        n_plain = n_robust = None
        for i in range(REPEATS):
            # each repeat times one adjacent plain/robust pair — the two
            # sides share the same noise window, so machine drift
            # (thermal, co-tenant load) divides out of the pair's ratio;
            # alternating the order cancels any first-runner advantage
            if i % 2 == 0:
                p, n_plain = _time_run(graph, robust=False)
                r, n_robust = _time_run(graph, robust=True)
            else:
                r, n_robust = _time_run(graph, robust=True)
                p, n_plain = _time_run(graph, robust=False)
            plain_times.append(p)
            robust_times.append(r)
            pair_ratios.append(p / r)
        assert n_plain == n_robust, (
            f"{code}: robust mode changed the result "
            f"({n_robust} != {n_plain})"
        )
        # Median of the paired ratios: robust against a noise spike
        # hitting any single repeat, unlike best-of-N on each side.
        ratio = sorted(pair_ratios)[len(pair_ratios) // 2]
        per_code[code] = {
            "plain_s": min(plain_times),
            "robust_s": min(robust_times),
            "throughput_ratio": ratio,
            "n_maximal": n_plain,
        }
        ratios.append(ratio)
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return {
        "bench": "fault_overhead",
        "config": {
            "codes": list(CODES),
            "repeats": REPEATS,
            "bound_height": CONFIG.bound_height,
            "bound_size": CONFIG.bound_size,
        },
        "per_code": per_code,
        "fault_overhead_ratio": geomean,
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    for code, row in result["per_code"].items():
        print(f"{code:>4} plain: {row['plain_s'] * 1e3:8.1f} ms   "
              f"robust: {row['robust_s'] * 1e3:8.1f} ms   "
              f"ratio: {row['throughput_ratio']:.3f}")
    print(f"fault-overhead throughput ratio: "
          f"{result['fault_overhead_ratio']:.3f} (>= 0.95 required)")
    print(f"snapshot written to {OUT_PATH}")


if __name__ == "__main__":
    main()
