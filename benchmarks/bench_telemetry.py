"""Telemetry overhead benchmark: disabled and enabled vs baseline.

Times adjacent baseline/disabled/enabled triples of the same GMBE
enumeration — *baseline* meaning no telemetry object anywhere,
*disabled* meaning a ``Telemetry(enabled=False)`` is passed (the hot
path must reduce to a single ``is_enabled`` check and hand the kernel
the shared null tracer), *enabled* meaning a full ``Telemetry()`` with
a ring sink collects spans, phase attribution, queue-depth samples, and
fault events.  Reports the median paired wall-clock throughput ratios
``baseline / disabled`` and ``baseline / enabled``.

Also times a *process-pool* pair: the same sharded enumeration over a
shared warm :class:`~repro.parallel.ProcessWorkerPool`, with telemetry
off and on — "on" exercises the full cross-process capture pipeline
(worker-side buffering, heartbeat-piggybacked flushes, trace
re-parenting and registry merge at the coordinator) and asserts the
merged trace is genuinely cross-process (worker ``sim.kernel`` spans
under the coordinator's ``shard.run`` spans, one trace id).

Acceptance criteria (gated by ``check_regression.py --only
telemetry-off`` / ``--only telemetry-on`` against the committed
``BENCH_telemetry.json``):

- disabled telemetry must keep >= 95% of baseline throughput
  (a disabled observability layer that is not free is a bug);
- enabled telemetry must keep >= 80% of baseline throughput;
- process-pool capture must keep >= 80% of the untraced process-pool
  throughput (``telemetry_procpool_ratio``).

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.datasets import load
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.telemetry import RingSink, Telemetry

OUT_PATH = Path(__file__).resolve().parent / "BENCH_telemetry.json"

CODES = ("Mti", "WA")
REPEATS = 9  # odd, so the paired-ratio median is a real sample
#: split-friendly bounds so phase attribution sees real traffic — queue
#: acquires, splits, and per-device depth samples, not just root tasks
CONFIG = GMBEConfig(bound_height=4, bound_size=32)

MODES = ("baseline", "disabled", "enabled")


def _time_run(graph, mode: str) -> tuple[float, int]:
    if mode == "baseline":
        telemetry = None
    elif mode == "disabled":
        telemetry = Telemetry(enabled=False)
    else:
        telemetry = Telemetry(sinks=[RingSink()])
    t0 = time.perf_counter()
    res = gmbe_gpu(graph, config=CONFIG, telemetry=telemetry)
    wall = time.perf_counter() - t0
    if mode == "enabled":
        spans = telemetry.ring.spans("sim.kernel")
        assert spans, "enabled telemetry recorded no sim.kernel span"
        assert "sim.tasks.executed" in telemetry.registry, (
            "enabled telemetry registered no simulator counters"
        )
    return wall, res.n_maximal


#: process-pool pair: small fixed shape — one warm shared pool, one
#: graph, few repeats; the paired ratio is the metric, not the times
PROC_CODE = "Mti"
PROC_SHARDS = 2
PROC_REPEATS = 5


def _time_procpool_run(graph, pool, telemetry) -> tuple[float, int]:
    from repro.sharding import ShardCoordinator

    coord = ShardCoordinator(
        graph, PROC_SHARDS, config=CONFIG, pool=pool, telemetry=telemetry
    )
    t0 = time.perf_counter()
    report = coord.run()
    wall = time.perf_counter() - t0
    return wall, report.n_maximal


def bench_procpool() -> dict:
    """Paired untraced/traced sharded runs over one warm process pool."""
    from repro.parallel import ProcessWorkerPool

    graph = load(PROC_CODE)
    pool = ProcessWorkerPool(PROC_SHARDS)
    try:
        # warm pair: worker spawn + first-task import cost lands here
        _time_procpool_run(graph, pool, None)
        _time_procpool_run(graph, pool, Telemetry(sinks=[RingSink()]))
        times = {"off": [], "on": []}
        ratios = []
        counts = {}
        for i in range(PROC_REPEATS):
            order = ("off", "on") if i % 2 == 0 else ("on", "off")
            wall = {}
            for mode in order:
                telemetry = (
                    None if mode == "off"
                    else Telemetry(sinks=[RingSink()])
                )
                wall[mode], counts[mode] = _time_procpool_run(
                    graph, pool, telemetry
                )
                times[mode].append(wall[mode])
                if mode == "on":
                    spans = telemetry.ring.spans()
                    kernels = [s for s in spans if s["name"] == "sim.kernel"]
                    runs = {s["span_id"] for s in spans
                            if s["name"] == "shard.run"}
                    assert len(kernels) == PROC_SHARDS, (
                        f"expected {PROC_SHARDS} worker sim.kernel spans, "
                        f"got {len(kernels)}"
                    )
                    assert all(k["parent_id"] in runs for k in kernels), (
                        "worker spans were not re-parented under shard.run"
                    )
                    assert len({s["trace_id"] for s in spans}) == 1, (
                        "cross-process records did not share one trace_id"
                    )
            ratios.append(wall["off"] / wall["on"])
        assert counts["off"] == counts["on"], (
            f"procpool telemetry changed the result ({counts})"
        )
    finally:
        pool.shutdown()
    return {
        "procpool_off_s": min(times["off"]),
        "procpool_on_s": min(times["on"]),
        "telemetry_procpool_ratio": sorted(ratios)[len(ratios) // 2],
        "procpool_n_maximal": counts["off"],
    }


def run() -> dict:
    per_code = {}
    disabled_ratios, enabled_ratios = [], []
    for code in CODES:
        graph = load(code)
        # untimed warmup triple: first-touch allocations and dataset
        # caches would otherwise land on whichever mode runs first
        for mode in MODES:
            _time_run(graph, mode)
        times = {mode: [] for mode in MODES}
        pair = {"disabled": [], "enabled": []}
        counts = {}
        for i in range(REPEATS):
            # each repeat times one adjacent triple — all three modes
            # share the same noise window, so machine drift (thermal,
            # co-tenant load) divides out of the paired ratios; rotating
            # the order cancels any first-runner advantage
            order = MODES[i % 3:] + MODES[: i % 3]
            wall = {}
            for mode in order:
                wall[mode], counts[mode] = _time_run(graph, mode)
                times[mode].append(wall[mode])
            pair["disabled"].append(wall["baseline"] / wall["disabled"])
            pair["enabled"].append(wall["baseline"] / wall["enabled"])
        assert counts["baseline"] == counts["disabled"] == counts["enabled"], (
            f"{code}: telemetry changed the result ({counts})"
        )
        # Median of the paired ratios: robust against a noise spike
        # hitting any single repeat, unlike best-of-N on each side.
        d_ratio = sorted(pair["disabled"])[len(pair["disabled"]) // 2]
        e_ratio = sorted(pair["enabled"])[len(pair["enabled"]) // 2]
        per_code[code] = {
            "baseline_s": min(times["baseline"]),
            "disabled_s": min(times["disabled"]),
            "enabled_s": min(times["enabled"]),
            "disabled_ratio": d_ratio,
            "enabled_ratio": e_ratio,
            "n_maximal": counts["baseline"],
        }
        disabled_ratios.append(d_ratio)
        enabled_ratios.append(e_ratio)

    def geomean(rs):
        return math.exp(sum(math.log(r) for r in rs) / len(rs))

    return {
        "bench": "telemetry_overhead",
        "config": {
            "codes": list(CODES),
            "repeats": REPEATS,
            "bound_height": CONFIG.bound_height,
            "bound_size": CONFIG.bound_size,
            "procpool": {
                "code": PROC_CODE,
                "shards": PROC_SHARDS,
                "repeats": PROC_REPEATS,
            },
        },
        "per_code": per_code,
        "telemetry_disabled_ratio": geomean(disabled_ratios),
        "telemetry_enabled_ratio": geomean(enabled_ratios),
        **bench_procpool(),
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    for code, row in result["per_code"].items():
        print(f"{code:>4} baseline: {row['baseline_s'] * 1e3:8.1f} ms   "
              f"disabled: {row['disabled_s'] * 1e3:8.1f} ms   "
              f"enabled: {row['enabled_s'] * 1e3:8.1f} ms")
        print(f"     disabled ratio: {row['disabled_ratio']:.3f}   "
              f"enabled ratio: {row['enabled_ratio']:.3f}")
    print(f"telemetry-disabled throughput ratio: "
          f"{result['telemetry_disabled_ratio']:.3f} (>= 0.95 required)")
    print(f"telemetry-enabled throughput ratio:  "
          f"{result['telemetry_enabled_ratio']:.3f} (>= 0.80 required)")
    print(f"procpool capture throughput ratio:   "
          f"{result['telemetry_procpool_ratio']:.3f} (>= 0.80 required)")
    print(f"snapshot written to {OUT_PATH}")


if __name__ == "__main__":
    main()
