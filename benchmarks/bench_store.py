"""Result-store benchmark: compression ratio and decode overhead.

Enumerates the registry datasets (CPU baseline — the store is
algorithm-agnostic) into a :class:`~repro.store.StoredResultSet` and
gates two machine-independent ratios in ``BENCH_store.json``:

``store_compression_ratio``
    geomean over datasets of ``materialized bytes / encoded bytes``,
    where "materialized" is the service cache's per-object byte model
    for the equivalent Python tuple.  The acceptance floor is 2.0 —
    i.e. encoded payload ≤ 0.5× the materialized list, the ISSUE's
    result-memory bound.

``store_decode_throughput_ratio``
    geomean over datasets of
    ``t(list(store) then iterate) / t(stream-iterate store)``.  Both
    sides pay the same block decode once; the numerator additionally
    builds the full list first, the way pre-store code consumed
    results.  Streaming must keep ≥ 0.8× of that decode-then-iterate
    throughput — i.e. serving straight off the compressed blocks may
    cost at most 25% over materializing, while holding O(1) results
    resident instead of O(output).

The bench itself asserts bit-identical round-trips (store contents ==
direct enumeration; union of cursor pages == full iteration), so the
gated ratios can never be bought with dropped or reordered bicliques.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_store.py
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.api import enumerate_maximal_bicliques
from repro.datasets import load
from repro.store import StoredResultSet, materialized_nbytes

OUT_PATH = Path(__file__).resolve().parent / "BENCH_store.json"

CODES = ("Mti", "WA")
ALGO = "oombea"
REPEATS = 3
PAGE_LIMIT = 512


def _time(fn) -> float:
    best = math.inf
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_code(code: str) -> dict:
    graph = load(code)
    direct = enumerate_maximal_bicliques(graph, algorithm=ALGO)
    store = StoredResultSet.from_bicliques(direct)

    # Correctness first: the ratios below are meaningless unless the
    # store is bit-identical to the direct enumeration.
    assert list(store) == direct, f"{code}: store round-trip mismatch"
    paged = []
    cursor = None
    while True:
        items, cursor = store.page(cursor, PAGE_LIMIT)
        paged.extend(items)
        if cursor is None:
            break
    assert paged == direct, f"{code}: page union mismatch"

    encoded = store.nbytes
    listed = materialized_nbytes(direct)

    def _stream():
        n = 0
        for b in store:
            n += len(b.left)
        return n

    def _materialize_then_iterate():
        n = 0
        for b in store.as_tuple():
            n += len(b.left)
        return n

    t_stream = _time(_stream)
    t_list = _time(_materialize_then_iterate)
    return {
        "n_bicliques": len(direct),
        "encoded_bytes": encoded,
        "materialized_bytes": listed,
        "compression_ratio": listed / encoded,
        "stream_s": t_stream,
        "materialize_s": t_list,
        "decode_throughput_ratio": t_list / t_stream,
    }


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run() -> dict:
    per_code = {code: _bench_code(code) for code in CODES}
    return {
        "bench": "store",
        "config": {
            "codes": list(CODES),
            "algorithm": ALGO,
            "repeats": REPEATS,
            "page_limit": PAGE_LIMIT,
        },
        "per_code": per_code,
        "store_compression_ratio": _geomean(
            r["compression_ratio"] for r in per_code.values()
        ),
        "store_decode_throughput_ratio": _geomean(
            r["decode_throughput_ratio"] for r in per_code.values()
        ),
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    for code, r in result["per_code"].items():
        print(
            f"{code:>4}: {r['n_bicliques']} bicliques  "
            f"encoded {r['encoded_bytes']}B vs list {r['materialized_bytes']}B "
            f"({r['compression_ratio']:.2f}x)  "
            f"stream/materialize {r['decode_throughput_ratio']:.2f}x"
        )
    print(f"compression ratio:       "
          f"{result['store_compression_ratio']:.2f}x (geomean, floor 2.0)")
    print(f"decode throughput ratio: "
          f"{result['store_decode_throughput_ratio']:.2f}x (geomean, floor 0.8)")
    print(f"snapshot written to {OUT_PATH}")


if __name__ == "__main__":
    main()
