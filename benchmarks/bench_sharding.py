"""Sharded-enumeration scaling benchmark: 4 shards vs one device.

Measures, per registry graph, the *simulated* makespan of a 4-shard
:class:`~repro.sharding.ShardCoordinator` run (each shard on its own
device) against the single-node simulated time, on a deliberately
work-bound device model (one SM): sharding exists for graphs that
saturate a device, so the regime where total work — not the critical
path — dominates is the one the balancer must win in.  Simulated cycles
are deterministic, which makes the gated ratio machine-stable: the gate
tolerance is slack for intentional snapshot drift only.

The headline metric is ``shard_efficiency_4x``: the geomean over graphs
of ``single_time / (4 × shard_makespan)`` — 1.0 is perfect linear
scaling, and ``check_regression.py --only sharding`` holds the floor at
0.7× of ideal.  Merged-set equality with the single-node run is
asserted inside the benchmark for every graph: a speedup achieved by
dropping or duplicating bicliques must never produce a snapshot.

The per-code rows also record the round-robin balancer's makespan — the
baseline the degree-aware greedy balancer has to beat — as context for
reading the snapshot, not as a gated ratio.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_sharding.py
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core import BicliqueCollector
from repro.datasets import load
from repro.gmbe import gmbe_gpu
from repro.gpusim.device import A100
from repro.sharding import ShardCoordinator

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sharding.json"

CODES = ("Mti", "TM", "WC", "YG", "SO")
N_SHARDS = 4
#: one SM: the fully work-bound regime (a saturated device), where the
#: shard balancer's weight estimate — not idle parallel slack — decides
#: the achieved speedup.
DEVICE = A100.with_(n_sms=1, name="A100-1sm")


def run() -> dict:
    per_code = {}
    efficiencies = []
    for code in CODES:
        graph = load(code)
        col = BicliqueCollector()
        single = gmbe_gpu(graph, col, device=DEVICE)
        reference = sorted(col.bicliques)

        report = ShardCoordinator(graph, N_SHARDS, device=DEVICE).run()
        assert report.bicliques == reference, (
            f"{code}: sharded union != single-node result "
            f"({report.n_maximal} vs {len(reference)})"
        )
        assert len(report.bicliques) == len(set(report.bicliques)), (
            f"{code}: duplicate bicliques in the merged shard union"
        )

        rr = ShardCoordinator(
            graph, N_SHARDS, device=DEVICE, balancer="round-robin"
        ).run()
        assert rr.bicliques == reference

        efficiency = single.sim_time / (N_SHARDS * report.sim_time)
        efficiencies.append(efficiency)
        per_code[code] = {
            "single_s": single.sim_time,
            "shard_makespan_s": report.sim_time,
            "round_robin_makespan_s": rr.sim_time,
            "efficiency": efficiency,
            "imbalance_estimate": report.extras["imbalance"],
            "n_maximal": len(reference),
        }
    geomean = math.exp(
        sum(math.log(e) for e in efficiencies) / len(efficiencies)
    )
    return {
        "bench": "sharding_scaling",
        "config": {
            "codes": list(CODES),
            "n_shards": N_SHARDS,
            "device": DEVICE.name,
            "n_sms": DEVICE.n_sms,
        },
        "per_code": per_code,
        "shard_efficiency_4x": geomean,
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    for code, row in result["per_code"].items():
        print(
            f"{code:>4} single: {row['single_s'] * 1e6:9.3f} us   "
            f"4-shard: {row['shard_makespan_s'] * 1e6:9.3f} us   "
            f"(round-robin {row['round_robin_makespan_s'] * 1e6:9.3f} us)  "
            f"efficiency: {row['efficiency']:.3f}"
        )
    print(
        f"4-shard efficiency geomean: "
        f"{result['shard_efficiency_4x']:.3f} (>= 0.70 required)"
    )
    print(f"snapshot written to {OUT_PATH}")


if __name__ == "__main__":
    main()
