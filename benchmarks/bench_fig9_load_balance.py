"""Bench target: Figs. 4 and 9 — runtime loads on SMs over time.

Paper shape (BookCrossing / EuAll): with warp-centric mapping most SMs
go idle early and wait on stragglers (Fig. 4's '86 SMs waste 80% of
running time'); block-centric holds SMs longer but finishes slower;
task-centric GMBE keeps the SM population busy essentially until the
end and finishes first.
"""

from conftest import SCALE, once

from repro.bench import experiment_fig9, print_fig9


def test_fig9_active_sms_over_time(benchmark):
    curves = once(benchmark, lambda: experiment_fig9(scale=SCALE))
    print_fig9(curves)

    by_key = {(c.code, c.scheme): c for c in curves}
    for code in {c.code for c in curves}:
        gmbe = by_key[(code, "GMBE")]
        warp = by_key[(code, "GMBE-WARP")]
        block = by_key[(code, "GMBE-BLOCK")]
        # GMBE finishes first (or ties within noise).
        assert gmbe.finish_s <= 1.1 * min(warp.finish_s, block.finish_s), code
        # GMBE wastes less of its run in the low-occupancy tail than the
        # warp-centric mapping wastes of its own (the Fig. 4 pathology).
        assert gmbe.tail_idle_fraction() <= warp.tail_idle_fraction() + 0.05, code
