"""Process-pool shard execution: wall-clock scaling + supervision cost.

Measures, per large registry graph, the *host wall-clock* of a 4-shard
:class:`~repro.sharding.ShardCoordinator` run on a pre-warmed supervised
:class:`~repro.parallel.ProcessWorkerPool` against the single-node
wall-clock.  Unlike ``bench_sharding`` (simulated cycles, balancer
quality) this is real elapsed time: it prices everything the
process-pool path adds — graph/plan pickling across the pipe, heartbeat
traffic, the monitor thread, result transfer — and proves the
supervision machinery doesn't eat the parallelism it exists to protect.

Wall-clock scaling is machine-dependent, so the headline metric is
normalized to the machine: ``procpool_scaling_efficiency`` is the
geomean over graphs of::

    (single_wall / shard_wall) / min(4, n_cpus)

1.0 is perfect linear scaling on the cores available.  On a >= 4-core
box the 0.45 floor equals the >= 1.8x absolute-speedup acceptance bar;
on a smaller box it bounds the overhead instead (a 1-core machine must
keep >= 0.45x of single-node throughput while paying for full
supervision).  The pool is warmed first — one-time spawn + import cost
is a constant, not a per-job scaling term.  Merged-set equality with
the single-node run is asserted for every graph: wall-clock won by
dropping or duplicating bicliques must never produce a snapshot.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_procpool.py
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.core import BicliqueCollector
from repro.datasets import load
from repro.gmbe import gmbe_gpu
from repro.parallel import ProcessWorkerPool
from repro.sharding import ShardCoordinator

OUT_PATH = Path(__file__).resolve().parent / "BENCH_procpool.json"

#: the two largest registry graphs — sharding's target regime, and big
#: enough that per-shard work dwarfs pipe/pickling overhead
CODES = ("EE", "GH")
N_SHARDS = 4
#: modules imported during warmup so worker boot never lands in the
#: measured window (the shard task pulls in the whole kernel chain)
WARM_MODULES = ("repro.sharding.runner", "repro.gmbe.kernel")


def run() -> dict:
    n_cpus = os.cpu_count() or 1
    ideal = min(N_SHARDS, n_cpus)
    per_code = {}
    efficiencies = []
    with ProcessWorkerPool(min(N_SHARDS, n_cpus)) as pool:
        pool.warm(WARM_MODULES)
        for code in CODES:
            graph = load(code)
            col = BicliqueCollector()
            t0 = time.perf_counter()
            gmbe_gpu(graph, col)
            single_wall = time.perf_counter() - t0
            reference = sorted(col.bicliques)

            t0 = time.perf_counter()
            report = ShardCoordinator(graph, N_SHARDS, pool=pool).run()
            shard_wall = time.perf_counter() - t0
            assert report.bicliques == reference, (
                f"{code}: process-pool union != single-node result "
                f"({report.n_maximal} vs {len(reference)})"
            )
            assert len(report.bicliques) == len(set(report.bicliques)), (
                f"{code}: duplicate bicliques in the merged shard union"
            )

            speedup = single_wall / shard_wall
            efficiency = speedup / ideal
            efficiencies.append(efficiency)
            per_code[code] = {
                "single_wall_s": single_wall,
                "shard_wall_s": shard_wall,
                "speedup": speedup,
                "efficiency": efficiency,
                "n_maximal": len(reference),
            }
        stats = pool.stats()
    assert stats["deaths"] == 0, (
        f"workers died during a clean benchmark run: {stats}"
    )
    geomean = math.exp(
        sum(math.log(e) for e in efficiencies) / len(efficiencies)
    )
    return {
        "bench": "procpool_scaling",
        "config": {
            "codes": list(CODES),
            "n_shards": N_SHARDS,
            "n_cpus": n_cpus,
            "ideal_speedup": ideal,
            "warm_modules": list(WARM_MODULES),
        },
        "per_code": per_code,
        "pool_stats": stats,
        "procpool_scaling_efficiency": geomean,
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    ideal = result["config"]["ideal_speedup"]
    for code, row in result["per_code"].items():
        print(
            f"{code:>4} single: {row['single_wall_s']:7.2f}s   "
            f"{N_SHARDS}-shard: {row['shard_wall_s']:7.2f}s   "
            f"speedup: {row['speedup']:.2f}x "
            f"(ideal {ideal}x, efficiency {row['efficiency']:.3f})"
        )
    print(
        f"normalized scaling efficiency geomean: "
        f"{result['procpool_scaling_efficiency']:.3f} (>= 0.45 required)"
    )
    print(f"snapshot written to {OUT_PATH}")


if __name__ == "__main__":
    main()
