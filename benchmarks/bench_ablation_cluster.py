"""Ablation: the distributed multi-machine extension (paper §5 future work).

Extends Fig. 13 beyond one machine: 1, 2 and 4 simulated machines
(2 V100s each) sharing the root counter over the network.  Sweeps the
counter-claim batch size to show the trade-off the paper's plain
``atomicInc_system`` would hit across machines: per-vertex claims pay
one RTT each, so batching claims is what preserves scaling.
"""

from conftest import SCALE, once

from repro.bench.common import scale_device
from repro.datasets import load
from repro.gmbe import ClusterSpec, gmbe_cluster
from repro.gpusim import V100

NODE_COUNTS = [1, 2, 4]


def test_ablation_distributed_cluster(benchmark):
    graph = load("BX", scale=SCALE)
    device = scale_device(V100)

    def run():
        out = {}
        for nodes in NODE_COUNTS:
            for batch in (1, 32):
                spec = ClusterSpec(
                    n_nodes=nodes,
                    gpus_per_node=2,
                    device=device,
                    remote_pull_cycles=20_000,
                    claim_batch=batch,
                )
                out[(nodes, batch)] = gmbe_cluster(graph, cluster=spec)
        return out

    results = once(benchmark, run)

    counts = {k: r.n_maximal for k, r in results.items()}
    assert len(set(counts.values())) == 1

    print("\nAblation: distributed GMBE on BX (2 V100s per machine)")
    for (nodes, batch), res in sorted(results.items()):
        per_node = ", ".join(
            f"{t * 1e6:.1f}" for t in res.extras["per_node_seconds"]
        )
        print(
            f"  machines={nodes} batch={batch:2d}: "
            f"{res.sim_time * 1e6:8.1f} us (per-node finish: {per_node} us)"
        )

    # Batched claims never lose, and with them extra machines still help.
    for nodes in NODE_COUNTS:
        assert results[(nodes, 32)].sim_time <= results[(nodes, 1)].sim_time * 1.02
    assert results[(4, 32)].sim_time < results[(1, 32)].sim_time
    assert results[(2, 32)].sim_time < results[(1, 32)].sim_time
