"""Bench target: Fig. 8 — effect of pruning and task scheduling.

Paper shape: GMBE beats GMBE-w/o_PRUNE everywhere (pruning shrinks the
enumeration space), and beats GMBE-WARP / GMBE-BLOCK on the large
datasets where trees are skewed.
"""

from conftest import SCALE, once

from repro.bench import experiment_fig8, print_fig8
from repro.datasets import LARGE_DATASETS


def test_fig8_pruning_and_scheduling(benchmark):
    result = once(benchmark, lambda: experiment_fig8(scale=SCALE))
    print_fig8(result)

    strict_prune_wins = 0
    for code, per in result.seconds.items():
        # Pruning never hurts, and wins outright on nearly every dataset
        # (the sparsest analog, WA, has no pruning opportunity at all).
        assert per["GMBE"] <= per["GMBE-w/o_PRUNE"], code
        strict_prune_wins += per["GMBE"] < per["GMBE-w/o_PRUNE"]
        # Task-centric never loses badly to the naive mappings.
        assert per["GMBE"] <= 1.25 * min(per["GMBE-WARP"], per["GMBE-BLOCK"]), code
    assert strict_prune_wins >= 0.75 * len(result.seconds)

    # On the large datasets the scheduling gap is material.
    gains = [
        max(result.speedup(code, "GMBE-WARP"), result.speedup(code, "GMBE-BLOCK"))
        for code in LARGE_DATASETS
        if code in result.seconds
    ]
    assert gains and max(gains) > 2.0
