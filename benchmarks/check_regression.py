"""Perf regression gate for the set-kernel microbenchmark.

Re-runs :mod:`bench_setops` in-process and compares the dense-case
geomean bitset speedup against the committed ``BENCH_setops.json``
snapshot.  Exits non-zero when the fresh speedup drops more than 20%
below the snapshot, or below the 2× acceptance floor — either means a
change has eaten the word-parallel advantage the adaptive backend is
built on.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # re-baseline

The gate compares *speedup ratios*, not wall-clock milliseconds, so it
is stable across machines of different absolute speed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_setops  # noqa: E402

REGRESSION_TOLERANCE = 0.20  # fail if fresh < (1 - tol) * snapshot
ABSOLUTE_FLOOR = 2.0  # acceptance criterion: dense bitset wins >= 2x


def main(argv: list[str]) -> int:
    update = "--update" in argv
    fresh = bench_setops.run()
    fresh_speedup = fresh["dense_geomean_speedup"]
    print(f"fresh dense geomean speedup:    {fresh_speedup:.2f}x")

    if update or not bench_setops.OUT_PATH.exists():
        bench_setops.OUT_PATH.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"snapshot written to {bench_setops.OUT_PATH}")
        return 0

    snapshot = json.loads(bench_setops.OUT_PATH.read_text())
    base_speedup = snapshot["dense_geomean_speedup"]
    floor = base_speedup * (1.0 - REGRESSION_TOLERANCE)
    print(f"snapshot dense geomean speedup: {base_speedup:.2f}x")
    print(f"regression floor (-20%):        {floor:.2f}x")

    ok = True
    if fresh_speedup < floor:
        print(
            f"FAIL: speedup regressed >20% "
            f"({fresh_speedup:.2f}x < {floor:.2f}x)"
        )
        ok = False
    if fresh_speedup < ABSOLUTE_FLOOR:
        print(
            f"FAIL: dense speedup below the {ABSOLUTE_FLOOR:.0f}x "
            f"acceptance floor ({fresh_speedup:.2f}x)"
        )
        ok = False
    if ok:
        print("OK: no set-kernel perf regression")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
