"""Perf regression gates for the committed benchmark snapshots.

Two gates, both comparing *speedup ratios* rather than wall-clock
milliseconds so they are stable across machines of different absolute
speed:

``setops``
    Re-runs :mod:`bench_setops` and compares the dense-case geomean
    bitset speedup against ``BENCH_setops.json``.  A drop of more than
    20% below the snapshot — or below the 2x acceptance floor — means a
    change has eaten the word-parallel advantage the adaptive backend is
    built on.  The same run also gates the cross-task batched execution
    layer (DESIGN.md §10): the batched-vs-unbatched wall-clock geomean
    must stay ≥ 1.5x on the dense registry graphs and at parity (≥ 1.0x
    geomean) on the sparse ones, where few tasks are batch-eligible.

``service``
    Re-runs :mod:`bench_service_throughput` and compares the cache-hit
    speedup (cold enumeration latency / cached latency) against
    ``BENCH_service.json``.  The ratio is huge (thousands), so the gate
    only has to catch the failure mode that matters: the result cache
    silently stopping to hit.

``faults``
    Re-runs :mod:`bench_faults` and gates the fault-machinery overhead:
    a zero-fault run with lineage tracking + the emission ledger armed
    must keep a plain/robust wall-clock throughput ratio of at least
    0.95 — i.e. always-on crash tolerance may cost at most 5%.

``telemetry-off`` / ``telemetry-on``
    Re-run :mod:`bench_telemetry` (once — the run is memoized across
    the two gates) and gate the observability overhead: disabled
    telemetry must keep >= 95% of baseline throughput (the no-op path
    is a single ``is_enabled`` check per task), enabled telemetry with
    spans + phase attribution + a ring sink must keep >= 80%.

``tuning``
    Re-runs :mod:`bench_tuning` and compares the geomean simulated
    speedup of the autotuned config over the paper defaults against
    ``BENCH_tuning.json``.  The tuner's incumbent starts at the default
    config, so the ratio can never drop below 1.0 legitimately — a fall
    below the snapshot means the search stopped finding the fast
    configurations (broken priors, broken successive halving, or a
    kernel change that erased the tuning headroom).

``sharding``
    Re-runs :mod:`bench_sharding` and gates the 4-shard scaling
    efficiency (single-node simulated time over 4x the sharded
    makespan, geomean across registry graphs on a work-bound device)
    at >= 0.7x ideal.  The ratio is pure simulated cycles, so a drop
    means the ownership balancer's weight estimate degraded — and the
    bench itself asserts the merged shard union stays bit-identical to
    the single-node result, so the efficiency can never be bought with
    dropped or duplicated bicliques.

``procpool``
    Re-runs :mod:`bench_procpool` and gates the *wall-clock* scaling of
    supervised process-pool shard execution, normalized to the machine:
    ``(single_wall / 4_shard_wall) / min(4, n_cpus)`` geomean over the
    large registry graphs, floor 0.45 — on a >= 4-core box that is the
    >= 1.8x absolute-speedup acceptance bar; on smaller boxes it bounds
    the supervision overhead (heartbeats, pipes, pickling) instead.
    Wall clock is noisy, so the drift tolerance is the loosest of all
    gates; the bench asserts merged-set equality and zero worker deaths
    internally.

``store``
    Re-runs :mod:`bench_store` and gates the result-store subsystem
    (DESIGN.md §13): the delta-encoded :class:`StoredResultSet` must
    keep a >= 2.0x geomean compression ratio over the materialized-list
    byte model (encoded <= 0.5x materialized) and streamed iteration
    must keep >= 0.8x of materialize-then-iterate throughput.  The
    bench asserts bit-identical round-trips (full iteration and cursor
    page union vs direct enumeration) before measuring anything.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py                 # both gates
    PYTHONPATH=src python benchmarks/check_regression.py --only setops   # one gate
    PYTHONPATH=src python benchmarks/check_regression.py --update        # re-baseline

A missing, unreadable, or incomplete snapshot is a configuration error,
not a perf regression: the gate reports what is wrong with the file and
how to regenerate it, and exits non-zero without running the benchmark.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_faults  # noqa: E402
import bench_procpool  # noqa: E402
import bench_service_throughput  # noqa: E402
import bench_setops  # noqa: E402
import bench_sharding  # noqa: E402
import bench_store  # noqa: E402
import bench_telemetry  # noqa: E402
import bench_tuning  # noqa: E402


def _memoize(fn: Callable[[], dict]) -> Callable[[], dict]:
    """Run ``fn`` once and reuse the result (gates sharing one bench)."""
    cache: list[dict] = []

    def run() -> dict:
        if not cache:
            cache.append(fn())
        return cache[0]

    return run


_run_telemetry = _memoize(bench_telemetry.run)


class SnapshotError(RuntimeError):
    """A benchmark snapshot is missing, unreadable, or incomplete."""


@dataclass(frozen=True)
class Gate:
    name: str
    path: Path
    metric: str
    run: Callable[[], dict]
    tolerance: float  # fail if fresh < (1 - tolerance) * snapshot
    floor: float  # absolute acceptance floor on the ratio
    #: additional ``(metric, tolerance, floor)`` checks against the same
    #: snapshot/benchmark run — one gate, several gated ratios.
    extra_checks: tuple = ()


GATES = (
    Gate(
        name="setops",
        path=bench_setops.OUT_PATH,
        metric="dense_geomean_speedup",
        run=bench_setops.run,
        tolerance=0.20,
        floor=2.0,
        extra_checks=(
            ("batch_dense_geomean_speedup", 0.25, 1.5),
            ("batch_sparse_geomean_speedup", 0.25, 1.0),
        ),
    ),
    Gate(
        name="service",
        path=bench_service_throughput.OUT_PATH,
        metric="cache_hit_speedup",
        run=bench_service_throughput.run,
        tolerance=0.50,
        floor=2.0,
    ),
    Gate(
        name="faults",
        path=bench_faults.OUT_PATH,
        metric="fault_overhead_ratio",
        run=bench_faults.run,
        tolerance=0.05,
        floor=0.95,
    ),
    Gate(
        name="telemetry-off",
        path=bench_telemetry.OUT_PATH,
        metric="telemetry_disabled_ratio",
        run=_run_telemetry,
        tolerance=0.05,
        floor=0.95,
    ),
    Gate(
        name="telemetry-on",
        path=bench_telemetry.OUT_PATH,
        metric="telemetry_enabled_ratio",
        run=_run_telemetry,
        tolerance=0.10,
        floor=0.80,
        # Cross-process capture (worker buffering + heartbeat flushes +
        # coordinator re-parenting) gated against the untraced process
        # pool.  Real wall clock over real processes, so the drift
        # tolerance is as loose as the procpool gate's; the 0.80
        # absolute floor is the acceptance bar that matters.
        extra_checks=(
            ("telemetry_procpool_ratio", 0.30, 0.80),
        ),
    ),
    # Deterministic simulated-cycle ratio, not wall clock: tolerance is
    # only slack for intentional snapshot drift, not machine noise.
    Gate(
        name="tuning",
        path=bench_tuning.OUT_PATH,
        metric="tuned_vs_default_ratio",
        run=bench_tuning.run,
        tolerance=0.15,
        floor=1.0,
    ),
    # Deterministic simulated-cycle ratio (see bench_sharding): the
    # 4-shard geomean efficiency must hold >= 0.7x of ideal linear
    # scaling; merged-set equality is asserted inside the bench itself.
    Gate(
        name="sharding",
        path=bench_sharding.OUT_PATH,
        metric="shard_efficiency_4x",
        run=bench_sharding.run,
        tolerance=0.10,
        floor=0.70,
    ),
    # Real wall clock (the one gate that is): normalized to the cores
    # actually available, with the loosest drift tolerance accordingly.
    # floor 0.45 == the 1.8x/4 absolute-speedup bar on >= 4 cores.
    Gate(
        name="procpool",
        path=bench_procpool.OUT_PATH,
        metric="procpool_scaling_efficiency",
        run=bench_procpool.run,
        tolerance=0.35,
        floor=0.45,
    ),
    # Compression is deterministic (bytes over bytes), so its tolerance
    # is only snapshot-drift slack; decode throughput is wall clock over
    # two in-process loops, hence the looser drift band.  Floors are the
    # ISSUE's acceptance bars: encoded <= 0.5x materialized (ratio >=
    # 2.0) and streamed iteration >= 0.8x of materialize-then-iterate.
    Gate(
        name="store",
        path=bench_store.OUT_PATH,
        metric="store_compression_ratio",
        run=bench_store.run,
        tolerance=0.10,
        floor=2.0,
        extra_checks=(
            ("store_decode_throughput_ratio", 0.30, 0.80),
        ),
    ),
)


def load_snapshot(path: Path, metric: str) -> float:
    """Read a committed snapshot and return its gated metric.

    Raises :class:`SnapshotError` with an actionable message instead of
    leaking FileNotFoundError / JSONDecodeError / KeyError tracebacks.
    """
    if not path.exists():
        raise SnapshotError(
            f"snapshot {path} does not exist; run "
            f"'PYTHONPATH=src python {Path(__file__).name} --update' "
            f"to create it"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise SnapshotError(f"snapshot {path} is unreadable: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"snapshot {path} is not valid JSON ({exc}); delete it and "
            f"re-baseline with --update"
        ) from exc
    if not isinstance(data, dict) or metric not in data:
        raise SnapshotError(
            f"snapshot {path} has no '{metric}' field; it was written by "
            f"an incompatible benchmark version — re-baseline with --update"
        )
    value = data[metric]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SnapshotError(
            f"snapshot {path}: '{metric}' must be a number, got {value!r}"
        )
    return float(value)


def check_gate(gate: Gate, update: bool) -> bool:
    print(f"=== {gate.name} gate ===")
    if update:
        fresh = gate.run()
        gate.path.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"snapshot written to {gate.path}")
        return True

    checks = ((gate.metric, gate.tolerance, gate.floor),) + tuple(
        gate.extra_checks
    )
    # Validate the snapshot before paying for the benchmark run.
    bases = {m: load_snapshot(gate.path, m) for m, _, _ in checks}
    result = gate.run()

    ok = True
    for metric, tolerance, abs_floor in checks:
        base = bases[metric]
        fresh = result[metric]
        floor = base * (1.0 - tolerance)
        print(f"fresh {metric}:    {fresh:.2f}x")
        print(f"snapshot {metric}: {base:.2f}x")
        print(f"regression floor (-{tolerance:.0%}): {floor:.2f}x")
        if fresh < floor:
            print(
                f"FAIL: {gate.name}/{metric} regressed >{tolerance:.0%} "
                f"({fresh:.2f}x < {floor:.2f}x)"
            )
            ok = False
        if fresh < abs_floor:
            print(
                f"FAIL: {gate.name}/{metric} below the {abs_floor:.1f}x "
                f"acceptance floor ({fresh:.2f}x)"
            )
            ok = False
    if ok:
        print(f"OK: no {gate.name} perf regression")
    return ok


def main(argv: list[str]) -> int:
    update = "--update" in argv
    only = None
    if "--only" in argv:
        try:
            only = argv[argv.index("--only") + 1]
        except IndexError:
            print("error: --only requires a gate name", file=sys.stderr)
            return 2
        if only not in {g.name for g in GATES}:
            names = ", ".join(g.name for g in GATES)
            print(f"error: unknown gate '{only}' (choose from: {names})",
                  file=sys.stderr)
            return 2

    selected = [g for g in GATES if only is None or g.name == only]
    ok = True
    for gate in selected:
        try:
            ok &= check_gate(gate, update)
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
