"""Autotuning benchmark: tuned config vs paper defaults.

Runs :func:`repro.tuning.tune` (in-memory, fixed seed — the whole trial
sequence is deterministic) on three bundled graphs chosen to span the
regimes the search space's priors target: GH and EE are dense hub-block
graphs where the bitset backend and split bounds pay off, TM is a
skewed power-law graph where the defaults are already close to optimal.
The reported metric is the geomean of ``default_cycles /
tuned_cycles`` — the simulated-makespan speedup of the tuned config
over :data:`~repro.gmbe.DEFAULT_CONFIG` on the same simulated device.

Because the tuner's incumbent starts at the default config's own full
run, each per-code speedup is >= 1.0 by construction; the gate in
``check_regression.py --only tuning`` therefore catches the real
failure mode — the search no longer *finding* the fast configs — rather
than machine noise.  Acceptance: the tuned config beats the default by
at least 10% on at least two of the three graphs.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_tuning.py
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.datasets import load
from repro.tuning import TuneBudget, tune

OUT_PATH = Path(__file__).resolve().parent / "BENCH_tuning.json"

#: (code, scale): two dense regimes and one skewed regime.
WORKLOADS = (("GH", 0.5), ("EE", 0.5), ("TM", 1.0))
SEED = 0
BUDGET = TuneBudget(
    max_trials=12, rung0_tasks=64, rung_growth=4, max_rungs=2, finalists=3
)


def run() -> dict:
    per_code = {}
    speedups = []
    for code, scale in WORKLOADS:
        graph = load(code, scale=scale)
        entry = tune(graph, budget=BUDGET, seed=SEED, store=None)
        winner = {
            name: value
            for name, value in json.loads(entry.config.to_json()).items()
        }
        per_code[code] = {
            "scale": scale,
            "default_cycles": entry.default_cycles,
            "tuned_cycles": entry.incumbent_cycles,
            "speedup": entry.speedup,
            "trials": entry.trials,
            "winner": winner,
        }
        speedups.append(entry.speedup)
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "bench": "tuning",
        "config": {
            "workloads": [list(w) for w in WORKLOADS],
            "seed": SEED,
            "budget": {
                "max_trials": BUDGET.max_trials,
                "rung0_tasks": BUDGET.rung0_tasks,
                "rung_growth": BUDGET.rung_growth,
                "max_rungs": BUDGET.max_rungs,
                "finalists": BUDGET.finalists,
            },
        },
        "per_code": per_code,
        "codes_improved_10pct": sum(1 for s in speedups if s >= 1.10),
        "tuned_vs_default_ratio": geomean,
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    for code, row in result["per_code"].items():
        print(f"{code:>4} default: {row['default_cycles']:>12.0f} cycles   "
              f"tuned: {row['tuned_cycles']:>12.0f} cycles   "
              f"speedup: {row['speedup']:.3f}x ({row['trials']} trials)")
    print(f"tuned-vs-default geomean speedup: "
          f"{result['tuned_vs_default_ratio']:.3f}x "
          f"({result['codes_improved_10pct']}/3 graphs improved >= 10%)")
    print(f"snapshot written to {OUT_PATH}")


if __name__ == "__main__":
    main()
