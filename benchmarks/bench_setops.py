"""Microbenchmark: sorted-merge vs. packed-bitset set kernels, and
sequential vs. cross-task batched execution.

Part 1 times the enumeration hot path in isolation — batched local-
neighborhood counting ``|N(v) ∩ L'|`` over many candidate rows — for
both backends across an edge-density sweep, reporting wall-clock
(``perf_counter``) *and* the simulated SIMT cycles each pass is charged.

Part 2 times whole dense root-task populations from the dataset registry
through the sequential node-buffer loop vs. the cross-task lockstep
runner (:func:`repro.core.batch.run_batch`), asserting on the way that
both paths produce identical simulated-cycle ``Counters`` — batching is
a wall-clock-only optimization by design (DESIGN.md §10).

Emits ``BENCH_setops.json`` next to this file for the perf trajectory;
``check_regression.py`` gates future PRs against the committed snapshot
(bitset-vs-sorted dense geomean, batched-vs-unbatched dense and sparse
geomeans).

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_setops.py
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.core import bitset
from repro.core.batch import BatchMember, run_batch
from repro.core.bicliques import BicliqueCounter, Counters
from repro.core.bitset import BitsetUniverse
from repro.core.localcount import LocalCounter
from repro.core.tasks import build_root_task
from repro.datasets import registry
from repro.gmbe.host import run_task_with_node_buffer
from repro.graph import random_bipartite
from repro.graph.preprocess import prepare

OUT_PATH = Path(__file__).resolve().parent / "BENCH_setops.json"

DENSITIES = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)
DENSE_THRESHOLD = 0.4  # cases gated by check_regression.py
N_U = 256
N_V = 512
LEFT_FRACTION = 0.75
REPEATS = 9

#: Registry graphs for the batched-execution comparison.  The dense
#: codes carry hub blocks whose root tasks resolve to the bitset backend
#: (the batching target); the sparse codes are the no-regression guard —
#: few or no tasks are batch-eligible there, so the ratio must simply
#: stay at parity.
BATCH_DENSE = (("GH", 0.4), ("EE", 0.4), ("SO", 0.35))
BATCH_SPARSE = (("WA", 0.5), ("TM", 0.5))
BATCH_SIZE = 32
BATCH_REPEATS = 5


def _time_best(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time in milliseconds (min filters scheduler noise)."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def run_case(density: float, seed: int = 0) -> dict:
    g = random_bipartite(N_U, N_V, density, seed=seed)
    rng = np.random.default_rng(seed)
    left = np.sort(
        rng.choice(N_U, size=int(N_U * LEFT_FRACTION), replace=False)
    ).astype(np.int32)
    cands = np.arange(N_V, dtype=np.int64)

    lc = LocalCounter(g)
    lc.set_left(left)

    uni = BitsetUniverse.build(
        g, np.arange(N_U, dtype=np.int32), np.arange(N_V, dtype=np.int32)
    )
    mask = uni.mask_of_left_subset(left)
    rows = uni.rows[uni.row_index(cands.astype(np.int32))]

    sorted_ms = _time_best(lambda: lc.counts(cands))
    bitset_ms = _time_best(lambda: bitset.count_rows_vs_mask(rows, mask))

    # Both kernels must agree exactly — a wrong fast kernel is worthless.
    expect, _ = lc.counts(cands)
    got = bitset.count_rows_vs_mask(rows, mask)
    assert got.tolist() == expect.tolist(), density

    # Simulated cost of the same two passes, alongside the wall clock:
    # the ragged warp charge for the gather, the word-parallel charge
    # for the packed AND + popcount.
    c_sorted = Counters()
    lc.counts(cands, c_sorted)
    c_bitset = Counters()
    c_bitset.charge_bitset(len(rows), uni.n_words)

    return {
        "density": density,
        "n_u": N_U,
        "n_v": N_V,
        "n_left": int(len(left)),
        "n_rows": int(len(cands)),
        "words_per_row": int(uni.n_words),
        "sorted_ms": sorted_ms,
        "bitset_ms": bitset_ms,
        "speedup": sorted_ms / bitset_ms,
        "sorted_simt_cycles": c_sorted.simt_cycles,
        "bitset_simt_cycles": c_bitset.simt_cycles,
        "simt_cycle_speedup": c_sorted.simt_cycles / c_bitset.simt_cycles,
    }


def _null_sink(left, right) -> None:
    """Benchmark sink: both paths pay one call per emission, nothing more."""


def run_batch_case(code: str, scale: float) -> dict:
    """Sequential vs. lockstep-batched execution of one registry graph's
    root-task population (batch-eligible tasks only drive the batched
    side; the rest run sequentially in both)."""
    prepared = prepare(registry.load(code, scale=scale), order="degree")
    g = prepared.graph
    counter = LocalCounter(g)
    tasks = []
    for v in range(g.n_v):
        t = build_root_task(g, counter, v, None, backend="auto")
        if t is not None:
            tasks.append(t)
    dense = [t for t in tasks if t.universe is not None and len(t.cands)]
    rest = [t for t in tasks if t.universe is None or not len(t.cands)]

    def run_unbatched() -> Counters:
        total = Counters()
        sink = BicliqueCounter()
        for t in tasks:
            run_task_with_node_buffer(g, counter, t, sink, total)
        return total

    def run_batched() -> Counters:
        total = Counters()
        sink = BicliqueCounter()
        for i in range(0, len(dense), BATCH_SIZE):
            run_batch([
                BatchMember(
                    universe=t.universe, left=t.left, right=t.right,
                    cands=t.cands, counts=t.counts, counters=total,
                    sink=sink,
                )
                for t in dense[i : i + BATCH_SIZE]
            ])
        for t in rest:
            run_task_with_node_buffer(g, counter, t, sink, total)
        return total

    # Batching must be cycle-neutral: identical Counters either way.
    c_seq, c_bat = run_unbatched(), run_batched()
    assert vars(c_seq) == vars(c_bat), (code, vars(c_seq), vars(c_bat))

    unbatched_ms = _time_best(run_unbatched, BATCH_REPEATS)
    batched_ms = _time_best(run_batched, BATCH_REPEATS)
    return {
        "code": code,
        "scale": scale,
        "n_tasks": len(tasks),
        "n_batch_eligible": len(dense),
        "simt_cycles": c_seq.simt_cycles,
        "unbatched_ms": unbatched_ms,
        "batched_ms": batched_ms,
        "speedup": unbatched_ms / batched_ms,
    }


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(s) for s in values) / len(values))


def dense_geomean_speedup(cases: list[dict]) -> float:
    return _geomean(
        [c["speedup"] for c in cases if c["density"] >= DENSE_THRESHOLD]
    )


def run() -> dict:
    cases = [run_case(d) for d in DENSITIES]
    batch_dense = [run_batch_case(code, s) for code, s in BATCH_DENSE]
    batch_sparse = [run_batch_case(code, s) for code, s in BATCH_SPARSE]
    return {
        "bench": "setops",
        "config": {
            "n_u": N_U,
            "n_v": N_V,
            "left_fraction": LEFT_FRACTION,
            "repeats": REPEATS,
            "dense_threshold": DENSE_THRESHOLD,
            "batch_size": BATCH_SIZE,
            "batch_repeats": BATCH_REPEATS,
        },
        "cases": cases,
        "batch_cases": batch_dense + batch_sparse,
        "dense_geomean_speedup": dense_geomean_speedup(cases),
        "batch_dense_geomean_speedup": _geomean(
            [c["speedup"] for c in batch_dense]
        ),
        "batch_sparse_geomean_speedup": _geomean(
            [c["speedup"] for c in batch_sparse]
        ),
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"{'density':>8} {'sorted_ms':>10} {'bitset_ms':>10} {'speedup':>8}")
    for c in result["cases"]:
        print(
            f"{c['density']:>8.2f} {c['sorted_ms']:>10.4f} "
            f"{c['bitset_ms']:>10.4f} {c['speedup']:>7.1f}x"
        )
    print(
        f"\ndense (>= {DENSE_THRESHOLD}) geomean speedup: "
        f"{result['dense_geomean_speedup']:.1f}x"
    )
    print(
        f"\n{'graph':>8} {'tasks':>6} {'dense':>6} "
        f"{'unbatched_ms':>13} {'batched_ms':>11} {'speedup':>8}"
    )
    for c in result["batch_cases"]:
        print(
            f"{c['code']:>8} {c['n_tasks']:>6} {c['n_batch_eligible']:>6} "
            f"{c['unbatched_ms']:>13.2f} {c['batched_ms']:>11.2f} "
            f"{c['speedup']:>7.2f}x"
        )
    print(
        f"\nbatched dense geomean speedup:  "
        f"{result['batch_dense_geomean_speedup']:.2f}x"
    )
    print(
        f"batched sparse geomean speedup: "
        f"{result['batch_sparse_geomean_speedup']:.2f}x"
    )
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
