"""Microbenchmark: sorted-merge vs. packed-bitset set kernels.

Times the enumeration hot path in isolation — batched local-neighborhood
counting ``|N(v) ∩ L'|`` over many candidate rows — for both backends
across an edge-density sweep, and emits ``BENCH_setops.json`` next to
this file for the perf trajectory.  ``check_regression.py`` gates future
PRs against the committed snapshot.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_setops.py

The bitset backend packs L' into uint64 words and counts via a single
vectorized AND + popcount pass; the sorted backend is the stamp-based
:class:`repro.core.localcount.LocalCounter` gather.  On dense inputs the
word-parallel pass should win by well over 2×.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.core import bitset
from repro.core.bitset import BitsetUniverse
from repro.core.localcount import LocalCounter
from repro.graph import random_bipartite

OUT_PATH = Path(__file__).resolve().parent / "BENCH_setops.json"

DENSITIES = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)
DENSE_THRESHOLD = 0.4  # cases gated by check_regression.py
N_U = 256
N_V = 512
LEFT_FRACTION = 0.75
REPEATS = 9


def _time_best(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time in milliseconds (min filters scheduler noise)."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def run_case(density: float, seed: int = 0) -> dict:
    g = random_bipartite(N_U, N_V, density, seed=seed)
    rng = np.random.default_rng(seed)
    left = np.sort(
        rng.choice(N_U, size=int(N_U * LEFT_FRACTION), replace=False)
    ).astype(np.int32)
    cands = np.arange(N_V, dtype=np.int64)

    lc = LocalCounter(g)
    lc.set_left(left)

    uni = BitsetUniverse.build(
        g, np.arange(N_U, dtype=np.int32), np.arange(N_V, dtype=np.int32)
    )
    mask = uni.mask_of_left_subset(left)
    rows = uni.rows[uni.row_index(cands.astype(np.int32))]

    sorted_ms = _time_best(lambda: lc.counts(cands))
    bitset_ms = _time_best(lambda: bitset.count_rows_vs_mask(rows, mask))

    # Both kernels must agree exactly — a wrong fast kernel is worthless.
    expect, _ = lc.counts(cands)
    got = bitset.count_rows_vs_mask(rows, mask)
    assert got.tolist() == expect.tolist(), density

    return {
        "density": density,
        "n_u": N_U,
        "n_v": N_V,
        "n_left": int(len(left)),
        "n_rows": int(len(cands)),
        "words_per_row": int(uni.n_words),
        "sorted_ms": sorted_ms,
        "bitset_ms": bitset_ms,
        "speedup": sorted_ms / bitset_ms,
    }


def dense_geomean_speedup(cases: list[dict]) -> float:
    dense = [c["speedup"] for c in cases if c["density"] >= DENSE_THRESHOLD]
    return math.exp(sum(math.log(s) for s in dense) / len(dense))


def run() -> dict:
    cases = [run_case(d) for d in DENSITIES]
    return {
        "bench": "setops",
        "config": {
            "n_u": N_U,
            "n_v": N_V,
            "left_fraction": LEFT_FRACTION,
            "repeats": REPEATS,
            "dense_threshold": DENSE_THRESHOLD,
        },
        "cases": cases,
        "dense_geomean_speedup": dense_geomean_speedup(cases),
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"{'density':>8} {'sorted_ms':>10} {'bitset_ms':>10} {'speedup':>8}")
    for c in result["cases"]:
        print(
            f"{c['density']:>8.2f} {c['sorted_ms']:>10.4f} "
            f"{c['bitset_ms']:>10.4f} {c['speedup']:>7.1f}x"
        )
    print(
        f"\ndense (>= {DENSE_THRESHOLD}) geomean speedup: "
        f"{result['dense_geomean_speedup']:.1f}x"
    )
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
