"""Bench target: Fig. 10 — sensitivity to bound_height / bound_size.

Paper shape: the sweep is fairly flat, with GMBE-(20,1500) empirically
best or near-best in most cases — it is the shipped default.
"""

from conftest import SWEEP_SCALE, once

from repro.bench import experiment_fig10, print_fig10


def test_fig10_threshold_sweep(benchmark):
    result = once(benchmark, lambda: experiment_fig10(scale=SWEEP_SCALE))
    print_fig10(result)

    near_best = sum(
        result.default_within_factor(code, factor=1.5)
        for code in result.seconds
    )
    # The default (20,1500) is within 1.5x of the best configuration on
    # a clear majority of datasets.
    assert near_best >= 0.7 * len(result.seconds), near_best
