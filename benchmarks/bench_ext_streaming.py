"""Extension bench: streaming maintenance vs from-scratch re-enumeration.

Not a paper figure — this covers the streaming-maintenance extension
(Ma et al., cited in the paper's §7).  Applies a stream of edge updates
to the YG analog and compares the maintainer's incremental repairs
against recomputing the full maximal-biclique set after every update.
"""

import time

import numpy as np
from conftest import once

from repro.core import BicliqueCollector, oombea
from repro.datasets import load
from repro.streaming import BicliqueMaintainer

N_UPDATES = 30


def test_streaming_maintenance_vs_recompute(benchmark):
    graph = load("YG", scale=0.5)
    rng = np.random.default_rng(77)
    updates = [
        (int(rng.integers(0, graph.n_u)), int(rng.integers(0, graph.n_v)))
        for _ in range(N_UPDATES)
    ]

    def run():
        m = BicliqueMaintainer(graph)
        t0 = time.perf_counter()
        for u, v in updates:
            if m.graph.has_edge(u, v):
                m.delete_edge(u, v)
            else:
                m.insert_edge(u, v)
        incremental_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(N_UPDATES):
            col = BicliqueCollector()
            oombea(m.graph.snapshot(), col)
        recompute_s = time.perf_counter() - t0
        return m, incremental_s, recompute_s

    m, incremental_s, recompute_s = once(benchmark, run)

    # Correctness after the whole stream.
    assert m.bicliques == m.recompute()
    speedup = recompute_s / incremental_s
    print(
        f"\nStreaming maintenance on YG/0.5: {N_UPDATES} updates in "
        f"{incremental_s:.2f}s vs {recompute_s:.2f}s recompute "
        f"({speedup:.1f}x)"
    )
    # Locality must beat from-scratch re-enumeration clearly.
    assert speedup > 3.0
