"""Bench target: Fig. 7 — memory demand, GMBE vs GMBE-w/o_REUSE.

Analytical on the paper's published Table 1 statistics, so this
reproduces the original figure's numbers: node reuse saves orders of
magnitude, and the naive layout exceeds the A100's 40 GB on several
datasets (WC, YG, SO, EE, BX in our computation; the paper's bars show
the same capacity violations).
"""

from conftest import once

from repro.bench import experiment_fig7, print_fig7
from repro.gpusim import A100


def test_fig7_memory_demand(benchmark):
    rows = once(benchmark, lambda: experiment_fig7())
    print_fig7(rows)

    by_code = {r.code: r for r in rows}
    # GMBE always fits; the naive layout exceeds 40 GB on BookCrossing
    # (397 GB per §3.1) and several others.
    assert all(r.fits_reuse for r in rows)
    assert not by_code["BX"].fits_naive
    assert by_code["BX"].naive_bytes > 350e9  # §3.1's "more than 397 GB"
    over_capacity = [r.code for r in rows if not r.fits_naive]
    assert len(over_capacity) >= 4
    # Saving factors span the paper's 49x-4,819x orders of magnitude.
    savings = [r.saving_factor for r in rows]
    assert max(savings) > 3000
    assert min(savings) > 5


def test_fig7_analog_datasets_consistent(benchmark):
    """The scaled analogs obey the same ordering (milder ratios)."""
    rows = once(benchmark, lambda: experiment_fig7(source="analog", scale=0.5))
    for r in rows:
        assert r.naive_bytes > r.reuse_bytes


def test_fig7_result_store_column(benchmark):
    """Peak result-store bytes: encoded must stay <= 0.5x materialized.

    The new store column only exists for real enumerations, so it runs
    on the analog datasets; the 0.5x bound is the acceptance criterion
    the ``store`` regression gate also enforces on fresh runs.
    """
    rows = once(
        benchmark,
        lambda: experiment_fig7(
            source="analog", scale=0.5, codes=["Mti", "WA"],
            measure_store=True,
        ),
    )
    print_fig7(rows)
    for r in rows:
        assert r.store_encoded_bytes > 0
        assert r.store_encoded_bytes <= 0.5 * r.store_list_bytes
        assert r.store_saving_factor >= 2.0
