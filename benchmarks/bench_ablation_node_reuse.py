"""Ablation: stack iteration with node reuse vs frame-allocating DFS.

Fig. 7 already shows the *memory* side of §4.1.  This ablation shows the
compute side is free: the node-reuse buffer (depth-field updates, undo
logs) performs the same set operations as the frame-allocating engine,
so its scalar work per enumerated biclique is comparable — node reuse
buys the 49×–4,819× memory saving without a compute penalty.

Also reports the modeled footprints (live Python-side measurement of
`NodeBuffer.memory_words()` against the analytic bound).
"""

from conftest import SCALE, once

from repro.core import Counters, LocalCounter, build_root_task
from repro.core.engine import EngineOptions, run_subtree
from repro.datasets import load
from repro.gmbe.host import run_task_with_node_buffer
from repro.gmbe.node_buffer import NodeBuffer
from repro.graph.preprocess import prepare
from repro.graph.stats import compute_stats


def test_ablation_node_reuse_compute_cost(benchmark):
    graph = load("YG", scale=SCALE)
    prepared = prepare(graph, order="degree").graph

    def run():
        counter = LocalCounter(prepared)
        reuse = Counters()
        frames = Counters()
        peak_words = 0
        n_tasks = 0
        for v_s in range(prepared.n_v):
            task = build_root_task(prepared, counter, v_s)
            if task is None:
                continue
            n_tasks += 1
            buf = NodeBuffer(
                prepared, counter, task.left, task.right, task.cands,
                task.counts, counters=reuse,
            )
            peak_words = max(peak_words, buf.memory_words())
            run_task_with_node_buffer(
                prepared, counter, task, lambda l, r: None, reuse
            )
            run_subtree(
                prepared, counter, task.left, task.right, task.cands,
                task.counts, lambda l, r: None, frames,
                EngineOptions("id", False, True),
            )
        return reuse, frames, peak_words, n_tasks

    reuse, frames, peak_words, n_tasks = once(benchmark, run)

    stats = compute_stats(prepared)
    bound = stats.node_buffer_words()
    print(
        f"\nAblation: node reuse vs frame DFS on YG ({n_tasks} tasks)\n"
        f"  node-reuse scalar work:  {reuse.set_op_work:,}\n"
        f"  frame-DFS  scalar work:  {frames.set_op_work:,}\n"
        f"  largest node_buf:        {peak_words:,} words "
        f"(analytic bound 3*dV+2*d2V = {bound:,})"
    )

    assert reuse.maximal == frames.maximal
    # Node reuse must not inflate compute: same order of magnitude, and
    # in practice within a small factor of the frame-allocating DFS.
    assert reuse.set_op_work <= 1.5 * frames.set_op_work
    # The live buffers respect the paper's §4.1 bound.
    assert peak_words <= bound
