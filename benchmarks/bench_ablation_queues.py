"""Ablation: the two-level task queue (paper §5, *Lock-free task queue*).

The paper implements SM-local queues in shared memory specifically
because their atomics are cheaper than global-memory atomics.  This
ablation sweeps the local queue capacity on a split-heavy dataset:

- capacity 0  — every task spills to the global queue (single-level);
- capacity 64 — the two-level default;
- capacity 4096 — effectively unbounded local queues.

Expected shape: the two-level queue shifts traffic from global to local
operations (cheaper), so makespan is never worse than the single-level
configuration, and queue-op statistics show the shift.
"""

from conftest import SCALE, once

from repro.bench.common import scale_device
from repro.datasets import load
from repro.gmbe import gmbe_gpu
from repro.gpusim import A100

CAPACITIES = [0, 64, 4096]


def test_ablation_local_queue_capacity(benchmark):
    graph = load("EE", scale=SCALE)
    device = scale_device(A100)

    def run():
        out = {}
        for cap in CAPACITIES:
            res = gmbe_gpu(graph, device=device, local_queue_capacity=cap)
            out[cap] = res
        return out

    results = once(benchmark, run)

    counts = {cap: r.n_maximal for cap, r in results.items()}
    assert len(set(counts.values())) == 1

    print("\nAblation: local queue capacity on EE")
    for cap, res in results.items():
        q = res.extras["queue_stats"][0]
        print(
            f"  capacity={cap:5d}: {res.sim_time * 1e6:8.2f} us | "
            f"local enq={q.local_enqueues:6d} global enq={q.global_enqueues:6d} "
            f"spills={q.spills}"
        )

    q0 = results[0].extras["queue_stats"][0]
    q64 = results[64].extras["queue_stats"][0]
    # Single-level pushes everything through the global queue.
    assert q0.local_enqueues == 0
    # The two-level queue absorbs a meaningful share locally.
    assert q64.local_enqueues > 0
    # Cheaper local atomics: two-level never slower than single-level.
    assert results[64].sim_time <= results[0].sim_time * 1.02
