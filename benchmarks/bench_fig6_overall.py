"""Bench target: Fig. 6 — overall runtime, six algorithms × 12 datasets.

The paper's headline: GMBE on one (simulated) A100 beats every CPU
competitor on every dataset — 3.5×–69.8× over the next-best CPU
algorithm and up to 70.6× over 96-core ParMBE.
"""

from conftest import SCALE, once

from repro.bench import experiment_fig6, print_fig6
from repro.datasets import DATASET_ORDER, LARGE_DATASETS


def test_fig6_overall_runtime(benchmark):
    result = once(benchmark, lambda: experiment_fig6(scale=SCALE))
    print_fig6(result)

    for code in result.seconds:
        per = result.seconds[code]
        # GMBE is the fastest algorithm on every dataset.
        assert per["GMBE"] == min(per.values()), (code, per)
        # Serial refinement ladder holds: MBEA is never the best CPU.
        assert per["MBEA"] >= per["ooMBEA"], code

    # Meaningful speedups over the best CPU competitor on the large,
    # biclique-dense datasets (the paper's 3.5x-69.8x band).
    for code in LARGE_DATASETS:
        if code in result.seconds:
            assert result.speedup_vs_best_cpu(code) > 2.0, code

    # GMBE vs ParMBE: the paper's marquee comparison.
    speedups = [
        result.speedup_vs_parmbe(code) for code in result.seconds
    ]
    assert max(speedups) > 5.0
    print(
        "\nGMBE speedup vs ParMBE(96 cores): "
        + " ".join(f"{s:.1f}x" for s in speedups)
    )
