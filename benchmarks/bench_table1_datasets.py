"""Bench target: Table 1 — dataset statistics and biclique counts.

Regenerates every column of the paper's Table 1 for the synthetic
analogs and checks the defining property: maximal-biclique counts
ascend in the paper's dataset order.
"""

from conftest import SCALE, once

from repro.bench import experiment_table1, print_table1
from repro.datasets import DATASET_ORDER, PAPER_MAX_BICLIQUES


def test_table1_dataset_statistics(benchmark):
    rows = once(benchmark, lambda: experiment_table1(scale=SCALE))
    print_table1(rows)

    assert [r.code for r in rows] == DATASET_ORDER
    counts = [r.n_maximal for r in rows]
    # Paper shape: datasets sorted ascending by maximal-biclique count.
    assert counts == sorted(counts), counts
    # Paper shape: the 'large' group dwarfs the small one, as in Table 1
    # where GH has ~395x more bicliques than Mti.
    assert counts[-1] > 10 * counts[0]
    # Sanity: paper's own column is ascending too (data fidelity check).
    paper = [PAPER_MAX_BICLIQUES[c] for c in DATASET_ORDER]
    assert paper == sorted(paper)
