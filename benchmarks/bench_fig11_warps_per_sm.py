"""Bench target: Fig. 11 — impact of WarpPerSM (8/16/24/32).

Paper shape: 16 warps per SM wins on most datasets (more parallel MBE
procedures), while pushing to 24/32 cuts per-warp resources enough to
hurt; occasionally 32 still wins on enumeration-heavy inputs.
"""

from conftest import SWEEP_SCALE, once

from repro.bench import experiment_fig11, print_fig11


def test_fig11_warps_per_sm(benchmark):
    result = once(benchmark, lambda: experiment_fig11(scale=SWEEP_SCALE))
    print_fig11(result)

    for code, per in result.seconds.items():
        # 16 always beats 8 (twice the resident procedures, no derate).
        assert per[16] <= per[8] * 1.05, code
        # and is within a modest factor of the best setting overall.
        assert per[16] <= 1.5 * min(per.values()), code

    best16 = sum(result.best_warps(code) in (16, 24, 32) for code in result.seconds)
    assert best16 >= 0.7 * len(result.seconds)
