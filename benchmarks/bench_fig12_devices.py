"""Bench target: Fig. 12 — adaptability on A100 / V100 / 2080Ti.

Paper shape: GMBE completes every dataset on all three boards, with the
A100 slightly fastest (more SMs) and the 2080Ti slowest.
"""

from conftest import SWEEP_SCALE, once

from repro.bench import experiment_fig12, print_fig12


def test_fig12_device_adaptability(benchmark):
    result = once(benchmark, lambda: experiment_fig12(scale=SWEEP_SCALE))
    print_fig12(result)

    for code, per in result.seconds.items():
        # All devices complete; A100 never slower than the 2080Ti.
        assert set(per) == {"A100", "V100", "2080Ti"}
        assert per["A100"] <= per["2080Ti"] * 1.05, code

    # Aggregate ordering across the suite: A100 <= V100 <= 2080Ti.
    totals = {
        name: sum(per[name] for per in result.seconds.values())
        for name in ("A100", "V100", "2080Ti")
    }
    assert totals["A100"] <= totals["V100"] <= totals["2080Ti"]
