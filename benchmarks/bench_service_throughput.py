"""Service-layer throughput benchmark: jobs/sec and cache-hit latency.

Drives the full :mod:`repro.service` pipeline (sync client → asyncio
broker → worker pool) over registry datasets: per dataset, one cold
enumeration (cache miss) followed by a batch of identical queries served
from cache, repeated a few times with the cache cleared in between.
Emits ``BENCH_service.json`` next to this file; ``check_regression.py``
gates the *cache-hit speedup* (cold latency / hit latency, a
machine-independent ratio like the set-kernel gate) against the
committed snapshot.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import json
import math
import statistics
import time
from pathlib import Path

from repro.datasets import load
from repro.service import ResiliencePolicy, ServiceClient

OUT_PATH = Path(__file__).resolve().parent / "BENCH_service.json"

CODES = ("Mti", "WA")
ALGO = "oombea"
N_WORKERS = 4
HIT_JOBS_PER_CODE = 100
REPEATS = 3


def _run_repeat(client: ServiceClient, graphs: dict) -> dict:
    client.broker.cache.clear()
    cold_ms = {}
    for code, graph in graphs.items():
        res = client.submit(graph=graph, algorithm=ALGO)
        assert res.ok and not res.cache_hit, code
        cold_ms[code] = res.latency_ms
    batch = [
        {"graph": graphs[code], "algorithm": ALGO}
        for _ in range(HIT_JOBS_PER_CODE)
        for code in graphs
    ]
    t0 = time.perf_counter()
    results = client.submit_many(batch)
    wall = time.perf_counter() - t0
    assert all(r.ok for r in results)
    hits = [r for r in results if r.cache_hit]
    assert hits, "warm batch produced no cache hits"
    return {
        "cold_ms": cold_ms,
        "hit_ms": statistics.median(r.latency_ms for r in hits),
        "jobs_per_sec": len(batch) / wall,
    }


def run() -> dict:
    graphs = {code: load(code) for code in CODES}
    with ServiceClient(
        n_workers=N_WORKERS,
        queue_depth=4 * HIT_JOBS_PER_CODE * len(CODES),
        policy=ResiliencePolicy(timeout=300.0, max_attempts=1),
    ) as client:
        repeats = [_run_repeat(client, graphs) for _ in range(REPEATS)]

    # Best-of-N on both sides of the ratio filters scheduler noise.
    cold_ms = {
        code: min(r["cold_ms"][code] for r in repeats) for code in CODES
    }
    hit_ms = min(r["hit_ms"] for r in repeats)
    jobs_per_sec = max(r["jobs_per_sec"] for r in repeats)
    speedups = [cold_ms[code] / hit_ms for code in CODES]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "bench": "service_throughput",
        "config": {
            "codes": list(CODES),
            "algorithm": ALGO,
            "n_workers": N_WORKERS,
            "hit_jobs_per_code": HIT_JOBS_PER_CODE,
            "repeats": REPEATS,
        },
        "cold_ms": cold_ms,
        "hit_ms": hit_ms,
        "jobs_per_sec": jobs_per_sec,
        "cache_hit_speedup": geomean,
    }


def main() -> None:
    result = run()
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    for code in CODES:
        print(f"{code:>4} cold: {result['cold_ms'][code]:9.2f} ms")
    print(f"cache-hit median:  {result['hit_ms']:9.4f} ms")
    print(f"warm throughput:   {result['jobs_per_sec']:9.0f} jobs/s")
    print(f"cache-hit speedup: {result['cache_hit_speedup']:9.1f}x (geomean)")
    print(f"snapshot written to {OUT_PATH}")


if __name__ == "__main__":
    main()
