"""Bench target: Table 2 — pruning efficiency (δ/α ratios).

The paper: the local-neighborhood-size pruning avoids 48.7%–92.8% of
non-maximal biclique checks across the 12 datasets.
"""

from conftest import SCALE, once

from repro.bench import experiment_table2, print_table2


def test_table2_pruning_ratios(benchmark):
    rows = once(benchmark, lambda: experiment_table2(scale=SCALE))
    print_table2(rows)

    for r in rows:
        # Pruning never makes the ratio worse...
        assert r.ratio_gmbe <= r.ratio_noprune, r.code
    # ...and across the suite avoids a large fraction of checks,
    # overlapping the paper's 48.7%-92.8% band.
    fractions = [r.avoided_fraction for r in rows]
    assert max(fractions) > 0.8
    assert sum(f > 0.4 for f in fractions) >= len(rows) // 2
