"""Shared benchmark configuration.

Environment knobs:

- ``REPRO_SCALE``        — dataset scale for the headline experiments
  (Table 1/2, Figs. 6–9, 13); default 1.0 (the calibrated analogs).
- ``REPRO_SWEEP_SCALE``  — dataset scale for the sensitivity sweeps
  (Figs. 10–12, which re-run GMBE 3–6× per dataset); default 0.5.

Runs within one pytest session share the in-process result cache
(:mod:`repro.bench.common`), so e.g. Fig. 8 reuses Fig. 6's GMBE runs.
"""

import os

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
SWEEP_SCALE = float(os.environ.get("REPRO_SWEEP_SCALE", "0.5"))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
