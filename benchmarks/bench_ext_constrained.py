"""Extension bench: size-constrained enumeration and maximum biclique.

Not a paper figure — covers the (p,q)-constrained setting and maximum
biclique search (both cited in the paper's §1) built on the GMBE
machinery.  The workload is the application-realistic one (planted
dense blocks in sparse noise, as in fraud/bicluster detection):
(α,β)-core reduction plus bound pruning should cut node counts by large
factors against enumerate-then-filter, and branch-and-bound should find
the planted maximum quickly.
"""

from conftest import once

from repro.core import (
    BicliqueCollector,
    constrained_mbe,
    maximum_biclique,
    oombea,
)
from repro.graph import planted_bicliques

P, Q = 6, 5


def make_workload():
    return planted_bicliques(
        900, 600,
        [(14, 9), (10, 8), (12, 6), (8, 7)],
        noise_p=0.006,
        overlap=0.3,
        seed=29,
        name="planted-market",
    )


def test_constrained_enumeration_speedup(benchmark):
    graph = make_workload()

    def run():
        full_col = BicliqueCollector()
        full = oombea(graph, full_col)
        con_col = BicliqueCollector()
        con = constrained_mbe(graph, P, Q, con_col)
        best, search = maximum_biclique(graph)
        return full, full_col, con, con_col, best, search

    full, full_col, con, con_col, best, search = once(benchmark, run)

    # Correctness: constrained == filtered.
    want = {
        b
        for b in full_col.as_set()
        if len(b.left) >= P and len(b.right) >= Q
    }
    assert con_col.as_set() == want
    assert len(want) >= 3  # the planted blocks (and their closures) hit

    print(
        f"\nConstrained ({P},{Q}): {con.n_maximal}/{full.n_maximal} "
        f"bicliques, nodes {con.counters.nodes_generated:,} vs "
        f"{full.counters.nodes_generated:,} "
        f"({full.counters.nodes_generated / max(con.counters.nodes_generated, 1):.1f}x fewer)"
    )
    print(
        f"Maximum biclique: {len(best.left)}x{len(best.right)} "
        f"({best.n_edges} edges) explored "
        f"{search.counters.nodes_generated:,} nodes"
    )

    # Core reduction + bound pruning must cut the explored tree hard.
    assert con.counters.nodes_generated < full.counters.nodes_generated / 3
    # The B&B search visits fewer nodes than full enumeration...
    assert search.counters.nodes_generated < full.counters.nodes_generated
    # ...and its winner really is the max over the enumeration,
    # at least as large as the biggest planted block.
    assert best.n_edges == max(b.n_edges for b in full_col.as_set())
    assert best.n_edges >= 14 * 9
