"""Synchronous facade over the asyncio broker.

Most callers of this library are synchronous scripts and notebooks;
:class:`ServiceClient` gives them the full service pipeline (cache,
coalescing, retry, metrics) without writing a line of asyncio: it runs a
private event loop on a daemon thread and bridges calls with
:func:`asyncio.run_coroutine_threadsafe`.

    with ServiceClient(n_workers=4) as client:
        first = client.submit(graph=matrix, algorithm="gmbe-host")
        again = client.submit(graph=matrix, algorithm="gmbe-host")
        assert again.cache_hit

"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable, Mapping

from .broker import AdmissionError, EnumerationBroker
from .jobs import Job, JobResult, JobStatus

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking client owning one broker on a background event loop."""

    def __init__(self, **broker_kwargs) -> None:
        self._broker = EnumerationBroker(**broker_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._closed = False
        self._call(self._broker.start())

    # ------------------------------------------------------------------
    def _call(self, coro):
        if self._closed:
            coro.close()  # avoid a never-awaited warning
            raise RuntimeError("client is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    @staticmethod
    def _as_job(job: Job | Mapping | None, kwargs: Mapping) -> Job:
        if job is None:
            return Job(**kwargs)
        if isinstance(job, Job):
            if kwargs:
                raise TypeError("pass either a Job or keyword fields, not both")
            return job
        return Job(**{**dict(job), **kwargs})

    # ------------------------------------------------------------------
    def register_graph(self, name: str, graph):
        """Register a dynamic graph for name-based queries (see broker)."""

        async def _register():
            return self._broker.register_graph(name, graph)

        return self._call(_register())

    def submit(self, job: Job | Mapping | None = None, /, **kwargs) -> JobResult:
        """Run one job to its terminal result (blocking).

        Accepts a prebuilt :class:`Job`, a mapping of job fields, or the
        fields as keyword arguments.  Raises :class:`AdmissionError` when
        the service queue is full.
        """
        return self._call(self._broker.submit(self._as_job(job, kwargs)))

    def submit_many(self, jobs: Iterable[Job | Mapping]) -> list[JobResult]:
        """Submit a batch concurrently; results in submission order.

        Unlike :meth:`submit`, a queue-full rejection is folded into the
        result list as a ``rejected`` :class:`JobResult` so one shed job
        doesn't discard the whole batch.
        """
        built = [self._as_job(j if isinstance(j, Job) else dict(j), {})
                 for j in jobs]

        async def _one(job: Job) -> JobResult:
            try:
                return await self._broker.submit(job)
            except AdmissionError as exc:
                return JobResult(
                    job_id=-1 if job.id is None else job.id,
                    status=JobStatus.REJECTED,
                    algorithm=job.algorithm,
                    error=str(exc),
                )

        async def _gather():
            return await asyncio.gather(*(_one(j) for j in built))

        return list(self._call(_gather()))

    def fetch_page(
        self,
        result: JobResult,
        cursor: str | None = None,
        limit: int = 100,
    ):
        """``(items, next_cursor)`` — page through a job's bicliques.

        Works on any terminal :class:`JobResult`: results backed by a
        compressed store decode one page at a time; inline results slice
        the tuple with identical cursor semantics.  Pass the returned
        ``next_cursor`` back in to continue; ``None`` means done.
        """
        return result.fetch_page(cursor, limit)

    def cancel(self, job_id: int) -> bool:
        async def _cancel():
            return self._broker.cancel(job_id)

        return self._call(_cancel())

    def health(self) -> dict:
        """The broker's liveness snapshot (queue, breaker, shard pool).

        Evaluated on the broker's own event loop so the breaker clock
        and queue depth are read consistently; see
        :meth:`EnumerationBroker.health`.
        """

        async def _health():
            return self._broker.health()

        return self._call(_health())

    # ------------------------------------------------------------------
    @property
    def broker(self) -> EnumerationBroker:
        return self._broker

    @property
    def metrics(self):
        return self._broker.metrics

    @property
    def telemetry(self):
        """The broker's :class:`~repro.telemetry.Telemetry`, or ``None``."""
        return self._broker.telemetry

    def metrics_snapshot(self) -> dict:
        return self._broker.metrics.snapshot()

    def telemetry_snapshot(self) -> dict:
        """Unified observability snapshot (JSON-serializable).

        ``metrics`` is the dotted-name registry dump and ``records`` the
        recent span/event records from the telemetry ring (empty when no
        :class:`~repro.telemetry.Telemetry` is attached — the metrics
        registry always exists because :class:`ServiceMetrics` owns one).
        """
        telemetry = self._broker.telemetry
        if telemetry is not None:
            self._broker._observe_gauges()
            return telemetry.snapshot()
        return {
            "enabled": False,
            "metrics": self._broker.metrics.registry.snapshot(),
            "records": [],
        }

    def close(self) -> None:
        if self._closed:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self._broker.stop(), self._loop
            ).result(timeout=10)
        finally:
            self._closed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
