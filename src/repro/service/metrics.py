"""Service observability: counters and latency/queue-depth histograms.

Everything here is plain Python with a JSON-serializable
:meth:`ServiceMetrics.snapshot` — the service-side analog of the GPU
simulator's profiler: cheap enough to always be on, rich enough to
answer "is the cache working?" and "where does latency come from?"
without attaching a debugger to a live broker.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Histogram", "ServiceMetrics"]


class Histogram:
    """Windowed sample recorder with percentile queries.

    Keeps the most recent ``window`` observations (a bounded deque, so a
    long-lived service never grows without bound) plus running count/sum
    over the full lifetime.  Percentiles use the nearest-rank method on
    the current window.
    """

    def __init__(self, window: int = 4096) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        self._samples.append(value)
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the current window (0 if empty)."""
        if not self._samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


@dataclass
class ServiceMetrics:
    """Counters + histograms one broker maintains."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    timeouts: int = 0
    expired: int = 0
    cancelled: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    #: Attempts that picked up an existing enumeration checkpoint
    #: instead of starting the job from scratch.
    resumed: int = 0
    #: End-to-end latency of jobs that ran on a worker (ms).
    latency_ms: Histogram = field(default_factory=Histogram)
    #: Latency of jobs answered straight from cache (ms).
    cache_hit_latency_ms: Histogram = field(default_factory=Histogram)
    #: Queue depth observed at each admission.
    queue_depth: Histogram = field(default_factory=Histogram)

    def snapshot(self) -> dict:
        """JSON-serializable state dump (counters + histogram summaries)."""
        return {
            "counters": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "expired": self.expired,
                "cancelled": self.cancelled,
                "retries": self.retries,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "coalesced": self.coalesced,
                "resumed": self.resumed,
            },
            "latency_ms": self.latency_ms.snapshot(),
            "cache_hit_latency_ms": self.cache_hit_latency_ms.snapshot(),
            "queue_depth": self.queue_depth.snapshot(),
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(self.snapshot(), **kwargs)
