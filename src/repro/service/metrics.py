"""Service observability, backed by the unified telemetry registry.

Historically this module owned a bespoke dataclass of counters and
histograms with its own ``snapshot()`` wiring.  It is now a thin
compatibility facade over :class:`repro.telemetry.MetricsRegistry`:
every counter attribute (``metrics.submitted += 1`` still works) reads
and writes a registry :class:`~repro.telemetry.Counter` under a stable
dotted name (``service.jobs.submitted``, ``service.cache.hits``, …),
and the histograms *are* registry histograms.  Consequences:

- ``registry.to_prometheus_text()`` / ``to_json()`` export the service
  counters alongside everything else registered (kernel phases, fault
  tallies) — no merging step;
- sharing one registry between a broker and a
  :class:`~repro.telemetry.Telemetry` object (the broker does this
  automatically when given ``telemetry=``) unifies the namespaces;
- :meth:`ServiceMetrics.snapshot` keeps its historical shape exactly,
  as a shim over the registry — existing dashboards and tests keep
  working;
- :meth:`ServiceMetrics.reset` zeroes everything for test isolation.
"""

from __future__ import annotations

import json

from ..telemetry import Histogram, MetricsRegistry

__all__ = ["DESCRIPTIONS", "Histogram", "ServiceMetrics"]

#: attribute name -> stable dotted registry name
COUNTER_NAMES = {
    "submitted": "service.jobs.submitted",
    "completed": "service.jobs.completed",
    "degraded": "service.jobs.degraded",
    "failed": "service.jobs.failed",
    "rejected": "service.jobs.rejected",
    "timeouts": "service.jobs.timeouts",
    "expired": "service.jobs.expired",
    "jobs_shed": "service.jobs.shed",
    "cancelled": "service.jobs.cancelled",
    "retries": "service.jobs.retries",
    "coalesced": "service.jobs.coalesced",
    "resumed": "service.jobs.resumed",
    "sharded": "service.jobs.sharded",
    "auto_shard_suppressed": "service.shard.auto_suppressed",
    "breaker_opened": "service.shard.breaker_opened",
    "cache_hits": "service.cache.hits",
    "cache_misses": "service.cache.misses",
    "tuned_hits": "service.tuning.hits",
    "tuned_misses": "service.tuning.misses",
    "tunes_started": "service.tuning.started",
}

HISTOGRAM_NAMES = {
    "latency_ms": "service.latency_ms",
    "cache_hit_latency_ms": "service.cache.hit_latency_ms",
    "queue_depth": "service.queue.depth",
}

#: ``# HELP`` text, keyed by dotted name (Prometheus export)
DESCRIPTIONS = {
    "service.jobs.submitted": "jobs accepted past admission control",
    "service.jobs.completed": "jobs that finished with a full result",
    "service.jobs.degraded":
        "sharded jobs that returned a partial result after quarantine",
    "service.jobs.failed": "jobs that raised and exhausted retries",
    "service.jobs.rejected": "submissions refused by admission control",
    "service.jobs.timeouts": "jobs cancelled by their deadline",
    "service.jobs.expired": "queued jobs whose TTL lapsed before dispatch",
    "service.jobs.shed": "queued jobs dropped by load shedding",
    "service.jobs.cancelled": "jobs cancelled by the client",
    "service.jobs.retries": "job attempts re-dispatched after a failure",
    "service.jobs.coalesced":
        "submissions answered by piggybacking an identical in-flight job",
    "service.jobs.resumed": "jobs resumed from a checkpoint",
    "service.jobs.sharded": "jobs dispatched through the shard coordinator",
    "service.shard.auto_suppressed":
        "auto-sharding decisions suppressed by the shard circuit breaker",
    "service.shard.breaker_opened": "shard circuit breaker open transitions",
    "service.cache.hits": "result-cache hits",
    "service.cache.misses": "result-cache misses",
    "service.tuning.hits": "tuned-config store hits at dispatch",
    "service.tuning.misses": "tuned-config store misses at dispatch",
    "service.tuning.started": "background auto-tune runs started",
    "service.latency_ms": "end-to-end latency of jobs that ran on a worker",
    "service.cache.hit_latency_ms":
        "latency of jobs answered straight from the result cache",
    "service.queue.depth": "queue depth observed at each admission",
}


class ServiceMetrics:
    """Counters + histograms one broker maintains (registry-backed).

    ``registry`` may be shared; the instruments are get-or-create, so a
    pre-populated registry (or two brokers over one registry — counts
    then aggregate) is fine.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            attr: self.registry.counter(
                name, description=DESCRIPTIONS.get(name)
            )
            for attr, name in COUNTER_NAMES.items()
        }
        #: End-to-end latency of jobs that ran on a worker (ms).
        self.latency_ms = self.registry.histogram(
            HISTOGRAM_NAMES["latency_ms"],
            description=DESCRIPTIONS["service.latency_ms"],
        )
        #: Latency of jobs answered straight from cache (ms).
        self.cache_hit_latency_ms = self.registry.histogram(
            HISTOGRAM_NAMES["cache_hit_latency_ms"],
            description=DESCRIPTIONS["service.cache.hit_latency_ms"],
        )
        #: Queue depth observed at each admission.
        self.queue_depth = self.registry.histogram(
            HISTOGRAM_NAMES["queue_depth"],
            description=DESCRIPTIONS["service.queue.depth"],
        )

    def reset(self) -> None:
        """Zero every service instrument (test isolation)."""
        for counter in self._counters.values():
            counter.reset()
        self.latency_ms.reset()
        self.cache_hit_latency_ms.reset()
        self.queue_depth.reset()

    def snapshot(self) -> dict:
        """JSON-serializable state dump (counters + histogram summaries).

        Compatibility shim: the shape predates the registry and is kept
        bit-identical; prefer ``registry.snapshot()`` (dotted names) or
        ``registry.to_prometheus_text()`` for new consumers.
        """
        return {
            "counters": {
                attr: self._counters[attr].value for attr in COUNTER_NAMES
            },
            "latency_ms": self.latency_ms.snapshot(),
            "cache_hit_latency_ms": self.cache_hit_latency_ms.snapshot(),
            "queue_depth": self.queue_depth.snapshot(),
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(self.snapshot(), **kwargs)


def _counter_property(attr: str) -> property:
    def _get(self: ServiceMetrics):
        return self._counters[attr].value

    def _set(self: ServiceMetrics, value) -> None:
        self._counters[attr].value = value

    return property(
        _get, _set, doc=f"registry counter {COUNTER_NAMES[attr]!r}"
    )


for _attr in COUNTER_NAMES:
    setattr(ServiceMetrics, _attr, _counter_property(_attr))
del _attr
