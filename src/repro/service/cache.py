"""Content-addressed result cache with an LRU byte budget.

Entries are keyed by ``(graph fingerprint, algorithm, config signature,
min_left, min_right)`` — the full identity of a query — so a hit is
*always* byte-identical to re-running the enumeration: two structurally
different graphs can never collide (the fingerprint hashes the CSR
arrays), and any knob that could matter is part of the key.

Invalidation is tag-driven: the broker registers each
:class:`~repro.streaming.DynamicBipartiteGraph` under a name and
:meth:`ResultCache.watch`\\ es it; every successful edge mutation drops
the entries carrying that graph's tag — and *only* those — so a cache
hit against a stale snapshot of a mutated graph is impossible even
before the fingerprint change makes the old entries unreachable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from ..api import as_bipartite_graph
from ..gmbe import GMBEConfig
from ..graph import BipartiteGraph

__all__ = ["CacheStats", "ResultCache", "graph_fingerprint"]

# Rough per-object overheads for the byte budget: a Biclique holds two
# int tuples (~8 bytes/element + tuple headers); entries carry key +
# bookkeeping.  Estimates, not exact sizes — the budget is a lever, not
# an audit.
_BYTES_PER_VERTEX = 8
_BYTES_PER_BICLIQUE = 96
_BYTES_PER_ENTRY = 160


def graph_fingerprint(data) -> str:
    """Content hash identifying a graph for cache keying."""
    graph = data if isinstance(data, BipartiteGraph) else as_bipartite_graph(data)
    return graph.fingerprint


def _entry_nbytes(value) -> int:
    """Budget charge for a cached value.

    A :class:`~repro.store.StoredResultSet` (anything exposing
    ``nbytes``) is charged its *encoded* payload size — the whole point
    of caching stores instead of tuples — while plain biclique tuples
    keep the modeled per-object estimate.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return _BYTES_PER_ENTRY + int(nbytes)
    total = _BYTES_PER_ENTRY
    for b in value:
        total += _BYTES_PER_BICLIQUE
        left = getattr(b, "left", b)
        right = getattr(b, "right", ())
        total += _BYTES_PER_VERTEX * (len(left) + len(right))
    return total


@dataclass
class CacheStats:
    """Counters the metrics layer folds into its snapshot."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class _Entry:
    bicliques: object  # tuple[Biclique, ...] or StoredResultSet
    nbytes: int
    tag: Hashable | None


class ResultCache:
    """LRU result cache bounded by an estimated byte budget."""

    def __init__(self, max_bytes: int = 64 << 20) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._current_bytes = 0
        self.stats = CacheStats()
        self._watched: list[tuple[object, object]] = []

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def make_key(
        graph: BipartiteGraph,
        algorithm: str,
        config: GMBEConfig,
        min_left: int,
        min_right: int,
    ) -> tuple:
        return (
            graph.fingerprint,
            algorithm,
            config.signature(),
            int(min_left),
            int(min_right),
        )

    # ------------------------------------------------------------------
    # Core LRU operations
    # ------------------------------------------------------------------
    def get(self, key: tuple):
        """Cached result (tuple or :class:`StoredResultSet`), or
        ``None``; a hit refreshes recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.bicliques

    def put(self, key: tuple, bicliques, tag: Hashable | None = None) -> bool:
        """Insert (or refresh) an entry; returns False if it can't fit.

        Accepts a biclique iterable (stored as a tuple, charged by the
        per-object model) or a :class:`~repro.store.StoredResultSet`
        (stored as-is, charged its encoded ``nbytes``).
        """
        if not hasattr(bicliques, "nbytes"):
            bicliques = tuple(bicliques)
        nbytes = _entry_nbytes(bicliques)
        if nbytes > self.max_bytes:
            return False  # would evict everything and still not fit
        old = self._entries.pop(key, None)
        if old is not None:
            self._current_bytes -= old.nbytes
        self._entries[key] = _Entry(bicliques, nbytes, tag)
        self._current_bytes += nbytes
        self.stats.puts += 1
        while self._current_bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._current_bytes -= evicted.nbytes
            self.stats.evictions += 1
        return True

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_tag(self, tag: Hashable) -> int:
        """Drop every entry carrying ``tag``; returns how many."""
        doomed = [k for k, e in self._entries.items() if e.tag == tag]
        for k in doomed:
            entry = self._entries.pop(k)
            self._current_bytes -= entry.nbytes
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def invalidate_graph(self, fingerprint: str) -> int:
        """Drop every entry keyed on this graph fingerprint."""
        doomed = [k for k in self._entries if k[0] == fingerprint]
        for k in doomed:
            entry = self._entries.pop(k)
            self._current_bytes -= entry.nbytes
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def watch(self, dynamic_graph, tag: Hashable):
        """Drop ``tag``'s entries whenever ``dynamic_graph`` mutates.

        Returns the attached listener (handy for detaching in tests via
        :meth:`DynamicBipartiteGraph.remove_update_listener`).
        """

        def _on_update(op: str, u: int, v: int) -> None:
            self.invalidate_tag(tag)

        dynamic_graph.add_update_listener(_on_update)
        self._watched.append((dynamic_graph, _on_update))
        return _on_update

    def unwatch_all(self) -> None:
        """Detach every listener this cache registered."""
        for graph, fn in self._watched:
            graph.remove_update_listener(fn)
        self._watched.clear()

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._entries.clear()
        self._current_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @property
    def current_bytes(self) -> int:
        return self._current_bytes

    def snapshot(self) -> dict:
        return {
            "entries": len(self._entries),
            "current_bytes": self._current_bytes,
            "max_bytes": self.max_bytes,
            **self.stats.as_dict(),
        }
