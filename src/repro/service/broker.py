"""Asyncio enumeration broker: admission, coalescing, dispatch.

One :class:`EnumerationBroker` owns the full serving pipeline::

    submit → cache lookup → coalesce with in-flight twin → bounded
    priority queue → dispatcher → worker pool → resilience wrapper →
    cache fill → fan-out to every waiter

Design decisions worth knowing:

- **Admission is explicit backpressure.**  The queue is bounded; a full
  queue raises :class:`AdmissionError` *at submission* instead of
  buffering unboundedly — the caller decides whether to shed or retry.
- **Coalescing is key-exact.**  Two jobs with the same cache key (graph
  fingerprint, algorithm, config signature, size filters) in flight at
  once execute **once**; every waiter receives the result, the
  duplicates marked ``coalesced``.
- **Snapshots are point-in-time.**  A job against a registered dynamic
  graph runs on the snapshot taken at submission.  A later edge update
  invalidates the cache entries for that graph (and changes the
  fingerprint), so no *future* job can hit a stale result — but an
  already-submitted job still answers for the moment it was admitted.
- **Faults stay inside the job.**  A worker raising mid-enumeration
  burns one attempt of that job only; dispatchers and the pool survive
  arbitrary job exceptions.
"""

from __future__ import annotations

import asyncio
import contextvars
import hashlib
import inspect
import itertools
import os
import time
from dataclasses import dataclass, replace
from typing import Callable

from ..api import as_bipartite_graph, enumerate_maximal_bicliques
from ..gmbe import GMBEConfig
from ..graph import BipartiteGraph
from ..parallel import WorkerPool
from ..sharding import DegradedShardRun
from ..store import StoredResultSet
from ..streaming import DynamicBipartiteGraph
from ..telemetry import NULL_TRACER, Telemetry, run_with_telemetry
from ..telemetry.flight import FLIGHT_VERSION, write_flight_record
from ..tuning import TunedConfigStore, TuningStoreError, device_key, tune
from ..gpusim.device import A100
from .cache import ResultCache
from .jobs import Job, JobResult, JobStatus
from .metrics import ServiceMetrics
from .resilience import ResiliencePolicy, execute_with_retry

__all__ = ["AdmissionError", "EnumerationBroker", "default_runner"]


class AdmissionError(RuntimeError):
    """The admission queue is full; the job was rejected, not queued."""


def default_runner(
    job: Job,
    graph: BipartiteGraph,
    config: GMBEConfig,
    checkpoint_path: str | None = None,
    shards: int = 1,
    shard_pool: str = "thread",
):
    """Execute one job exactly like the one-shot API would.

    When the broker assigns a ``checkpoint_path`` (its ``checkpoint_dir``
    is set and the job runs GMBE), the enumeration snapshots its
    frontier there and — if a previous attempt of the same job left a
    checkpoint behind — resumes from it instead of starting over.

    With ``shards > 1`` the job runs as N shard-jobs over disjoint
    root-task ownership sets (see :mod:`repro.sharding`) on the
    ``shard_pool`` backend (``"thread"`` or supervised ``"process"``);
    ``checkpoint_path`` is then a *directory* of per-shard snapshots, so
    a retry resumes exactly the shards that crashed.  A process-backed
    run that quarantines shards raises
    :class:`~repro.sharding.DegradedShardRun` — the broker maps it to
    the ``degraded`` job status.
    """
    if shards > 1 and job.algorithm == "gmbe":
        return enumerate_maximal_bicliques(
            graph,
            algorithm=job.algorithm,
            min_left=job.min_left,
            min_right=job.min_right,
            config=config,
            shards=shards,
            checkpoint_path=checkpoint_path,
            shard_pool=shard_pool,
        )
    if checkpoint_path is not None and job.algorithm == "gmbe":
        return enumerate_maximal_bicliques(
            graph,
            algorithm=job.algorithm,
            min_left=job.min_left,
            min_right=job.min_right,
            config=config,
            checkpoint_path=checkpoint_path,
            resume=os.path.exists(checkpoint_path),
        )
    return enumerate_maximal_bicliques(
        graph,
        algorithm=job.algorithm,
        min_left=job.min_left,
        min_right=job.min_right,
        config=config,
    )


def _accepts_kwarg(runner, name: str) -> bool:
    """True if ``runner`` takes ``name`` as a keyword."""
    try:
        params = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    if name in params:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def _accepts_checkpoint(runner) -> bool:
    """True if ``runner`` takes a ``checkpoint_path`` keyword."""
    return _accepts_kwarg(runner, "checkpoint_path")


@dataclass
class _Entry:
    job: Job
    graph: BipartiteGraph
    config: GMBEConfig
    key: tuple
    tag: str | None
    future: asyncio.Future
    submitted_at: float
    deadline_at: float | None
    cancelled: bool = False
    #: effective shard fan-out (job-requested or auto-shard policy)
    shards: int = 1


def _swallow(cf) -> None:
    # An attempt abandoned by wait_for may still finish (threads can't be
    # interrupted); consume its outcome so nothing leaks a warning.
    try:
        if not cf.cancelled():
            cf.exception()
    except Exception:
        pass


class EnumerationBroker:
    """The service front door; see module docstring for the pipeline."""

    def __init__(
        self,
        *,
        n_workers: int = 4,
        queue_depth: int = 64,
        cache: ResultCache | None = None,
        policy: ResiliencePolicy | None = None,
        metrics: ServiceMetrics | None = None,
        base_config: GMBEConfig | None = None,
        runner: Callable[[Job, BipartiteGraph, GMBEConfig], list] | None = None,
        checkpoint_dir: str | None = None,
        telemetry: Telemetry | None = None,
        telemetry_flush_interval: float = 5.0,
        tuning_store: TunedConfigStore | str | None = None,
        tune_on_miss: bool = True,
        tune_budget=None,
        auto_shard_over_edges: int | None = None,
        auto_shard_count: int = 4,
        shard_pool: str = "thread",
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        flight_dir: str | None = None,
        inline_results: int | None = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if telemetry_flush_interval <= 0:
            raise ValueError("telemetry_flush_interval must be positive")
        if auto_shard_over_edges is not None and auto_shard_over_edges < 0:
            raise ValueError(
                f"auto_shard_over_edges must be non-negative, "
                f"got {auto_shard_over_edges}"
            )
        if auto_shard_count < 2:
            raise ValueError(
                f"auto_shard_count must be at least 2, got {auto_shard_count}"
            )
        if shard_pool not in ("thread", "process"):
            raise ValueError(
                f'shard_pool must be "thread" or "process", got {shard_pool!r}'
            )
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be positive, got {breaker_threshold}"
            )
        if breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, got {breaker_cooldown}"
            )
        if inline_results is not None and inline_results < 0:
            raise ValueError(
                f"inline_results must be non-negative, got {inline_results}"
            )
        self.n_workers = n_workers
        self.queue_depth = queue_depth
        self.cache = cache if cache is not None else ResultCache()
        policy = policy or ResiliencePolicy()
        if DegradedShardRun not in policy.non_retryable:
            # A degraded sharded run already exhausted its per-shard
            # retry budget inside the coordinator; a broker-level retry
            # would re-run every completed shard just to fail again.
            policy = replace(
                policy,
                non_retryable=policy.non_retryable + (DegradedShardRun,),
            )
        self.policy = policy
        #: unified observability: when a Telemetry object is attached,
        #: the service metrics register into *its* registry (one dotted
        #: namespace for service + kernel), spans flow from submit down
        #: into the enumeration, and a periodic flusher drains the sinks.
        self.telemetry = telemetry
        self.telemetry_flush_interval = telemetry_flush_interval
        self._tracer = telemetry.tracer if telemetry is not None else NULL_TRACER
        if metrics is not None:
            self.metrics = metrics
        else:
            self.metrics = ServiceMetrics(
                registry=telemetry.registry if telemetry is not None else None
            )
        self.base_config = base_config or GMBEConfig()
        #: tuned-config store behind the ``Job(config="tuned")`` sentinel.
        #: ``None`` means the sentinel always resolves to ``base_config``.
        if isinstance(tuning_store, (str, os.PathLike)):
            tuning_store = TunedConfigStore(tuning_store)
        self.tuning_store = tuning_store
        #: kick a background tune (on the worker pool) when a "tuned"
        #: job misses the store, so later submissions hit it.
        self.tune_on_miss = tune_on_miss
        self.tune_budget = tune_budget
        #: graph fingerprints with a background tune in flight
        self._tuning_inflight: set[str] = set()
        self._runner = runner or default_runner
        #: jobs checkpoint under this directory (one file per cache key)
        #: so a retried/resubmitted job resumes instead of restarting;
        #: ``None`` disables job-level checkpointing entirely.
        self.checkpoint_dir = checkpoint_dir
        self._runner_takes_checkpoint = _accepts_checkpoint(self._runner)
        #: route any gmbe job on a graph above this edge count through
        #: the sharding subsystem, even when the job didn't ask — the
        #: "graph one device can't hold" admission policy.  ``None``
        #: shards only jobs that request it (``Job.shards > 1``).
        self.auto_shard_over_edges = auto_shard_over_edges
        self.auto_shard_count = auto_shard_count
        #: pool backend sharded jobs run on ("thread" | supervised
        #: "process"); only forwarded to runners that accept it.
        self.shard_pool = shard_pool
        #: circuit breaker over *auto*-sharding: after this many
        #: consecutive degraded sharded runs, stop volunteering jobs
        #: into the dying shard backend for ``breaker_cooldown`` seconds
        #: (explicitly sharded jobs still go through — the caller asked).
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._breaker_failures = 0
        self._breaker_open_until: float | None = None
        self._breaker_probing = False
        #: degraded / pool-broken runs dump their flight record (the
        #: coordinator's black box + this broker's health snapshot) as
        #: ``flight-{job}.json`` under this directory; ``None`` disables.
        self.flight_dir = flight_dir
        #: materialize ``JobResult.bicliques`` only for results of at
        #: most this many bicliques; larger results travel exclusively
        #: as the compressed ``JobResult.store`` (page with
        #: ``fetch_page``).  ``None`` inlines everything — the legacy
        #: O(output) behavior.  Either way the *cache* holds the
        #: compressed store, so the byte budget charges encoded size.
        self.inline_results = inline_results
        #: pool stats off the most recent degraded sharded run — the
        #: per-worker liveness/restart view ``health()`` exposes.
        self._last_shard_pool_stats: dict = {}
        self._runner_takes_shards = _accepts_kwarg(self._runner, "shards")
        self._runner_takes_shard_pool = _accepts_kwarg(
            self._runner, "shard_pool"
        )
        self._graphs: dict[str, DynamicBipartiteGraph] = {}
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._jobs: dict[int, _Entry] = {}
        self._seq = itertools.count()
        self._queue: asyncio.PriorityQueue | None = None
        self._pool: WorkerPool | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._flusher: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._queue is not None:
            raise RuntimeError("broker already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue(maxsize=self.queue_depth)
        self._pool = WorkerPool(self.n_workers)
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{i}")
            for i in range(self.n_workers)
        ]
        if self.telemetry is not None and self.telemetry.enabled:
            self._flusher = asyncio.create_task(
                self._flush_loop(), name="telemetry-flush"
            )

    async def _flush_loop(self) -> None:
        """Periodically drain telemetry sinks and refresh live gauges."""
        assert self.telemetry is not None
        while True:
            await asyncio.sleep(self.telemetry_flush_interval)
            self._observe_gauges()
            self.telemetry.flush()

    def _observe_gauges(self) -> None:
        if self.telemetry is None:
            return
        registry = self.telemetry.registry
        registry.gauge("service.queue.size").set(self.queue_size)
        registry.gauge("service.jobs.in_flight").set(self.in_flight)
        registry.gauge("service.cache.bytes").set(
            getattr(self.cache, "current_bytes", 0)
        )

    async def stop(self) -> None:
        if self._flusher is not None:
            self._flusher.cancel()
            await asyncio.gather(self._flusher, return_exceptions=True)
            self._flusher = None
        for task in self._dispatchers:
            task.cancel()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        # Resolve whatever never ran so no caller hangs forever.
        for entry in list(self._jobs.values()):
            if not entry.future.done():
                self.metrics.cancelled += 1
                entry.future.set_result(
                    self._result(entry, JobStatus.CANCELLED,
                                 error="broker stopped")
                )
        self._jobs.clear()
        self._inflight.clear()
        if self._pool is not None:
            # wait=False: a still-running enumeration thread must not
            # block shutdown; its result is already unreachable.
            self._pool.shutdown(wait=False)
            self._pool = None
        self._queue = None
        if self.telemetry is not None:
            self._observe_gauges()
            self.telemetry.flush()

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------
    def register_graph(self, name: str, graph) -> DynamicBipartiteGraph:
        """Register a (dynamic) graph under ``name`` and watch it.

        Jobs may then reference it via ``Job(graph_name=name)``; edge
        updates to the returned :class:`DynamicBipartiteGraph` drop the
        cache entries for this graph — and only this graph.
        """
        if name in self._graphs:
            raise ValueError(f"graph {name!r} already registered")
        if isinstance(graph, DynamicBipartiteGraph):
            dyn = graph
        else:
            dyn = DynamicBipartiteGraph.from_graph(as_bipartite_graph(graph))
        self._graphs[name] = dyn
        self.cache.watch(dyn, tag=name)
        return dyn

    def _resolve_graph(self, job: Job) -> tuple[BipartiteGraph, str | None]:
        if job.graph_name is not None:
            dyn = self._graphs.get(job.graph_name)
            if dyn is None:
                raise ValueError(
                    f"unknown graph {job.graph_name!r}; registered: "
                    f"{sorted(self._graphs)}"
                )
            return dyn.snapshot(), job.graph_name
        return as_bipartite_graph(job.graph), None

    # ------------------------------------------------------------------
    # Tuned-config resolution
    # ------------------------------------------------------------------
    #: the topology ``default_runner`` executes on (api defaults), and
    #: therefore the topology tuned configs are looked up for.
    _TUNE_DEVICE_KEY = device_key(A100, 1)

    def _resolve_tuned(self, graph: BipartiteGraph) -> GMBEConfig | None:
        """Store lookup for a ``config="tuned"`` job.

        Hit: the stored config (zero simulator work).  Miss: ``None``
        (the caller falls back to ``base_config``) and, when enabled, a
        fire-and-forget background tune on the worker pool so later
        submissions for this graph hit the store.  A corrupt store
        entry degrades to a miss — serving must not fail on it — and
        the background re-tune overwrites the bad file.
        """
        if self.tuning_store is None:
            return None
        try:
            entry = self.tuning_store.get(
                graph.fingerprint, self._TUNE_DEVICE_KEY
            )
        except TuningStoreError:
            entry = None
        if entry is not None:
            self.metrics.tuned_hits += 1
            return entry.config
        self.metrics.tuned_misses += 1
        self._maybe_tune_in_background(graph)
        return None

    def _maybe_tune_in_background(self, graph: BipartiteGraph) -> None:
        if not self.tune_on_miss or self._pool is None:
            return
        fingerprint = graph.fingerprint
        if fingerprint in self._tuning_inflight:
            return
        self._tuning_inflight.add(fingerprint)
        self.metrics.tunes_started += 1
        cf = self._pool.submit(
            tune,
            graph,
            budget=self.tune_budget,
            store=self.tuning_store,
        )

        def _done(f) -> None:
            self._tuning_inflight.discard(fingerprint)
            _swallow(f)  # a failed tune must never surface in serving

        cf.add_done_callback(_done)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, job: Job) -> asyncio.Future:
        """Admit ``job``; the returned future resolves to its JobResult.

        Raises :class:`AdmissionError` when the queue is full and
        :class:`ValueError` for unresolvable jobs (unknown graph name).
        Cache hits and coalesced twins resolve without touching the
        queue.
        """
        if self._queue is None or self._loop is None:
            raise RuntimeError("broker is not started")
        loop = self._loop
        t0 = loop.time()
        self.metrics.submitted += 1
        job.id = next(self._seq)
        graph, tag = self._resolve_graph(job)
        tuned = self._resolve_tuned(graph) if job.wants_tuned else None
        # The cache key (and the per-key job checkpoint below) is built
        # from the *resolved* config, never the "tuned" sentinel: a
        # re-tune yields a different signature, so stale entries keyed
        # under the previous tuned config simply become unreachable.
        config = job.resolve_config(self.base_config, tuned=tuned)
        key = ResultCache.make_key(
            graph, job.algorithm, config, job.min_left, job.min_right
        )

        with self._tracer.span(
            "cache.lookup", job_id=job.id, algorithm=job.algorithm
        ) as lookup_span:
            cached = self.cache.get(key)
            lookup_span.set_attr("hit", cached is not None)
        if cached is not None:
            self.metrics.cache_hits += 1
            latency = (loop.time() - t0) * 1e3
            self.metrics.cache_hit_latency_ms.record(latency)
            fut = loop.create_future()
            if isinstance(cached, StoredResultSet):
                store, inline = cached, self._inline(cached)
            else:
                # Legacy tuple entries (direct cache.put by tests/tools).
                store, inline = None, cached
            fut.set_result(
                JobResult(
                    job_id=job.id,
                    status=JobStatus.COMPLETED,
                    algorithm=job.algorithm,
                    bicliques=inline,
                    store=store,
                    cache_hit=True,
                    latency_ms=latency,
                )
            )
            return fut
        self.metrics.cache_misses += 1

        primary = self._inflight.get(key)
        if primary is not None:
            self.metrics.coalesced += 1
            waiter = loop.create_future()
            job_id = job.id

            def _fan_out(f: asyncio.Future) -> None:
                if waiter.cancelled():
                    return
                if f.cancelled():
                    waiter.cancel()
                    return
                exc = f.exception()
                if exc is not None:
                    waiter.set_exception(exc)
                    return
                res: JobResult = f.result()
                waiter.set_result(
                    replace(
                        res,
                        job_id=job_id,
                        coalesced=True,
                        cache_hit=False,
                        latency_ms=(loop.time() - t0) * 1e3,
                    )
                )

            primary.add_done_callback(_fan_out)
            return waiter

        fut = loop.create_future()
        deadline_at = None if job.deadline is None else t0 + job.deadline
        shards = job.shards
        if (
            shards == 1
            and self.auto_shard_over_edges is not None
            and job.algorithm == "gmbe"
            and graph.n_edges > self.auto_shard_over_edges
        ):
            if self._breaker_blocks(t0):
                self.metrics.auto_shard_suppressed += 1
            else:
                shards = self.auto_shard_count
        if shards > 1 and not self._runner_takes_shards:
            shards = 1  # custom runner can't fan out; run single-node
        entry = _Entry(
            job=job,
            graph=graph,
            config=config,
            key=key,
            tag=tag,
            future=fut,
            submitted_at=t0,
            deadline_at=deadline_at,
            shards=shards,
        )
        try:
            self._queue.put_nowait((job.priority, next(self._seq), entry))
        except asyncio.QueueFull:
            self.metrics.rejected += 1
            raise AdmissionError(
                f"admission queue full (depth {self.queue_depth}); "
                f"job {job.id} rejected"
            ) from None
        self._inflight[key] = fut
        self._jobs[job.id] = entry
        self.metrics.queue_depth.record(self._queue.qsize())
        return fut

    async def submit(self, job: Job) -> JobResult:
        """Admit ``job`` and wait for its terminal result."""
        return await self.submit_nowait(job)

    def cancel(self, job_id: int) -> bool:
        """Request cancellation; True if the job was still pending.

        Queued jobs resolve as ``cancelled`` without running; a job
        already executing stops retrying at the next attempt boundary
        (a busy worker thread itself cannot be interrupted).
        """
        entry = self._jobs.get(job_id)
        if entry is None or entry.future.done():
            return False
        entry.cancelled = True
        return True

    # ------------------------------------------------------------------
    # Auto-shard circuit breaker
    # ------------------------------------------------------------------
    def _breaker_blocks(self, now: float) -> bool:
        """True when auto-sharding should be suppressed right now.

        Closed → pass.  Open → block until the cooldown elapses.
        Half-open (cooldown elapsed) → let exactly one probe job
        through; its outcome closes or re-opens the breaker.
        """
        if self._breaker_open_until is None:
            return False
        if now < self._breaker_open_until:
            return True
        if self._breaker_probing:
            return True
        self._breaker_probing = True
        return False

    def _note_shard_outcome(self, ok: bool) -> None:
        """Feed one sharded-run outcome into the breaker."""
        if ok:
            self._breaker_failures = 0
            self._breaker_open_until = None
            self._breaker_probing = False
            return
        self._breaker_failures += 1
        reopen = self._breaker_open_until is not None  # failed probe
        if reopen or self._breaker_failures >= self.breaker_threshold:
            if self._loop is not None:
                self._breaker_open_until = (
                    self._loop.time() + self.breaker_cooldown
                )
            self._breaker_probing = False
            self.metrics.breaker_opened += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            _, _, entry = await self._queue.get()
            try:
                await self._run_entry(entry)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: never kill a dispatcher
                if not entry.future.done():
                    self.metrics.failed += 1
                    entry.future.set_result(
                        self._result(
                            entry, JobStatus.FAILED,
                            error=f"dispatch error: {exc}",
                        )
                    )
            finally:
                self._queue.task_done()

    def _checkpoint_path_for(self, entry: _Entry) -> str | None:
        """Stable per-cache-key checkpoint file, or ``None`` when
        job-level checkpointing is off or the runner can't take one.

        A sharded entry gets a *directory* (one snapshot per shard)
        instead of a file — named off the same key digest, so a
        resubmission after a crash resumes exactly its crashed shards.
        """
        if self.checkpoint_dir is None or not self._runner_takes_checkpoint:
            return None
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        digest = hashlib.sha256(repr(entry.key).encode()).hexdigest()[:16]
        if entry.shards > 1:
            return os.path.join(self.checkpoint_dir, f"job-{digest}.shards")
        return os.path.join(self.checkpoint_dir, f"job-{digest}.ckpt")

    async def _run_entry(self, entry: _Entry) -> None:
        assert self._loop is not None and self._pool is not None
        loop = self._loop
        if entry.cancelled:
            self.metrics.cancelled += 1
            self._finish(entry, self._result(entry, JobStatus.CANCELLED,
                                             error="cancelled while queued"))
            return
        if entry.deadline_at is not None and loop.time() >= entry.deadline_at:
            # Shed at dequeue: a job whose deadline passed while queued
            # must never occupy a worker just to time out on it.
            self.metrics.expired += 1
            self.metrics.jobs_shed += 1
            self._finish(entry, self._result(entry, JobStatus.EXPIRED,
                                             error="deadline passed in queue"))
            return

        pool = self._pool
        ckpt_path = self._checkpoint_path_for(entry)
        telemetry = self.telemetry
        traced = telemetry is not None and telemetry.enabled

        def _attempt():
            kwargs = {}
            if entry.shards > 1:
                kwargs["shards"] = entry.shards
                if self._runner_takes_shard_pool:
                    kwargs["shard_pool"] = self.shard_pool
            if ckpt_path is not None:
                if entry.shards > 1:
                    # Directory of per-shard snapshots: a resume is only
                    # real when a crashed shard actually left one behind
                    # (completed shards erase theirs).
                    if os.path.isdir(ckpt_path) and any(
                        f.endswith(".ckpt") for f in os.listdir(ckpt_path)
                    ):
                        self.metrics.resumed += 1
                elif os.path.exists(ckpt_path):
                    self.metrics.resumed += 1
                kwargs["checkpoint_path"] = ckpt_path
            if traced:
                # Ship a copy of the broker-side context (current span =
                # the retry attempt) across the thread hop, with the
                # telemetry object planted for ambient discovery — so
                # kernel spans nest under this job with its job_id.
                ctx = contextvars.copy_context()
                cf = pool.submit(
                    ctx.run, run_with_telemetry, telemetry, self._runner,
                    entry.job, entry.graph, entry.config, **kwargs,
                )
            else:
                cf = pool.submit(
                    self._runner, entry.job, entry.graph, entry.config,
                    **kwargs,
                )
            cf.add_done_callback(_swallow)
            return asyncio.wrap_future(cf)

        if entry.shards > 1:
            self.metrics.sharded += 1
        with self._tracer.span(
            "broker.dispatch",
            job_id=entry.job.id,
            algorithm=entry.job.algorithm,
            shards=entry.shards,
        ) as dispatch_span:
            outcome = await execute_with_retry(
                _attempt,
                self.policy,
                deadline=entry.deadline_at,
                should_cancel=lambda: entry.cancelled,
                tracer=self._tracer,
            )
            degraded = isinstance(outcome.exception, DegradedShardRun)
            dispatch_span.set_attr(
                "status", "degraded" if degraded else outcome.status
            )
            dispatch_span.set_attr("attempts", outcome.attempts)
            if degraded:
                dispatch_span.set_attr(
                    "quarantined",
                    sorted(outcome.exception.partial.quarantined),
                )
        self.metrics.retries += outcome.retries
        if outcome.status == "completed":
            bicliques = tuple(outcome.value)
            # Cache the compressed store, not the tuple: the byte budget
            # charges encoded size, and later hits can page without ever
            # re-materializing the full list.
            store = StoredResultSet.from_bicliques(bicliques)
            self.cache.put(entry.key, store, tag=entry.tag)
            self.metrics.completed += 1
            latency = (loop.time() - entry.submitted_at) * 1e3
            self.metrics.latency_ms.record(latency)
            if entry.shards > 1:
                self._note_shard_outcome(True)
            result = JobResult(
                job_id=entry.job.id,
                status=JobStatus.COMPLETED,
                algorithm=entry.job.algorithm,
                bicliques=bicliques if self._inline_ok(len(bicliques)) else (),
                store=store,
                attempts=outcome.attempts,
                latency_ms=latency,
            )
        elif degraded:
            # Explicit partial enumeration: surface everything the run
            # did complete, plus the exact shard inventory — and never
            # cache it (a later submission must get the full set).
            partial = outcome.exception.partial
            self.metrics.degraded += 1
            opened_before = self.metrics.breaker_opened
            self._note_shard_outcome(False)
            self._last_shard_pool_stats = dict(
                partial.extras.get("pool_stats") or {}
            )
            self._record_flight(
                entry, "degraded",
                partial=partial,
                breaker_opened_now=(
                    self.metrics.breaker_opened > opened_before
                ),
            )
            latency = (loop.time() - entry.submitted_at) * 1e3
            self.metrics.latency_ms.record(latency)
            job = entry.job
            bicliques = tuple(
                b for b in partial.bicliques
                if len(b.left) >= job.min_left
                and len(b.right) >= job.min_right
            )
            result = JobResult(
                job_id=job.id,
                status=JobStatus.DEGRADED,
                algorithm=job.algorithm,
                bicliques=bicliques if self._inline_ok(len(bicliques)) else (),
                store=StoredResultSet.from_bicliques(bicliques),
                error=str(outcome.exception),
                attempts=outcome.attempts,
                latency_ms=latency,
                completed_shards=tuple(partial.completed_shards),
                quarantined_shards=tuple(sorted(partial.quarantined)),
            )
        else:
            status = {
                "timeout": JobStatus.TIMEOUT,
                "cancelled": JobStatus.CANCELLED,
            }.get(outcome.status, JobStatus.FAILED)
            if status == JobStatus.TIMEOUT:
                self.metrics.timeouts += 1
            elif status == JobStatus.CANCELLED:
                self.metrics.cancelled += 1
            else:
                self.metrics.failed += 1
                if "PoolBrokenError" in (outcome.error or ""):
                    # The shard pool died under the job: nothing partial
                    # to attach, but the black box (attempt count, error,
                    # broker health) still matters most on this path.
                    self._record_flight(entry, "pool_broken",
                                        error=outcome.error)
            result = self._result(
                entry, status, error=outcome.error, attempts=outcome.attempts
            )
        self._finish(entry, result)

    def _inline_ok(self, n: int) -> bool:
        return self.inline_results is None or n <= self.inline_results

    def _inline(self, store: StoredResultSet) -> tuple:
        """Materialize a cached store for the inline field, if allowed."""
        return store.as_tuple() if self._inline_ok(len(store)) else ()

    def _result(
        self, entry: _Entry, status: str, *, error: str | None = None,
        attempts: int = 0,
    ) -> JobResult:
        latency = 0.0
        if self._loop is not None:
            latency = (self._loop.time() - entry.submitted_at) * 1e3
        return JobResult(
            job_id=entry.job.id,
            status=status,
            algorithm=entry.job.algorithm,
            error=error,
            attempts=attempts,
            latency_ms=latency,
        )

    def _finish(self, entry: _Entry, result: JobResult) -> None:
        # Order matters: the cache is already filled (on success) before
        # the in-flight slot clears, so a submit landing in between
        # either coalesces or hits — it can never duplicate the work.
        self._inflight.pop(entry.key, None)
        self._jobs.pop(entry.job.id, None)
        if not entry.future.done():
            entry.future.set_result(result)

    # ------------------------------------------------------------------
    # Health and the flight recorder
    # ------------------------------------------------------------------
    def _record_flight(
        self, entry: _Entry, reason: str, *, partial=None,
        error: str | None = None, breaker_opened_now: bool = False,
    ) -> str | None:
        """Persist the job's black box under ``self.flight_dir``.

        The coordinator already assembled the interesting part — merged
        span tree, worker last-flushes, supervisor verdicts — into
        ``partial.extras["flight"]``; this stamps the broker's view on
        top (job id, health snapshot, whether this outcome tripped the
        breaker) and writes ``flight-{job}.json``.  Runs that carry no
        coordinator record (telemetry off, or the pool broke before one
        was built) still get a minimal record.  Never raises: the black
        box must not turn a degraded run into a failed one.
        """
        if self.flight_dir is None:
            return None
        flight = None
        if partial is not None:
            flight = partial.extras.get("flight")
        if flight is None:
            flight = {
                "flight_version": FLIGHT_VERSION,
                "reason": reason,
                "job_id": None,
                "trace_id": None,
                "written_unix_s": time.time(),
            }
        else:
            flight = dict(flight)
            flight["reason"] = reason
        if flight.get("job_id") is None:
            flight["job_id"] = entry.job.id
        if error is not None:
            flight["error"] = error
        flight["breaker_opened_now"] = breaker_opened_now
        flight["health"] = self.health()
        try:
            path = write_flight_record(self.flight_dir, flight)
        except OSError:
            return None
        if partial is not None:
            partial.extras["flight_path"] = path
        return path

    def health(self) -> dict:
        """One JSON-serializable liveness snapshot of the broker.

        Answerable while degraded — this is what an operator (or
        ``gmbe serve --status-out``) polls when the service is limping:
        queue pressure, breaker state, and the per-worker
        liveness/restart view from the last supervised shard run.
        """
        now = self._loop.time() if self._loop is not None else None
        if self._breaker_open_until is None:
            breaker_state = "closed"
        elif now is not None and now >= self._breaker_open_until:
            breaker_state = "half-open"
        else:
            breaker_state = "open"
        m = self.metrics
        return {
            "running": self._queue is not None,
            "queue": {
                "depth": self.queue_size,
                "capacity": self.queue_depth,
            },
            "jobs": {
                "in_flight": self.in_flight,
                "submitted": m.submitted,
                "completed": m.completed,
                "degraded": m.degraded,
                "failed": m.failed,
            },
            "breaker": {
                "state": breaker_state,
                "consecutive_failures": self._breaker_failures,
                "open_until": self._breaker_open_until,
                "probing": self._breaker_probing,
            },
            "workers": {"n_workers": self.n_workers},
            "shard_pool": dict(self._last_shard_pool_stats),
        }

    # ------------------------------------------------------------------
    @property
    def queue_size(self) -> int:
        return 0 if self._queue is None else self._queue.qsize()

    @property
    def in_flight(self) -> int:
        return len(self._inflight)
