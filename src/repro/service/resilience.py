"""Per-job fault handling: timeout, cancellation, retry with backoff.

The broker hands each admitted job to :func:`execute_with_retry`, which
drives a fresh execution attempt per round:

- each attempt runs under :func:`asyncio.wait_for` with the policy
  timeout, further clamped by the job's absolute deadline;
- a raising attempt (the :class:`Boom`-style faults exercised in
  ``tests/test_failure_injection.py`` — any ``Exception``) is retried up
  to ``max_attempts`` times with exponential backoff;
- cancellation is cooperative: a ``should_cancel`` probe is consulted
  between attempts, so a cancelled job stops retrying immediately.

Crucially the failure surface is the *attempt*, never the broker: the
worst a job can do is exhaust its attempts and resolve as failed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable

__all__ = ["ExecutionOutcome", "JobTimeoutError", "ResiliencePolicy",
           "execute_with_retry"]


class JobTimeoutError(Exception):
    """An execution attempt exceeded its time budget."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """Fault-handling knobs applied to every job of a broker.

    Attributes
    ----------
    timeout:
        Per-*attempt* wall-clock budget in seconds (``None`` = unbounded).
    max_attempts:
        Total execution attempts (1 = no retries).
    backoff_base:
        Sleep before retry ``k`` is ``backoff_base * multiplier**(k-1)``,
        capped at ``backoff_max``.
    retryable:
        Exception types worth retrying; anything else fails immediately.
        Timeouts are always retryable (the attempt may have been unlucky
        on a loaded pool).
    """

    timeout: float | None = 30.0
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    retryable: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff values must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_for(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (1-based)."""
        delay = self.backoff_base * self.backoff_multiplier ** (retry_index - 1)
        return min(delay, self.backoff_max)


@dataclass
class ExecutionOutcome:
    """What happened across all attempts of one job."""

    status: str  # "completed" | "failed" | "timeout" | "cancelled"
    value: object = None
    error: str | None = None
    attempts: int = 0
    retries: int = 0


async def execute_with_retry(
    attempt: Callable[[], Awaitable],
    policy: ResiliencePolicy,
    *,
    deadline: float | None = None,
    should_cancel: Callable[[], bool] | None = None,
) -> ExecutionOutcome:
    """Run ``attempt()`` under the policy; never raises job errors.

    ``attempt`` must build a *fresh* awaitable per call.  ``deadline`` is
    an absolute :func:`asyncio.get_running_loop().time` instant further
    capping each attempt.  Loop cancellation (broker shutdown) is the one
    thing re-raised — it belongs to the caller, not the job.
    """
    loop = asyncio.get_running_loop()
    attempts = 0
    last_error: str | None = None
    timed_out = False
    while attempts < policy.max_attempts:
        if should_cancel is not None and should_cancel():
            return ExecutionOutcome(
                status="cancelled",
                error="cancelled before attempt",
                attempts=attempts,
                retries=max(0, attempts - 1),
            )
        budget = policy.timeout
        if deadline is not None:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return ExecutionOutcome(
                    status="timeout",
                    error=last_error or "deadline exhausted",
                    attempts=attempts,
                    retries=max(0, attempts - 1),
                )
            budget = remaining if budget is None else min(budget, remaining)
        attempts += 1
        try:
            value = await asyncio.wait_for(attempt(), timeout=budget)
            return ExecutionOutcome(
                status="completed",
                value=value,
                attempts=attempts,
                retries=attempts - 1,
            )
        except asyncio.CancelledError:
            raise  # broker shutdown, not a job fault
        except asyncio.TimeoutError:
            timed_out = True
            last_error = f"attempt {attempts} timed out after {budget:.3g}s"
        except policy.retryable as exc:
            timed_out = False
            last_error = f"{type(exc).__name__}: {exc}"
        except BaseException as exc:
            return ExecutionOutcome(
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
                attempts=attempts,
                retries=attempts - 1,
            )
        if attempts < policy.max_attempts:
            delay = policy.backoff_for(attempts)
            if delay > 0:
                await asyncio.sleep(delay)
    return ExecutionOutcome(
        status="timeout" if timed_out else "failed",
        error=last_error,
        attempts=attempts,
        retries=attempts - 1,
    )
