"""Per-job fault handling: timeout, cancellation, retry with backoff.

The broker hands each admitted job to :func:`execute_with_retry`, which
drives a fresh execution attempt per round:

- each attempt runs under :func:`asyncio.wait_for` with the policy
  timeout, further clamped by the job's absolute deadline;
- a raising attempt (the :class:`Boom`-style faults exercised in
  ``tests/test_failure_injection.py`` — any ``Exception``) is retried up
  to ``max_attempts`` times with exponential backoff;
- cancellation is cooperative: a ``should_cancel`` probe is consulted
  between attempts, so a cancelled job stops retrying immediately.

Crucially the failure surface is the *attempt*, never the broker: the
worst a job can do is exhaust its attempts and resolve as failed.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from ..telemetry import NULL_TRACER

__all__ = ["ExecutionOutcome", "JobTimeoutError", "ResiliencePolicy",
           "execute_with_retry"]


class JobTimeoutError(Exception):
    """An execution attempt exceeded its time budget."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """Fault-handling knobs applied to every job of a broker.

    Attributes
    ----------
    timeout:
        Per-*attempt* wall-clock budget in seconds (``None`` = unbounded).
    max_attempts:
        Total execution attempts (1 = no retries).
    backoff_base:
        Sleep before retry ``k`` is ``backoff_base * multiplier**(k-1)``,
        capped at ``backoff_max``.
    backoff_jitter:
        Fraction of random extra sleep applied *after* the cap: the
        actual delay is ``capped * (1 + jitter * U[0,1))``.  Without it
        the broker's dispatchers, which share one policy, retry their
        failed attempts in lockstep and hammer the pool in synchronized
        waves.  Zero disables jitter (deterministic tests).
    retryable:
        Exception types worth retrying; anything else fails immediately.
        Timeouts are always retryable (the attempt may have been unlucky
        on a loaded pool).
    non_retryable:
        Exception types that fail immediately even when ``retryable``
        would match them — checked first.  The broker lists
        :class:`~repro.sharding.DegradedShardRun` here: a degraded
        sharded run already burned its per-shard retry budget inside the
        coordinator, so a broker-level retry would only repeat the whole
        spectacle.
    """

    timeout: float | None = 30.0
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.25
    retryable: tuple[type[BaseException], ...] = (Exception,)
    non_retryable: tuple[type[BaseException], ...] = ()

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff values must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")

    def backoff_for(
        self, retry_index: int, rng: random.Random | None = None
    ) -> float:
        """Sleep before the ``retry_index``-th retry (1-based).

        The exponential delay is capped at ``backoff_max`` first, then
        jittered (cap-then-jitter), so the spread survives even once
        every dispatcher has hit the cap.
        """
        delay = self.backoff_base * self.backoff_multiplier ** (retry_index - 1)
        delay = min(delay, self.backoff_max)
        if self.backoff_jitter > 0:
            u = (rng.random() if rng is not None else random.random())
            delay *= 1.0 + self.backoff_jitter * u
        return delay


@dataclass
class ExecutionOutcome:
    """What happened across all attempts of one job.

    ``exception`` is the *last* attempt's actual exception object (a
    :class:`JobTimeoutError` for timeouts), annotated with every prior
    attempt's failure via ``add_note`` (``__notes__``; appended to
    ``args`` on interpreters without PEP 678) — so re-raising it keeps
    the full retry history alongside the original traceback.
    """

    status: str  # "completed" | "failed" | "timeout" | "cancelled"
    value: object = None
    error: str | None = None
    attempts: int = 0
    retries: int = 0
    exception: BaseException | None = None
    #: one ``"attempt N: ..."`` entry per failed attempt, in order
    attempt_errors: list[str] = field(default_factory=list)

    def raise_for_status(self):
        """Return ``value`` on success, else re-raise the last attempt's
        exception (with prior attempts attached as notes)."""
        if self.status == "completed":
            return self.value
        if self.exception is not None:
            raise self.exception
        raise RuntimeError(self.error or f"job {self.status}")


def _annotate(exc: BaseException, prior: list[str]) -> BaseException:
    """Attach prior-attempt failures to ``exc`` (PEP 678 notes, with an
    ``args`` fallback for interpreters without ``add_note``)."""
    for note in prior:
        if hasattr(exc, "add_note"):
            exc.add_note(note)
        else:  # pragma: no cover - pre-3.11 fallback
            exc.args = exc.args + (note,)
    return exc


async def execute_with_retry(
    attempt: Callable[[], Awaitable],
    policy: ResiliencePolicy,
    *,
    deadline: float | None = None,
    should_cancel: Callable[[], bool] | None = None,
    tracer=None,
) -> ExecutionOutcome:
    """Run ``attempt()`` under the policy; never raises job errors.

    ``attempt`` must build a *fresh* awaitable per call.  ``deadline`` is
    an absolute :func:`asyncio.get_running_loop().time` instant further
    capping each attempt.  Loop cancellation (broker shutdown) is the one
    thing re-raised — it belongs to the caller, not the job.

    ``tracer`` (a :class:`repro.telemetry.Tracer`) wraps every attempt
    in a ``retry.attempt`` span — child of the caller's current span, so
    attempts inherit the job correlation — marked ``status="error"``
    when the attempt raises or times out.
    """
    loop = asyncio.get_running_loop()
    tracer = tracer if tracer is not None else NULL_TRACER
    attempts = 0
    last_error: str | None = None
    last_exc: BaseException | None = None
    history: list[str] = []
    timed_out = False
    while attempts < policy.max_attempts:
        if should_cancel is not None and should_cancel():
            return ExecutionOutcome(
                status="cancelled",
                error="cancelled before attempt",
                attempts=attempts,
                retries=max(0, attempts - 1),
                attempt_errors=history,
            )
        budget = policy.timeout
        if deadline is not None:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return ExecutionOutcome(
                    status="timeout",
                    error=last_error or "deadline exhausted",
                    attempts=attempts,
                    retries=max(0, attempts - 1),
                    exception=(
                        _annotate(last_exc, history[:-1])
                        if last_exc is not None
                        else JobTimeoutError("deadline exhausted")
                    ),
                    attempt_errors=history,
                )
            budget = remaining if budget is None else min(budget, remaining)
        attempts += 1
        try:
            with tracer.span("retry.attempt", attempt=attempts):
                value = await asyncio.wait_for(attempt(), timeout=budget)
            return ExecutionOutcome(
                status="completed",
                value=value,
                attempts=attempts,
                retries=attempts - 1,
                attempt_errors=history,
            )
        except asyncio.CancelledError:
            raise  # broker shutdown, not a job fault
        except asyncio.TimeoutError:
            timed_out = True
            last_error = f"attempt {attempts} timed out after {budget:.3g}s"
            last_exc = JobTimeoutError(last_error)
            history.append(f"attempt {attempts}: {last_error}")
        except policy.non_retryable as exc:
            # Listed as terminal — fail now even if retryable matches too.
            history.append(
                f"attempt {attempts}: {type(exc).__name__}: {exc}"
            )
            return ExecutionOutcome(
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
                attempts=attempts,
                retries=attempts - 1,
                exception=_annotate(exc, history[:-1]),
                attempt_errors=history,
            )
        except policy.retryable as exc:
            timed_out = False
            last_error = f"{type(exc).__name__}: {exc}"
            last_exc = exc
            history.append(f"attempt {attempts}: {last_error}")
        except BaseException as exc:
            history.append(
                f"attempt {attempts}: {type(exc).__name__}: {exc}"
            )
            return ExecutionOutcome(
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
                attempts=attempts,
                retries=attempts - 1,
                exception=_annotate(exc, history[:-1]),
                attempt_errors=history,
            )
        if attempts < policy.max_attempts:
            delay = policy.backoff_for(attempts)
            if deadline is not None:
                # Never sleep past the job's deadline: a full backoff that
                # overshoots it burns budget the next attempt could have
                # used — and the loop's deadline check would then expire
                # the job without ever making that attempt.
                delay = min(delay, max(0.0, deadline - loop.time()))
            if delay > 0:
                await asyncio.sleep(delay)
    # Retries exhausted: surface the final attempt's actual exception,
    # carrying the earlier attempts as notes, not just a summary string.
    if last_exc is not None:
        _annotate(last_exc, history[:-1])
    return ExecutionOutcome(
        status="timeout" if timed_out else "failed",
        error=last_error,
        attempts=attempts,
        retries=attempts - 1,
        exception=last_exc,
        attempt_errors=history,
    )
