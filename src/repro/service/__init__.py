"""Enumeration-as-a-service layer: batching, caching, fault tolerance.

The ROADMAP's serving stack over the one-shot API — an asyncio
:class:`EnumerationBroker` (admission control, duplicate-query
coalescing, priority dispatch onto a :class:`repro.parallel.WorkerPool`),
a content-addressed :class:`ResultCache` invalidated by streaming edge
updates, per-job :class:`ResiliencePolicy` (timeout / retry / cancel),
:class:`ServiceMetrics` observability, and the synchronous
:class:`ServiceClient` facade.  ``gmbe serve`` drives it from the CLI.
"""

from .broker import AdmissionError, EnumerationBroker, default_runner
from .cache import CacheStats, ResultCache, graph_fingerprint
from .client import ServiceClient
from .jobs import Job, JobResult, JobStatus, SERVICE_ALGORITHMS
from .metrics import Histogram, ServiceMetrics
from .resilience import (
    ExecutionOutcome,
    JobTimeoutError,
    ResiliencePolicy,
    execute_with_retry,
)

__all__ = [
    "AdmissionError",
    "CacheStats",
    "EnumerationBroker",
    "ExecutionOutcome",
    "Histogram",
    "Job",
    "JobResult",
    "JobStatus",
    "JobTimeoutError",
    "ResiliencePolicy",
    "ResultCache",
    "SERVICE_ALGORITHMS",
    "ServiceClient",
    "ServiceMetrics",
    "default_runner",
    "execute_with_retry",
    "graph_fingerprint",
]
