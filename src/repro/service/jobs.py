"""Job and result value types for the enumeration service.

A :class:`Job` is one enumeration query: a graph (given directly, or by
the name of a graph registered with the broker), an algorithm, size
filters, optional per-job :class:`~repro.gmbe.GMBEConfig` overrides, a
priority, and an optional deadline.  A :class:`JobResult` is everything
the service knows about how the query went: the bicliques, of course,
but also whether they came from cache, how many execution attempts were
needed, and the end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..api import validate_size_filters
from ..gmbe import GMBEConfig

__all__ = ["Job", "JobResult", "JobStatus", "SERVICE_ALGORITHMS"]

#: Algorithms a job may request — mirrors :data:`repro.api._ALGORITHMS`.
SERVICE_ALGORITHMS = (
    "gmbe",
    "gmbe-host",
    "mbea",
    "imbea",
    "pmbe",
    "oombea",
    "parmbe",
)


class JobStatus:
    """Terminal states of a service job (plain strings for JSON ease)."""

    COMPLETED = "completed"
    #: Completed with quarantined shards — partial but explicit inventory.
    DEGRADED = "degraded"
    FAILED = "failed"
    TIMEOUT = "timeout"
    REJECTED = "rejected"
    EXPIRED = "expired"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """One enumeration query submitted to the service.

    Attributes
    ----------
    graph:
        Anything :func:`repro.api.as_bipartite_graph` accepts.  Mutually
        exclusive with ``graph_name``.
    graph_name:
        Name of a :class:`~repro.streaming.DynamicBipartiteGraph`
        registered with the broker; the job runs against a snapshot
        taken at dispatch time, and cache entries are invalidated when
        that graph mutates.
    algorithm:
        One of :data:`SERVICE_ALGORITHMS`.
    min_left, min_right:
        Size filters, validated exactly like the one-shot API.
    config:
        Optional full :class:`GMBEConfig` replacing the broker's base
        config for this job, or the string ``"tuned"`` to request the
        broker's per-graph tuned configuration: the broker resolves the
        sentinel against its :class:`~repro.tuning.TunedConfigStore`
        *before* building the cache key, so cache entries and job
        checkpoints are always keyed by the **resolved** config — a
        re-tune changes the key and can never serve stale results.  On
        a store miss the broker falls back to its base config (and may
        kick off a background tune, see
        :class:`~repro.service.EnumerationBroker`).
    config_overrides:
        Field-level overrides applied on top of ``config`` (or the
        broker's base config) via :meth:`GMBEConfig.with_`.
    shards:
        With ``shards > 1`` (``algorithm="gmbe"`` only) the broker runs
        the job as N shard-jobs over disjoint root-task ownership sets
        and merges (see :mod:`repro.sharding`).  The cache is keyed on
        the *logical* job — a sharded and an unsharded submission of the
        same query share cache entries and coalesce together.
    priority:
        Lower runs first; ties dispatch FIFO.
    deadline:
        Optional seconds-from-submission budget.  A job still queued
        when its deadline passes is dropped with status ``expired``
        (it never wastes a worker); the deadline also caps per-attempt
        timeouts for running jobs.
    id:
        Assigned by the broker at admission.
    """

    graph: Any = None
    graph_name: str | None = None
    algorithm: str = "gmbe"
    min_left: int = 1
    min_right: int = 1
    config: GMBEConfig | str | None = None
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    shards: int = 1
    priority: int = 0
    deadline: float | None = None
    id: int | None = None

    def __post_init__(self) -> None:
        if (self.graph is None) == (self.graph_name is None):
            raise ValueError("provide exactly one of graph or graph_name")
        if self.algorithm not in SERVICE_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {sorted(SERVICE_ALGORITHMS)}"
            )
        self.min_left, self.min_right = validate_size_filters(
            self.min_left, self.min_right
        )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if isinstance(self.shards, bool) or not isinstance(self.shards, int):
            raise ValueError(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.shards > 1 and self.algorithm != "gmbe":
            raise ValueError(
                f'shards > 1 is only supported by algorithm="gmbe", '
                f"not {self.algorithm!r}"
            )
        if isinstance(self.config, str) and self.config != "tuned":
            raise ValueError(
                f"config must be a GMBEConfig or the string 'tuned', "
                f"got {self.config!r}"
            )
        # Fail on bogus overrides at submission, not inside a worker.
        self.resolve_config(GMBEConfig())

    @property
    def wants_tuned(self) -> bool:
        """True if this job requested the ``"tuned"`` config sentinel."""
        return self.config == "tuned"

    def resolve_config(
        self, base: GMBEConfig, *, tuned: GMBEConfig | None = None
    ) -> GMBEConfig:
        """Effective config: job config (or ``base``) + field overrides.

        ``tuned`` substitutes for the ``"tuned"`` sentinel (the broker
        passes its store-resolved config here); a sentinel with no
        ``tuned`` available falls back to ``base``.
        """
        if isinstance(self.config, str):
            cfg = tuned if tuned is not None else base
        else:
            cfg = self.config or base
        if self.config_overrides:
            cfg = cfg.with_(**dict(self.config_overrides))
        return cfg


@dataclass
class JobResult:
    """Terminal outcome of one job.

    Results travel two ways: ``bicliques`` is the inline materialized
    tuple (kept for API compatibility and small result sets), ``store``
    is the compressed :class:`~repro.store.StoredResultSet` the broker
    builds when configured with ``inline_results`` — page through it
    with :meth:`fetch_page` instead of holding the whole list.
    """

    job_id: int
    status: str
    algorithm: str
    bicliques: tuple = ()
    error: str | None = None
    attempts: int = 0
    cache_hit: bool = False
    coalesced: bool = False
    latency_ms: float = 0.0
    #: Shard ids that finished / were quarantined (``degraded`` only —
    #: empty for every other status, including plain ``completed``).
    completed_shards: tuple = ()
    quarantined_shards: tuple = ()
    #: Compressed result store, when the broker built one; compared by
    #: content nowhere — identity only — so it stays out of equality.
    store: Any = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == JobStatus.COMPLETED

    @property
    def partial(self) -> bool:
        """True when ``bicliques`` is an explicit partial enumeration."""
        return self.status == JobStatus.DEGRADED

    @property
    def count(self) -> int:
        if not self.bicliques and self.store is not None:
            return len(self.store)
        return len(self.bicliques)

    def fetch_page(self, cursor: str | None = None, limit: int = 100):
        """``(items, next_cursor)`` over this result's bicliques.

        Served from the compressed store when present (no full
        materialization), else from the inline tuple with identical
        cursor semantics — callers cannot tell which backing they got.
        """
        if self.store is not None:
            return self.store.page(cursor, limit)
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit}")
        start = 0
        if cursor:
            try:
                start = int(cursor)
            except ValueError:
                raise ValueError(
                    f"invalid cursor {cursor!r}: cursors are opaque tokens "
                    f"returned by a previous fetch_page() call"
                ) from None
            if start < 0:
                raise ValueError(f"invalid cursor {cursor!r}: negative ordinal")
        items = list(self.bicliques[start:start + limit])
        next_cursor = (
            str(start + limit)
            if start + limit < len(self.bicliques) else None
        )
        return items, next_cursor

    def describe(self) -> str:
        """One human line, the ``gmbe serve`` per-job output."""
        if self.ok:
            src = "hit" if self.cache_hit else (
                "coalesced" if self.coalesced else "miss"
            )
            return (
                f"job {self.job_id}: ok {self.count} bicliques "
                f"{self.latency_ms:.2f}ms (algo={self.algorithm} "
                f"cache={src} attempts={self.attempts})"
            )
        if self.partial:
            return (
                f"job {self.job_id}: degraded {self.count} bicliques "
                f"from shards {list(self.completed_shards)}; quarantined "
                f"{list(self.quarantined_shards)} "
                f"({self.latency_ms:.2f}ms attempts={self.attempts})"
            )
        return (
            f"job {self.job_id}: {self.status} after {self.attempts} "
            f"attempt(s): {self.error or 'no detail'}"
        )
