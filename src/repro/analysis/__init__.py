"""Post-processing of biclique sets: statistics, greedy edge-cover
selection, and overlap clustering."""

from .cover import CoverResult, greedy_edge_cover
from .overlap import OverlapComponents, jaccard, overlap_components
from .stats import (
    BicliqueSetStats,
    edge_coverage,
    participation_counts,
    summarize,
)

__all__ = [
    "BicliqueSetStats",
    "CoverResult",
    "OverlapComponents",
    "edge_coverage",
    "greedy_edge_cover",
    "jaccard",
    "overlap_components",
    "participation_counts",
    "summarize",
]
