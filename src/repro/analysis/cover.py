"""Biclique selection: greedy edge cover / summarization.

Applications rarely present thousands of overlapping maximal bicliques
raw; they pick a small, diverse subset that explains the graph.  The
classic formulation is maximum edge coverage: choose ``k`` bicliques
maximizing the number of distinct edges covered — submodular, so the
greedy algorithm carries the usual ``1 - 1/e`` guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.bicliques import Biclique
from ..graph.bipartite import BipartiteGraph

__all__ = ["CoverResult", "greedy_edge_cover"]


@dataclass
class CoverResult:
    """Outcome of a greedy cover selection."""

    selected: list[Biclique]
    #: distinct edges newly covered by each selection, in pick order
    marginal_gains: list[int] = field(default_factory=list)
    total_edges: int = 0

    @property
    def covered_edges(self) -> int:
        return sum(self.marginal_gains)

    @property
    def coverage(self) -> float:
        return self.covered_edges / self.total_edges if self.total_edges else 1.0


def greedy_edge_cover(
    bicliques: Sequence[Biclique],
    graph: BipartiteGraph,
    k: int,
    *,
    min_gain: int = 1,
) -> CoverResult:
    """Pick up to ``k`` bicliques greedily maximizing new edge coverage.

    Stops early once no candidate adds at least ``min_gain`` new edges.
    Lazy-greedy with an upper-bound sort keeps re-evaluations down.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    result = CoverResult(selected=[], total_edges=graph.n_edges)
    covered: set[tuple[int, int]] = set()

    def gain(b: Biclique) -> int:
        return sum(
            1 for u in b.left for v in b.right if (u, v) not in covered
        )

    # Lazy greedy: keep (stale upper bound, biclique) sorted descending.
    import heapq

    heap: list[tuple[int, int, Biclique]] = [
        (-b.n_edges, i, b) for i, b in enumerate(bicliques)
    ]
    heapq.heapify(heap)
    while heap and len(result.selected) < k:
        neg_bound, i, b = heapq.heappop(heap)
        g = gain(b)
        if g < min_gain:
            continue
        if heap and g < -heap[0][0]:
            heapq.heappush(heap, (-g, i, b))  # stale bound; re-queue
            continue
        result.selected.append(b)
        result.marginal_gains.append(g)
        for u in b.left:
            for v in b.right:
                covered.add((u, v))
    return result
