"""Biclique overlap structure.

Two maximal bicliques sharing many vertices usually describe the same
underlying community (the paper's e-commerce rings fragment into many
overlapping maximal bicliques).  This module clusters a biclique set by
vertex overlap: build the overlap graph (bicliques as nodes, edges when
the shared-vertex count or Jaccard passes a threshold) and return its
connected components as merged communities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.bicliques import Biclique

__all__ = ["OverlapComponents", "overlap_components", "jaccard"]


def jaccard(a: Biclique, b: Biclique) -> float:
    """Jaccard similarity over the combined vertex sets (sides tagged)."""
    sa = {("u", x) for x in a.left} | {("v", x) for x in a.right}
    sb = {("u", x) for x in b.left} | {("v", x) for x in b.right}
    union = len(sa | sb)
    return len(sa & sb) / union if union else 1.0


@dataclass
class OverlapComponents:
    """Connected components of the overlap graph."""

    #: list of components; each component is a list of biclique indices
    components: list[list[int]]
    bicliques: Sequence[Biclique]

    @property
    def n_components(self) -> int:
        return len(self.components)

    def merged_vertex_sets(self) -> list[tuple[set[int], set[int]]]:
        """Per component, the union of member (L, R) vertex sets."""
        out = []
        for comp in self.components:
            us: set[int] = set()
            vs: set[int] = set()
            for i in comp:
                us.update(self.bicliques[i].left)
                vs.update(self.bicliques[i].right)
            out.append((us, vs))
        return out


def overlap_components(
    bicliques: Sequence[Biclique],
    *,
    min_jaccard: float = 0.3,
) -> OverlapComponents:
    """Cluster ``bicliques`` by vertex overlap (union-find on pairs).

    Quadratic in the number of bicliques with an inverted-index
    prefilter: only pairs sharing at least one vertex are scored.
    """
    n = len(bicliques)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    by_vertex: dict[tuple[str, int], list[int]] = {}
    for i, b in enumerate(bicliques):
        for u in b.left:
            by_vertex.setdefault(("u", u), []).append(i)
        for v in b.right:
            by_vertex.setdefault(("v", v), []).append(i)

    checked: set[tuple[int, int]] = set()
    for members in by_vertex.values():
        for idx in range(len(members) - 1):
            for jdx in range(idx + 1, len(members)):
                pair = (members[idx], members[jdx])
                if pair in checked:
                    continue
                checked.add(pair)
                if jaccard(bicliques[pair[0]], bicliques[pair[1]]) >= min_jaccard:
                    union(*pair)

    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    components = sorted(groups.values(), key=len, reverse=True)
    return OverlapComponents(components=components, bicliques=bicliques)
