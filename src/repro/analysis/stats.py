"""Descriptive statistics over a set of maximal bicliques.

The applications the paper motivates (fraud rings, biclusters,
recommendation cohorts) rarely stop at the raw biclique list — they ask
*how big, how overlapping, how much of the graph is explained*.  This
module computes those summaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.bicliques import Biclique
from ..graph.bipartite import BipartiteGraph

__all__ = ["BicliqueSetStats", "summarize", "participation_counts", "edge_coverage"]


@dataclass(frozen=True)
class BicliqueSetStats:
    """Summary of a biclique collection."""

    n_bicliques: int
    max_left: int
    max_right: int
    max_edges: int
    mean_left: float
    mean_right: float
    median_edges: float
    #: histogram {(|L|, |R|) -> count}
    shape_histogram: dict[tuple[int, int], int]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_bicliques} bicliques; sides up to "
            f"{self.max_left}x{self.max_right}, max {self.max_edges} edges"
        )


def summarize(bicliques: Iterable[Biclique]) -> BicliqueSetStats:
    """Compute :class:`BicliqueSetStats` over ``bicliques``."""
    bs = list(bicliques)
    if not bs:
        return BicliqueSetStats(0, 0, 0, 0, 0.0, 0.0, 0.0, {})
    lefts = np.array([len(b.left) for b in bs])
    rights = np.array([len(b.right) for b in bs])
    edges = lefts * rights
    hist = Counter((int(l), int(r)) for l, r in zip(lefts, rights))
    return BicliqueSetStats(
        n_bicliques=len(bs),
        max_left=int(lefts.max()),
        max_right=int(rights.max()),
        max_edges=int(edges.max()),
        mean_left=float(lefts.mean()),
        mean_right=float(rights.mean()),
        median_edges=float(np.median(edges)),
        shape_histogram=dict(hist),
    )


def participation_counts(
    bicliques: Sequence[Biclique], n_u: int, n_v: int
) -> tuple[np.ndarray, np.ndarray]:
    """How many bicliques each vertex belongs to.

    High-participation vertices are the hubs that drive the paper's
    load-imbalance pathology; in fraud settings they are the shared
    accounts linking rings.
    """
    u_counts = np.zeros(n_u, dtype=np.int64)
    v_counts = np.zeros(n_v, dtype=np.int64)
    for b in bicliques:
        u_counts[list(b.left)] += 1
        v_counts[list(b.right)] += 1
    return u_counts, v_counts


def edge_coverage(
    bicliques: Iterable[Biclique], graph: BipartiteGraph
) -> float:
    """Fraction of the graph's edges inside at least one biclique.

    For the set of *all* maximal bicliques this is 1.0 (every edge is a
    1×1 biclique extendable to a maximal one); for a selection it
    measures how much structure the selection explains.
    """
    if graph.n_edges == 0:
        return 1.0
    covered: set[tuple[int, int]] = set()
    for b in bicliques:
        for u in b.left:
            for v in b.right:
                covered.add((u, v))
    return len(covered) / graph.n_edges
