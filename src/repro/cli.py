"""Command-line interface.

Subcommands::

    gmbe datasets                      list the bundled dataset analogs
    gmbe stats  <graph>                Table-1 statistics of a graph
    gmbe run    <graph> [options]      enumerate maximal bicliques
    gmbe bench  <experiment> [options] regenerate a paper table/figure
    gmbe figures [--out DIR]           render every figure as SVG
    gmbe verify <graph> <bicliques>    certify an enumeration output
    gmbe serve  [--jobs FILE]          run a batch through the service layer
    gmbe faults replay <graph> <log>   re-run a recorded fault log
    gmbe tune   <graph> [--budget N]   autotune kernel knobs for a graph

``<graph>`` is either a dataset code (e.g. ``EE``) or a path to an
edge-list file.  ``<experiment>`` is one of table1, table2, fig6..fig13.
"""

from __future__ import annotations

import argparse
import sys
import time

from .core import BicliqueWriter, imbea, mbea, oombea, parmbe, pmbe
from .datasets import DATASET_ORDER, DATASETS, load
from .gmbe import GMBEConfig, gmbe_gpu, gmbe_host
from .gpusim.device import DEVICE_PRESETS
from .graph import BipartiteGraph, compute_stats, read_edge_list

__all__ = ["main", "build_parser"]

_ALGOS = {
    "mbea": mbea,
    "imbea": imbea,
    "pmbe": pmbe,
    "oombea": oombea,
    "parmbe": parmbe,
    "gmbe": None,       # simulated GPU; handled specially
    "gmbe-host": None,  # sequential GMBE; handled specially
}

_EXPERIMENTS = (
    "table1", "table2", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12", "fig13", "all",
)


def _load_graph(spec: str) -> BipartiteGraph:
    if spec in DATASETS:
        return load(spec)
    return read_edge_list(spec)


def build_parser() -> argparse.ArgumentParser:
    """Build the `gmbe` argument parser (see module docs for commands)."""
    parser = argparse.ArgumentParser(
        prog="gmbe",
        description="GMBE reproduction: maximal biclique enumeration "
        "with a simulated GPU (SC '23).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list bundled dataset analogs")

    p_stats = sub.add_parser("stats", help="graph statistics (Table 1 row)")
    p_stats.add_argument("graph", help="dataset code or edge-list path")

    p_run = sub.add_parser("run", help="enumerate maximal bicliques")
    p_run.add_argument("graph", help="dataset code or edge-list path")
    p_run.add_argument(
        "--algo", choices=sorted(_ALGOS), default="gmbe", help="algorithm"
    )
    p_run.add_argument(
        "--device", choices=sorted(DEVICE_PRESETS), default="A100"
    )
    p_run.add_argument("--gpus", type=int, default=1, help="simulated GPUs")
    p_run.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="simulated cluster machines (each with --gpus GPUs); "
        "values > 1 use the distributed extension",
    )
    p_run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the enumeration into N independent shard-jobs over "
        "disjoint root-ownership sets and merge (gmbe only; "
        "bit-identical to --shards 1); with --nodes > 1 shards are "
        "placed round-robin over the cluster's GPUs",
    )
    p_run.add_argument(
        "--shard-balancer",
        choices=["greedy", "contiguous", "round-robin"],
        default="greedy",
        help="how root ownership is balanced across shards",
    )
    p_run.add_argument(
        "--pool",
        choices=["thread", "process"],
        default="thread",
        help="shard execution backend (--shards > 1 only): 'thread' runs "
        "shards in-process; 'process' runs each shard in a supervised "
        "spawned worker with heartbeats, crash restarts, and quarantine "
        "— a degraded (partial) run prints its shard inventory and "
        "exits 1",
    )
    p_run.add_argument("--no-prune", action="store_true")
    p_run.add_argument(
        "--scheduling", choices=["task", "warp", "block"], default="task"
    )
    p_run.add_argument("--warps-per-sm", type=int, default=16)
    p_run.add_argument("--tuned", action="store_true",
                       help="use the per-graph tuned config from the tuning "
                       "store if present (gmbe/gmbe-host; explicit knob "
                       "flags above are ignored when a tuned entry hits)")
    p_run.add_argument("--tuning-store", metavar="DIR", default=None,
                       help="tuned-config store directory (default: "
                       "$GMBE_TUNING_STORE or ~/.cache/gmbe/tuned)")
    p_run.add_argument(
        "--output", help="write bicliques to this file (default: count only)"
    )
    p_run.add_argument(
        "--page-limit", type=int, default=None, metavar="N",
        help="print one page of at most N bicliques (sorted) from the "
        "compressed result store, plus the cursor for the next page",
    )
    p_run.add_argument(
        "--cursor", default=None, metavar="TOK",
        help="resume pagination from this cursor token (printed by a "
        "previous --page-limit run); requires --page-limit",
    )
    p_run.add_argument("--max-task-retries", type=int, default=3,
                       help="failure budget per task lineage under faults")
    p_run.add_argument("--telemetry-out", metavar="PATH",
                       help="enable unified telemetry (gmbe only) and write "
                       "its JSON snapshot — metrics registry plus trace "
                       "records — to PATH")
    p_run.add_argument("--flight-dir", metavar="DIR", default=None,
                       help="dump a flight-{job}.json black box here when a "
                       "sharded --pool process run degrades (quarantined "
                       "shards); inspect with 'gmbe flight show'")
    rob = p_run.add_argument_group(
        "robustness (gmbe only)",
        "deterministic fault injection and checkpoint/resume; "
        "see DESIGN.md §9",
    )
    rob.add_argument("--checkpoint", metavar="PATH",
                     help="snapshot the enumeration frontier to PATH")
    rob.add_argument("--resume", action="store_true",
                     help="continue from the --checkpoint snapshot")
    rob.add_argument("--checkpoint-every", type=int, default=256,
                     metavar="N", help="snapshot every N completed tasks")
    rob.add_argument("--halt-after-tasks", type=int, default=None,
                     metavar="N",
                     help="stop after N tasks (writes a final snapshot)")
    rob.add_argument("--fault-seed", type=int, default=None,
                     help="enable fault injection with this FaultPlan seed")
    rob.add_argument("--fault-sm-crash", type=float, default=0.0,
                     metavar="P", help="per-task SM-crash probability")
    rob.add_argument("--fault-warp-hang", type=float, default=0.0,
                     metavar="P", help="per-task warp-hang probability")
    rob.add_argument("--fault-queue-drop", type=float, default=0.0,
                     metavar="P", help="per-enqueue silent-drop probability")
    rob.add_argument("--fault-mem-pressure", type=float, default=0.0,
                     metavar="P", help="per-task memory-pressure probability")
    rob.add_argument("--fault-log", metavar="PATH",
                     help="write the injected-fault log JSON to PATH")

    p_bench = sub.add_parser("bench", help="regenerate a paper table/figure")
    p_bench.add_argument("experiment", choices=_EXPERIMENTS)
    p_bench.add_argument("--scale", type=float, default=None,
                         help="dataset scale factor (default per experiment)")
    p_bench.add_argument("--codes", nargs="*", default=None,
                         help="dataset codes (default: the experiment's own)")
    p_bench.add_argument("--report", default=None,
                         help="with 'all': write the combined report here")

    p_fig = sub.add_parser("figures", help="render every figure as SVG")
    p_fig.add_argument("--out", default="fig", help="output directory")
    p_fig.add_argument("--scale", type=float, default=1.0)
    p_fig.add_argument("--sweep-scale", type=float, default=0.5)

    p_srv = sub.add_parser(
        "serve",
        help="run the batching/caching enumeration service over a job batch",
    )
    p_srv.add_argument(
        "--jobs",
        help="JSON-lines job file ({'graph': code-or-path, 'algorithm': ..., "
        "'min_left': ..., 'shards': N, ...} per line); default: a demo "
        "session on --graph",
    )
    p_srv.add_argument(
        "--auto-shard-over-edges", type=int, default=None, metavar="E",
        help="route gmbe jobs on graphs with more than E edges through "
        "the sharding subsystem even when the job didn't request shards",
    )
    p_srv.add_argument(
        "--auto-shard-count", type=int, default=4,
        help="shard fan-out used by --auto-shard-over-edges",
    )
    p_srv.add_argument(
        "--shard-pool", choices=["thread", "process"], default="thread",
        help="backend sharded jobs run on; 'process' supervises each "
        "shard in its own spawned worker and maps exhausted shard "
        "retries to the 'degraded' job status",
    )
    p_srv.add_argument("--graph", default="Mti",
                       help="dataset code or edge-list path for the demo session")
    p_srv.add_argument("--algo", choices=sorted(_ALGOS), default="gmbe-host",
                       help="demo-session algorithm")
    p_srv.add_argument("--workers", type=int, default=4)
    p_srv.add_argument("--queue-depth", type=int, default=64)
    p_srv.add_argument("--cache-mb", type=float, default=64.0)
    p_srv.add_argument("--timeout", type=float, default=120.0,
                       help="per-attempt timeout in seconds")
    p_srv.add_argument("--retries", type=int, default=2,
                       help="retry attempts after a failed execution")
    p_srv.add_argument("--metrics-out",
                       help="also write the metrics snapshot JSON here")
    p_srv.add_argument("--prometheus-out", metavar="PATH",
                       help="write the unified metrics registry in "
                       "Prometheus text exposition format to PATH")
    p_srv.add_argument("--trace-out", metavar="PATH",
                       help="enable tracing and stream span/event records "
                       "to PATH as JSON lines")
    p_srv.add_argument("--flight-dir", metavar="DIR", default=None,
                       help="dump a flight-{job}.json black box here for "
                       "every degraded or pool-broken job; inspect with "
                       "'gmbe flight show'")
    p_srv.add_argument("--status-out", metavar="PATH", default=None,
                       help="write the broker's health snapshot (queue, "
                       "breaker, shard-pool liveness) as JSON to PATH "
                       "after the batch")
    p_srv.add_argument("--page-limit", type=int, default=None, metavar="N",
                       help="serve results as cursor pages of at most N "
                       "bicliques (the broker then ships compressed "
                       "stores instead of inline tuples) and print each "
                       "job's first page")

    p_fl = sub.add_parser(
        "flight", help="inspect degraded-run flight records"
    )
    fl_sub = p_fl.add_subparsers(dest="flight_command", required=True)
    p_fl_show = fl_sub.add_parser(
        "show", help="render a flight-{job}.json black box human-readably"
    )
    p_fl_show.add_argument("path", help="flight record JSON file")
    p_fl_show.add_argument("--events", type=int, default=8, metavar="N",
                           help="events shown per span / section "
                           "(-1 for all; default 8)")

    p_flt = sub.add_parser(
        "faults", help="fault-injection tooling (replay a recorded log)"
    )
    flt_sub = p_flt.add_subparsers(dest="faults_command", required=True)
    p_replay = flt_sub.add_parser(
        "replay",
        help="re-run an enumeration firing exactly the faults of a log",
    )
    p_replay.add_argument("graph", help="dataset code or edge-list path")
    p_replay.add_argument("log", help="fault-log JSON (--fault-log output)")
    p_replay.add_argument(
        "--device", choices=sorted(DEVICE_PRESETS), default="A100"
    )
    p_replay.add_argument("--gpus", type=int, default=1)
    p_replay.add_argument("--no-prune", action="store_true")
    p_replay.add_argument(
        "--scheduling", choices=["task", "warp", "block"], default="task"
    )
    p_replay.add_argument("--warps-per-sm", type=int, default=16)
    p_replay.add_argument("--max-task-retries", type=int, default=3)
    p_replay.add_argument(
        "--output", help="write the replayed bicliques to this file"
    )

    p_tune = sub.add_parser(
        "tune",
        help="autotune GMBE kernel knobs for a graph and persist the result",
    )
    p_tune.add_argument("graph", help="dataset code or edge-list path")
    p_tune.add_argument("--budget", type=int, default=16, metavar="N",
                        help="candidate-config trial budget (default 16)")
    p_tune.add_argument("--seed", type=int, default=0,
                        help="search seed (fixed seed => identical trials)")
    p_tune.add_argument(
        "--device", choices=sorted(DEVICE_PRESETS), default="A100"
    )
    p_tune.add_argument("--gpus", type=int, default=1, help="simulated GPUs")
    p_tune.add_argument("--store", metavar="DIR", default=None,
                        help="tuned-config store directory (default: "
                        "$GMBE_TUNING_STORE or ~/.cache/gmbe/tuned)")
    p_tune.add_argument("--no-store", action="store_true",
                        help="tune in-memory only; do not persist the result")
    p_tune.add_argument("--force", action="store_true",
                        help="re-tune even if the store already has an entry")
    p_tune.add_argument("--json", metavar="PATH", dest="json_out",
                        help="also write the TunedConfig JSON to PATH")

    p_ver = sub.add_parser("verify", help="certify an enumeration output")
    p_ver.add_argument("graph", help="dataset code or edge-list path")
    p_ver.add_argument("bicliques", help="BicliqueWriter output file")
    p_ver.add_argument(
        "--reference", choices=["oombea", "imbea", "mbea"], default="oombea"
    )
    p_ver.add_argument("--no-deep", action="store_true",
                       help="skip per-biclique structural checks")
    return parser


def _cmd_datasets() -> int:
    from .bench.tables import format_table

    rows = []
    for code in DATASET_ORDER:
        spec = DATASETS[code]
        g = load(code)
        rows.append(
            (code, spec.paper_name, g.n_u, g.n_v, g.n_edges,
             "large" if spec.large else "")
        )
    print(format_table(
        ["code", "paper dataset", "|U|", "|V|", "|E|", ""], rows,
        title="Bundled synthetic analogs (Table 1 order)",
    ))
    return 0


def _cmd_stats(args) -> int:
    g = _load_graph(args.graph)
    s = compute_stats(g)
    print(f"{g}")
    print(f"  dU={s.max_deg_u} d2U={s.max_two_hop_u} "
          f"dV={s.max_deg_v} d2V={s.max_two_hop_v}")
    print(f"  node_buf words/procedure: {s.node_buffer_words()}")
    print(f"  naive subtree words:      {s.naive_tree_words()}")
    return 0


def _fault_plan_from_args(args):
    """Build the FaultPlan requested on the command line (or None)."""
    probs = (
        args.fault_sm_crash, args.fault_warp_hang,
        args.fault_queue_drop, args.fault_mem_pressure,
    )
    if args.fault_seed is None and not any(probs):
        return None
    from .gpusim.faults import FaultPlan

    return FaultPlan(
        args.fault_seed or 0,
        p_sm_crash=args.fault_sm_crash,
        p_warp_hang=args.fault_warp_hang,
        p_queue_drop=args.fault_queue_drop,
        p_mem_pressure=args.fault_mem_pressure,
    )


def _print_robustness(res) -> None:
    """Report fault/recovery/checkpoint info from a robust run."""
    extras = res.extras
    log = extras.get("fault_log")
    if log is not None and len(log):
        tally = ", ".join(
            f"{kind}={n}" for kind, n in sorted(log.counts().items())
        )
        print(f"injected faults: {tally}")
    if extras.get("tasks_requeued"):
        print(f"tasks requeued: {extras['tasks_requeued']} "
              f"(lost: {extras.get('tasks_lost', 0)})")
    if extras.get("halted"):
        print(f"halted after {extras.get('tasks_executed_total', '?')} tasks"
              " (checkpoint written; use --resume to continue)")
    if extras.get("resumed"):
        print("resumed from checkpoint")


def _cmd_run(args) -> int:
    g = _load_graph(args.graph)
    config = GMBEConfig(
        prune=not args.no_prune,
        scheduling=args.scheduling,
        warps_per_sm=args.warps_per_sm,
        max_task_retries=args.max_task_retries,
    )
    if args.tuned:
        if args.algo not in ("gmbe", "gmbe-host"):
            raise SystemExit("--tuned requires --algo gmbe or gmbe-host")
        from .tuning import TunedConfigStore, resolve_config

        store = (
            TunedConfigStore(args.tuning_store)
            if args.tuning_store is not None
            else None
        )
        config, hit = resolve_config(
            g,
            store=store,
            device=DEVICE_PRESETS[args.device],
            n_gpus=args.gpus,
            base=config,
        )
        print(
            "tuned config: store hit" if hit
            else "tuned config: store miss (using command-line knobs; "
            "run `gmbe tune` first to populate the store)"
        )
    fault_plan = _fault_plan_from_args(args)
    robust = (
        fault_plan is not None
        or args.checkpoint is not None
        or args.halt_after_tasks is not None
        or args.resume
    )
    if robust and args.algo != "gmbe":
        raise SystemExit(
            "fault injection and checkpoint/resume require --algo gmbe"
        )
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint PATH")
    shards = getattr(args, "shards", 1)
    if shards > 1:
        if args.algo != "gmbe":
            raise SystemExit("--shards requires --algo gmbe")
        if fault_plan is not None or args.halt_after_tasks is not None:
            raise SystemExit(
                "--shards is incompatible with fault/halt flags "
                "(per-shard fault injection: repro.sharding API)"
            )
        if args.resume:
            raise SystemExit(
                "--shards resumes crashed shards automatically from the "
                "--checkpoint directory; drop --resume"
            )
    if getattr(args, "pool", "thread") == "process" and shards <= 1:
        raise SystemExit("--pool process requires --shards > 1")
    telemetry = None
    if args.telemetry_out:
        if args.algo != "gmbe":
            raise SystemExit("--telemetry-out requires --algo gmbe")
        from .telemetry import Telemetry, use_telemetry

        telemetry = Telemetry()
    page_limit = getattr(args, "page_limit", None)
    if page_limit is not None and page_limit < 1:
        raise SystemExit("--page-limit must be positive")
    if getattr(args, "cursor", None) is not None and page_limit is None:
        raise SystemExit("--cursor requires --page-limit")
    sink = None
    out_fh = None
    if args.output:
        out_fh = open(args.output, "w", encoding="utf-8")
        sink = BicliqueWriter(out_fh)
    # Pagination collects into a compressed store after the run; the
    # enumeration sink tees into the collector so --output still works.
    collector = None
    run_sink = sink
    if page_limit is not None:
        from .core.bicliques import BicliqueCollector

        collector = BicliqueCollector()
        if sink is None:
            run_sink = collector
        else:
            def run_sink(left, right, _w=sink, _c=collector):
                _w(left, right)
                _c(left, right)
    try:
        start = time.perf_counter()
        if args.algo == "gmbe" and shards > 1:
            from contextlib import nullcontext

            from .sharding import ShardCoordinator

            cluster = None
            if getattr(args, "nodes", 1) > 1:
                from .gmbe import ClusterSpec

                cluster = ClusterSpec(
                    n_nodes=args.nodes,
                    gpus_per_node=args.gpus,
                    device=DEVICE_PRESETS[args.device],
                )
            if telemetry is not None:
                from .telemetry import use_telemetry

                ctx = use_telemetry(telemetry)
            else:
                ctx = nullcontext()
            with ctx:
                res = ShardCoordinator(
                    g,
                    shards,
                    config=config,
                    balancer=args.shard_balancer,
                    device=DEVICE_PRESETS[args.device],
                    n_gpus_per_shard=args.gpus,
                    cluster=cluster,
                    checkpoint_dir=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    pool=args.pool,
                    flight_dir=getattr(args, "flight_dir", None),
                ).run()
            if sink is not None:
                for b in res.bicliques:
                    sink(b.left, b.right)
            if collector is not None:
                for b in res.bicliques:
                    collector(b.left, b.right)
        elif args.algo == "gmbe" and getattr(args, "nodes", 1) > 1:
            from contextlib import nullcontext

            from .gmbe import ClusterSpec, gmbe_cluster

            # Ambient telemetry: each per-node gmbe_gpu call inside the
            # cluster driver discovers it and folds into one registry.
            ctx = (
                use_telemetry(telemetry)
                if telemetry is not None
                else nullcontext()
            )
            with ctx:
                res = gmbe_cluster(
                    g, run_sink,
                    config=config,
                    cluster=ClusterSpec(
                        n_nodes=args.nodes,
                        gpus_per_node=args.gpus,
                        device=DEVICE_PRESETS[args.device],
                    ),
                )
        elif args.algo == "gmbe":
            res = gmbe_gpu(
                g, run_sink,
                config=config,
                device=DEVICE_PRESETS[args.device],
                n_gpus=args.gpus,
                fault_plan=fault_plan,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
                halt_after_tasks=args.halt_after_tasks,
                telemetry=telemetry,
            )
        elif args.algo == "gmbe-host":
            res = gmbe_host(g, run_sink, config=config)
        else:
            res = _ALGOS[args.algo](g, run_sink)
        wall = time.perf_counter() - start
    finally:
        if out_fh is not None:
            out_fh.close()
    degraded = bool(getattr(res, "is_partial", False))
    print(f"{res.n_maximal} maximal bicliques ({wall:.2f}s host wall clock)")
    if degraded:
        # Never let a partial set masquerade as the full enumeration:
        # print the exact inventory and exit non-zero below.
        print(res.describe())
        for h in res.resume:
            ckpt = h.checkpoint_path or "(no checkpoint — restarts clean)"
            print(f"  shard {h.shard_id}: {h.attempts} attempts; "
                  f"last error: {h.last_error}; resume from {ckpt}")
        flight_path = res.extras.get("flight_path")
        if flight_path:
            print(f"flight record written to {flight_path}")
    if res.sim_time:
        where = f"{args.device} x{args.gpus}"
        if getattr(args, "nodes", 1) > 1:
            where += f" x{args.nodes} machines"
        if getattr(args, "shards", 1) > 1:
            where += f" x{args.shards} shards"
        print(f"simulated time: {res.sim_time:.6g}s on {where}")
    if getattr(args, "shards", 1) > 1:
        resumed = res.extras.get("resumed_shards", [])
        if resumed:
            print(f"resumed shards: {sorted(resumed)}")
    c = res.counters
    print(f"nodes={c.nodes_generated} non-maximal={c.non_maximal} "
          f"pruned={c.pruned}")
    if robust:
        _print_robustness(res)
        if args.fault_log:
            log = res.extras.get("fault_log")
            if log is not None:
                log.save(args.fault_log)
                print(f"fault log written to {args.fault_log}")
    if telemetry is not None:
        import json

        telemetry.flush()
        with open(args.telemetry_out, "w", encoding="utf-8") as fh:
            json.dump(telemetry.snapshot(), fh, indent=2, default=str)
            fh.write("\n")
        print(f"telemetry written to {args.telemetry_out}")
    if args.output:
        print(f"bicliques written to {args.output}")
    if collector is not None:
        from .store import StoredResultSet

        result_store = StoredResultSet.from_bicliques(
            sorted(collector.bicliques)
        )
        try:
            items, next_cursor = result_store.page(
                getattr(args, "cursor", None), page_limit
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(f"--- page ({len(items)} of {len(result_store)} bicliques, "
              f"store {result_store.nbytes} encoded bytes) ---")
        for b in items:
            print(",".join(map(str, b.left)) + " | "
                  + ",".join(map(str, b.right)))
        if next_cursor is not None:
            print(f"next cursor: {next_cursor} "
                  f"(re-run with --cursor {next_cursor})")
        else:
            print("next cursor: (end of results)")
    return 1 if degraded else 0


def _cmd_faults(args) -> int:
    if args.faults_command != "replay":  # pragma: no cover
        return 1
    from .gpusim.faults import FaultLog, replay_plan

    g = _load_graph(args.graph)
    try:
        log = FaultLog.load(args.log)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load fault log {args.log}: {exc}")
    config = GMBEConfig(
        prune=not args.no_prune,
        scheduling=args.scheduling,
        warps_per_sm=args.warps_per_sm,
        max_task_retries=args.max_task_retries,
    )
    sink = None
    out_fh = None
    if args.output:
        out_fh = open(args.output, "w", encoding="utf-8")
        sink = BicliqueWriter(out_fh)
    try:
        res = gmbe_gpu(
            g, sink,
            config=config,
            device=DEVICE_PRESETS[args.device],
            n_gpus=args.gpus,
            fault_plan=replay_plan(log),
        )
    finally:
        if out_fh is not None:
            out_fh.close()
    replayed = res.extras["fault_log"]
    print(f"replayed {len(log)} logged faults; re-fired {len(replayed)}")
    for ev in replayed:
        where = f"dev{ev.device}/sm{ev.sm}" if ev.device >= 0 else "host"
        print(f"  cursor={ev.cursor:<8} t={ev.time:<14.1f} {ev.kind:<12} "
              f"site={ev.site:<8} {where} lineage={ev.lineage}")
    print(f"{res.n_maximal} maximal bicliques "
          f"(requeued={res.extras['tasks_requeued']}, "
          f"lost={res.extras['tasks_lost']})")
    if args.output:
        print(f"bicliques written to {args.output}")
    return 0


def _tuning_device_key(device, n_gpus: int) -> str:
    from .tuning import device_key

    return device_key(device, n_gpus)


def _cmd_tune(args) -> int:
    from .tuning import TunedConfigStore, default_store, tune

    if args.no_store and args.store:
        raise SystemExit("--no-store and --store are mutually exclusive")
    g = _load_graph(args.graph)
    store = None
    if not args.no_store:
        store = (
            TunedConfigStore(args.store) if args.store else default_store()
        )
    device = DEVICE_PRESETS[args.device]
    hit = (
        store is not None
        and not args.force
        and store.get(
            g.fingerprint, _tuning_device_key(device, args.gpus)
        ) is not None
    )
    start = time.perf_counter()
    entry = tune(
        g,
        budget=args.budget,
        seed=args.seed,
        device=device,
        n_gpus=args.gpus,
        store=store,
        force=args.force,
    )
    wall = time.perf_counter() - start
    print(f"graph: {g.name} ({g.n_u}x{g.n_v}, {g.n_edges} edges)")
    print(f"device: {entry.device_key}  seed: {entry.seed}  "
          f"tuner: v{entry.tuner_version}")
    if hit:
        print("store hit: tuned config recalled with zero simulator work")
    else:
        print(f"trials: {entry.trials} simulator runs ({wall:.1f}s wall)")
    defaults = GMBEConfig()
    knobs = ", ".join(
        f"{name}={getattr(entry.config, name)!r}"
        for name in (
            "bound_height", "bound_size", "warps_per_sm",
            "set_backend", "order", "scheduling",
        )
        if getattr(entry.config, name) != getattr(defaults, name)
    ) or "(paper defaults)"
    print(f"winner: {knobs}")
    print(f"cycles: {entry.incumbent_cycles} tuned vs "
          f"{entry.default_cycles} default "
          f"=> {entry.speedup:.3f}x speedup")
    if store is not None:
        print(f"stored: {store.path_for(entry.key())}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(entry.to_json() + "\n")
        print(f"tuned config JSON written to {args.json_out}")
    return 0


def _cmd_bench(args) -> int:
    from . import bench

    if args.experiment == "all":
        text = bench.generate_report(scale=args.scale, progress=print)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"report written to {args.report}")
        else:
            print(text)
        return 0
    kwargs: dict = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.codes:
        kwargs["codes"] = args.codes
    experiment = getattr(bench, f"experiment_{args.experiment}")
    printer = getattr(bench, f"print_{args.experiment}")
    printer(experiment(**kwargs))
    return 0


def _cmd_serve(args) -> int:
    import json

    from .service import ResiliencePolicy, ResultCache, ServiceClient

    batch = bool(args.jobs)
    if batch:
        with open(args.jobs, "r", encoding="utf-8") as fh:
            specs = [json.loads(line) for line in fh if line.strip()]
    else:
        # Demo session: the README's multi-query walkthrough — a cold
        # query, its cache-hit repeat, and a size-filtered variant.
        specs = [
            {"graph": args.graph, "algorithm": args.algo},
            {"graph": args.graph, "algorithm": args.algo},
            {"graph": args.graph, "algorithm": args.algo,
             "min_left": 2, "min_right": 2},
        ]
    graphs: dict[str, BipartiteGraph] = {}
    jobs = []
    for spec in specs:
        spec = dict(spec)
        gspec = spec.pop("graph", None)
        if not isinstance(gspec, str):
            raise SystemExit("each job spec needs a 'graph' code or path")
        if gspec not in graphs:
            graphs[gspec] = _load_graph(gspec)
        jobs.append({"graph": graphs[gspec], **spec})

    telemetry = None
    if args.prometheus_out or args.trace_out:
        from .telemetry import JSONLSink, RingSink, Telemetry

        sinks = [RingSink()]
        if args.trace_out:
            sinks.append(JSONLSink(args.trace_out))
        telemetry = Telemetry(sinks=sinks)

    client = ServiceClient(
        n_workers=args.workers,
        queue_depth=args.queue_depth,
        cache=ResultCache(max_bytes=int(args.cache_mb * (1 << 20))),
        policy=ResiliencePolicy(
            timeout=args.timeout, max_attempts=args.retries + 1
        ),
        telemetry=telemetry,
        auto_shard_over_edges=args.auto_shard_over_edges,
        auto_shard_count=args.auto_shard_count,
        shard_pool=args.shard_pool,
        flight_dir=args.flight_dir,
        # Paged serving: ship results as compressed stores only, never
        # as inline tuples — O(page) materialized per fetch_page call.
        inline_results=0 if args.page_limit is not None else None,
    )
    try:
        if batch:
            # Concurrent submission: duplicates coalesce, repeats hit cache.
            results = client.submit_many(jobs)
        else:
            # Sequential demo so the repeated query lands as a cache hit.
            results = [client.submit(job) for job in jobs]
        for res in results:
            print(res.describe())
            if args.page_limit is not None and (res.ok or res.partial):
                items, next_cursor = client.fetch_page(
                    res, limit=args.page_limit
                )
                for b in items:
                    print("  " + ",".join(map(str, b.left)) + " | "
                          + ",".join(map(str, b.right)))
                more = (
                    f"cursor {next_cursor}" if next_cursor is not None
                    else "end"
                )
                print(f"  page 1: {len(items)} bicliques ({more})")
        snapshot = client.metrics_snapshot()
        health = client.health() if args.status_out else None
    finally:
        client.close()
    if args.status_out:
        with open(args.status_out, "w", encoding="utf-8") as fh:
            json.dump(health, fh, indent=2, default=str)
            fh.write("\n")
        print(f"health snapshot written to {args.status_out}")
    print("--- service metrics ---")
    text = json.dumps(snapshot, indent=2)
    print(text)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"metrics written to {args.metrics_out}")
    if telemetry is not None:
        telemetry.close()  # flushes the JSONL trace sink
        if args.prometheus_out:
            with open(args.prometheus_out, "w", encoding="utf-8") as fh:
                fh.write(telemetry.registry.to_prometheus_text())
            print(f"prometheus metrics written to {args.prometheus_out}")
        if args.trace_out:
            print(f"trace records written to {args.trace_out}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_flight(args) -> int:
    if args.flight_command != "show":  # pragma: no cover
        return 1
    from .telemetry import format_flight_record, load_flight_record

    try:
        record = load_flight_record(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read flight record: {exc}")
    print(format_flight_record(record, max_events=args.events))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "flight":
        return _cmd_flight(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "figures":
        from .bench.figures import render_all

        written = render_all(
            args.out, scale=args.scale, sweep_scale=args.sweep_scale
        )
        for path in written:
            print(path)
        return 0
    if args.command == "verify":
        from .verify import parse_biclique_file, verify_enumeration

        report = verify_enumeration(
            _load_graph(args.graph),
            parse_biclique_file(args.bicliques),
            reference_algorithm=args.reference,
            deep_check=not args.no_deep,
        )
        print(report.summary())
        return 0 if report.ok else 1
    return 1  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
