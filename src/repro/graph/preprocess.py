"""Pre-processing pipeline from the paper (§5 *Pre-processing*).

The paper's host-side preparation before any enumeration:

1. **Side selection** — since U and V are symmetric, always make V the
   smaller side (``|U| ≥ |V|``), like ooMBEA.
2. **Vertex ordering** — sort all vertices in V by ascending degree
   (the default order of the enumeration tree's first level); adjacency
   lists are stored sorted by vertex id (a CSR invariant).

:func:`prepare` applies both and returns the relabeled graph plus the
mapping back to original V ids, so callers can report bicliques in the
input labeling if they need to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteGraph

__all__ = ["PreparedGraph", "prepare", "degree_ascending_order"]


def degree_ascending_order(graph: BipartiteGraph) -> np.ndarray:
    """Permutation ``perm`` with ``perm[old_v] = new_v`` sorting V by
    ascending degree (ties broken by original id for determinism)."""
    degrees = graph.degrees_v
    order = np.lexsort((np.arange(graph.n_v), degrees))
    perm = np.empty(graph.n_v, dtype=np.int64)
    perm[order] = np.arange(graph.n_v)
    return perm


@dataclass(frozen=True)
class PreparedGraph:
    """A preprocessed graph plus bookkeeping to undo the relabeling.

    Attributes
    ----------
    graph:
        The prepared graph: ``|U| ≥ |V|``, V sorted by ascending degree.
    swapped:
        True if the sides were exchanged relative to the input.
    v_original:
        ``v_original[new_v]`` is the id of that vertex in the *input*
        graph (on whichever side became V).
    u_original:
        Same for U (identity unless future orderings permute U).
    """

    graph: BipartiteGraph
    swapped: bool
    v_original: np.ndarray
    u_original: np.ndarray

    def biclique_to_input_labels(
        self, left: np.ndarray, right: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map a biclique ``(L ⊆ U, R ⊆ V)`` of the prepared graph back to
        the input labeling, returning ``(input_U_side, input_V_side)``."""
        l_orig = np.sort(self.u_original[np.asarray(left, dtype=np.int64)])
        r_orig = np.sort(self.v_original[np.asarray(right, dtype=np.int64)])
        if self.swapped:
            return r_orig, l_orig
        return l_orig, r_orig


def prepare(graph: BipartiteGraph, *, order: str = "degree") -> PreparedGraph:
    """Apply the paper's preprocessing and return a :class:`PreparedGraph`.

    Parameters
    ----------
    graph:
        Input bipartite graph.
    order:
        Ordering for V: ``"degree"`` (paper default, ascending degree),
        ``"degeneracy"`` (2-hop peeling, see
        :mod:`repro.graph.ordering`), or ``"none"`` (keep input order;
        used by ablations).
    """
    from .ordering import order_vertices

    swapped = graph.n_u < graph.n_v
    g = graph.swapped() if swapped else graph
    u_original = np.arange(g.n_u, dtype=np.int64)
    perm = order_vertices(g, order)
    v_original = np.empty(g.n_v, dtype=np.int64)
    v_original[perm] = np.arange(g.n_v)
    g2 = g.relabeled(v_perm=perm)
    return PreparedGraph(
        graph=g2, swapped=swapped, v_original=v_original, u_original=u_original
    )
