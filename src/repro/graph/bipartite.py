"""Compressed-sparse-row bipartite graph.

The whole reproduction operates on :class:`BipartiteGraph`, an immutable
CSR representation of a bipartite graph ``G = (U, V, E)``.  Following the
paper (§5 *Pre-processing*), the convention throughout the library is that
``V`` is the *enumeration side*: the set-enumeration tree expands subsets
of ``V`` while ``L ⊆ U`` shrinks.  :func:`repro.graph.preprocess.prepare`
enforces the paper's "fewer vertices as V" rule and the degree-ascending
ordering of ``V``.

Vertices on each side are dense integers ``0..n-1``.  Adjacency lists are
stored sorted ascending, which every set kernel in
:mod:`repro.core.sets` relies on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["BipartiteGraph", "EdgeListError"]


class EdgeListError(ValueError):
    """Raised when an edge list cannot form a valid bipartite graph."""


def _build_csr(
    n_src: int, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build a CSR (indptr, indices) with sorted, deduplicated rows."""
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    if len(src) > 0:
        # Drop duplicate (src, dst) pairs: the paper keeps one unique edge
        # per vertex pair (Table 1 note on MovieLens).
        keep = np.empty(len(src), dtype=bool)
        keep[0] = True
        np.not_equal(src[1:], src[:-1], out=keep[1:])
        keep[1:] |= dst[1:] != dst[:-1]
        src = src[keep]
        dst = dst[keep]
    counts = np.bincount(src, minlength=n_src)
    indptr = np.zeros(n_src + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst.astype(np.int32, copy=False)


@dataclass(frozen=True)
class BipartiteGraph:
    """Immutable CSR bipartite graph with both adjacency directions.

    Attributes
    ----------
    n_u, n_v:
        Number of vertices on the U / V side.
    u_indptr, u_indices:
        CSR adjacency of U vertices: neighbors (in V) of ``u`` are
        ``u_indices[u_indptr[u]:u_indptr[u+1]]``, sorted ascending.
    v_indptr, v_indices:
        CSR adjacency of V vertices, symmetric to the above.
    name:
        Optional human-readable dataset name.
    """

    n_u: int
    n_v: int
    u_indptr: np.ndarray
    u_indices: np.ndarray
    v_indptr: np.ndarray
    v_indices: np.ndarray
    name: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        n_u: int,
        n_v: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        *,
        name: str = "",
    ) -> "BipartiteGraph":
        """Build a graph from ``(u, v)`` pairs.

        Duplicate edges are collapsed; vertex ids must lie in
        ``[0, n_u)`` × ``[0, n_v)``.
        """
        arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise EdgeListError("edges must be an (m, 2) array of (u, v) pairs")
        if n_u < 0 or n_v < 0:
            raise EdgeListError("vertex counts must be non-negative")
        us, vs = arr[:, 0], arr[:, 1]
        if arr.shape[0] > 0:
            if us.min() < 0 or us.max() >= n_u:
                raise EdgeListError(f"u id out of range [0, {n_u})")
            if vs.min() < 0 or vs.max() >= n_v:
                raise EdgeListError(f"v id out of range [0, {n_v})")
        u_indptr, u_indices = _build_csr(n_u, us, vs)
        v_indptr, v_indices = _build_csr(n_v, vs, us)
        return BipartiteGraph(
            n_u=n_u,
            n_v=n_v,
            u_indptr=u_indptr,
            u_indices=u_indices,
            v_indptr=v_indptr,
            v_indices=v_indices,
            name=name,
        )

    @staticmethod
    def from_biadjacency(matrix: np.ndarray, *, name: str = "") -> "BipartiteGraph":
        """Build from a dense 0/1 biadjacency matrix (rows = U, cols = V)."""
        m = np.asarray(matrix)
        if m.ndim != 2:
            raise EdgeListError("biadjacency matrix must be 2-D")
        us, vs = np.nonzero(m)
        return BipartiteGraph.from_edges(
            m.shape[0], m.shape[1], np.column_stack([us, vs]), name=name
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of unique edges."""
        return int(self.u_indices.shape[0])

    def neighbors_u(self, u: int) -> np.ndarray:
        """Sorted neighbors (in V) of U-vertex ``u`` — a CSR view, not a copy."""
        return self.u_indices[self.u_indptr[u] : self.u_indptr[u + 1]]

    def neighbors_v(self, v: int) -> np.ndarray:
        """Sorted neighbors (in U) of V-vertex ``v`` — a CSR view, not a copy."""
        return self.v_indices[self.v_indptr[v] : self.v_indptr[v + 1]]

    def degree_u(self, u: int) -> int:
        return int(self.u_indptr[u + 1] - self.u_indptr[u])

    def degree_v(self, v: int) -> int:
        return int(self.v_indptr[v + 1] - self.v_indptr[v])

    @cached_property
    def degrees_u(self) -> np.ndarray:
        """All U-side degrees, computed once and cached (the enumeration
        hot path indexes this on every Γ pivot selection)."""
        return np.diff(self.u_indptr)

    @cached_property
    def degrees_v(self) -> np.ndarray:
        """All V-side degrees, computed once and cached."""
        return np.diff(self.v_indptr)

    @cached_property
    def fingerprint(self) -> str:
        """Content hash of the graph structure (``name`` excluded).

        Two graphs with identical vertex counts and edge sets share a
        fingerprint regardless of how they were constructed; this is the
        graph identity :mod:`repro.service` keys its result cache on.
        """
        h = hashlib.sha256()
        h.update(np.asarray([self.n_u, self.n_v], dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(self.u_indptr, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(self.u_indices, dtype=np.int64).tobytes())
        return h.hexdigest()

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors_u(u)
        i = int(np.searchsorted(nbrs, v))
        return i < len(nbrs) and int(nbrs[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate unique edges as ``(u, v)`` pairs."""
        for u in range(self.n_u):
            for v in self.neighbors_u(u):
                yield u, int(v)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def swapped(self) -> "BipartiteGraph":
        """Return the graph with the U and V sides exchanged."""
        return BipartiteGraph(
            n_u=self.n_v,
            n_v=self.n_u,
            u_indptr=self.v_indptr,
            u_indices=self.v_indices,
            v_indptr=self.u_indptr,
            v_indices=self.u_indices,
            name=self.name,
        )

    def relabeled(
        self,
        u_perm: Sequence[int] | np.ndarray | None = None,
        v_perm: Sequence[int] | np.ndarray | None = None,
    ) -> "BipartiteGraph":
        """Relabel vertices: new id of old U-vertex ``u`` is ``u_perm[u]``.

        Either permutation may be ``None`` (identity).  Adjacency lists are
        re-sorted under the new labels.
        """
        up = (
            np.arange(self.n_u, dtype=np.int64)
            if u_perm is None
            else np.asarray(u_perm, dtype=np.int64)
        )
        vp = (
            np.arange(self.n_v, dtype=np.int64)
            if v_perm is None
            else np.asarray(v_perm, dtype=np.int64)
        )
        if sorted(up.tolist()) != list(range(self.n_u)):
            raise EdgeListError("u_perm is not a permutation of 0..n_u-1")
        if sorted(vp.tolist()) != list(range(self.n_v)):
            raise EdgeListError("v_perm is not a permutation of 0..n_v-1")
        us = np.repeat(np.arange(self.n_u, dtype=np.int64), self.degrees_u)
        vs = self.u_indices.astype(np.int64)
        return BipartiteGraph.from_edges(
            self.n_u,
            self.n_v,
            np.column_stack([up[us], vp[vs]]),
            name=self.name,
        )

    def to_biadjacency(self) -> np.ndarray:
        """Dense 0/1 biadjacency matrix (rows = U).  Small graphs only."""
        m = np.zeros((self.n_u, self.n_v), dtype=np.int8)
        us = np.repeat(np.arange(self.n_u), self.degrees_u)
        m[us, self.u_indices] = 1
        return m

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"BipartiteGraph({tag} |U|={self.n_u} |V|={self.n_v} "
            f"|E|={self.n_edges})"
        )
