"""Vertex-ordering strategies for the enumeration side V.

The §5 default is static degree-ascending order.  ooMBEA's ordering
contribution works on *2-hop* structure; its bipartite analog of a
degeneracy order is implemented here: repeatedly peel the V-vertex with
the fewest remaining 2-hop neighbors (other unpeeled V-vertices sharing
a U-neighbor).  Each vertex's rank is its peel position.  Since a
vertex's candidate set in the enumeration tree is drawn from its
later-ordered 2-hop neighborhood, this ordering minimizes the maximum
candidate-set size greedily — the same quantity the paper's
``bound_size`` estimate keys on.

:func:`order_vertices` is the registry behind
:func:`repro.graph.preprocess.prepare`'s ``order=`` parameter.
"""

from __future__ import annotations

import heapq

import numpy as np

from .bipartite import BipartiteGraph

__all__ = ["degeneracy_order", "order_vertices", "ORDERINGS"]


def _two_hop_sets(graph: BipartiteGraph) -> list[set[int]]:
    """``N2(v)`` as Python sets for all V-vertices (laptop-scale)."""
    from ..core.localcount import ragged_gather

    degrees = graph.degrees_v  # cached on the graph; isolates skip the gather
    out: list[set[int]] = []
    for v in range(graph.n_v):
        if degrees[v] == 0:
            out.append(set())
            continue
        flat, _ = ragged_gather(
            graph.u_indptr, graph.u_indices, graph.neighbors_v(v).astype(np.int64)
        )
        s = set(np.unique(flat).tolist())
        s.discard(v)
        out.append(s)
    return out


def degeneracy_order(graph: BipartiteGraph) -> np.ndarray:
    """Permutation ``perm[old_v] = new_v`` by 2-hop degeneracy peeling.

    Peel the unpeeled V-vertex with the smallest number of *unpeeled*
    2-hop neighbors; on peeling, every unpeeled 2-hop neighbor loses one
    from its count.  Ties break on vertex id for determinism.
    """
    two_hop = _two_hop_sets(graph)
    counts = np.array([len(s) for s in two_hop], dtype=np.int64)
    peeled = np.zeros(graph.n_v, dtype=bool)
    heap: list[tuple[int, int]] = [
        (int(counts[v]), v) for v in range(graph.n_v)
    ]
    heapq.heapify(heap)
    perm = np.empty(graph.n_v, dtype=np.int64)
    rank = 0
    while heap:
        c, v = heapq.heappop(heap)
        if peeled[v] or c != counts[v]:
            continue  # stale entry
        peeled[v] = True
        perm[v] = rank
        rank += 1
        for w in two_hop[v]:
            if not peeled[w]:
                counts[w] -= 1
                heapq.heappush(heap, (int(counts[w]), w))
    return perm


#: name -> description (dispatch happens in :func:`order_vertices`)
ORDERINGS = {
    "degree": "static ascending degree (the paper's §5 default)",
    "degeneracy": "2-hop degeneracy peeling (ooMBEA-style)",
    "none": "keep input order",
}


def order_vertices(graph: BipartiteGraph, order: str) -> np.ndarray:
    """Permutation for the requested ordering (see :data:`ORDERINGS`)."""
    if order == "none":
        return np.arange(graph.n_v, dtype=np.int64)
    if order == "degree":
        from .preprocess import degree_ascending_order

        return degree_ascending_order(graph)
    if order == "degeneracy":
        return degeneracy_order(graph)
    raise ValueError(f"unknown order {order!r}; choose from {sorted(ORDERINGS)}")
