"""Graph file IO: plain edge lists and KONECT/SNAP-style text formats.

The paper's artifact downloads datasets from KONECT and SNAP; both ship
whitespace-separated edge lists with ``%`` or ``#`` comment headers.  We
support reading/writing those so users can run the library on the real
datasets when they have them, while :mod:`repro.datasets` provides
offline synthetic analogs.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import TextIO

import numpy as np

from .bipartite import BipartiteGraph, EdgeListError

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "reads_edge_list",
    "read_matrix_market",
    "write_matrix_market",
]

_COMMENT_PREFIXES = ("%", "#")


def _parse_lines(fh: TextIO) -> np.ndarray:
    rows: list[tuple[int, int]] = []
    for lineno, line in enumerate(fh, start=1):
        s = line.strip()
        if not s or s.startswith(_COMMENT_PREFIXES):
            continue
        parts = s.split()
        if len(parts) < 2:
            raise EdgeListError(f"line {lineno}: expected 'u v', got {s!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise EdgeListError(f"line {lineno}: non-integer ids in {s!r}") from exc
        rows.append((u, v))
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def _compact(edges: np.ndarray, one_indexed: bool | None) -> tuple[np.ndarray, int, int]:
    """Map raw ids to dense 0-based ids.

    If ``one_indexed`` is None, autodetect: treat the file as 1-indexed when
    no 0 id occurs on either column (the KONECT convention).
    """
    if edges.shape[0] == 0:
        return edges, 0, 0
    if one_indexed is None:
        one_indexed = edges.min() >= 1
    if one_indexed:
        edges = edges - 1
    if edges.min() < 0:
        raise EdgeListError("negative vertex id after index adjustment")
    u_ids = np.unique(edges[:, 0])
    v_ids = np.unique(edges[:, 1])
    u_map = np.full(int(u_ids.max()) + 1, -1, dtype=np.int64)
    u_map[u_ids] = np.arange(len(u_ids))
    v_map = np.full(int(v_ids.max()) + 1, -1, dtype=np.int64)
    v_map[v_ids] = np.arange(len(v_ids))
    dense = np.column_stack([u_map[edges[:, 0]], v_map[edges[:, 1]]])
    return dense, len(u_ids), len(v_ids)


def read_edge_list(
    path: str | os.PathLike[str],
    *,
    one_indexed: bool | None = None,
    name: str | None = None,
) -> BipartiteGraph:
    """Read a bipartite edge list file.

    Lines are ``u v`` pairs (extra columns such as KONECT weights are
    ignored); ``%``/``#`` lines are comments.  Ids are compacted to dense
    0-based ranges per side; set ``one_indexed`` to override autodetection.
    """
    p = Path(path)
    with p.open("r", encoding="utf-8") as fh:
        edges = _parse_lines(fh)
    dense, n_u, n_v = _compact(edges, one_indexed)
    return BipartiteGraph.from_edges(
        n_u, n_v, dense, name=name if name is not None else p.stem
    )


def reads_edge_list(
    text: str, *, one_indexed: bool | None = None, name: str = ""
) -> BipartiteGraph:
    """Parse an edge list from a string (same format as files)."""
    edges = _parse_lines(io.StringIO(text))
    dense, n_u, n_v = _compact(edges, one_indexed)
    return BipartiteGraph.from_edges(n_u, n_v, dense, name=name)


def write_edge_list(graph: BipartiteGraph, path: str | os.PathLike[str]) -> None:
    """Write the graph as a 0-indexed ``u v`` edge list with a header."""
    with Path(path).open("w", encoding="utf-8") as fh:
        fh.write(f"% bipartite graph {graph.name or ''}\n")
        fh.write(f"% |U|={graph.n_u} |V|={graph.n_v} |E|={graph.n_edges}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")


def read_matrix_market(
    path: str | os.PathLike[str], *, name: str | None = None
) -> BipartiteGraph:
    """Read a MatrixMarket coordinate file as a biadjacency matrix.

    Rows become U, columns become V; any nonzero entry is an edge.
    (SuiteSparse and many bioinformatics datasets ship this format.)
    Unlike :func:`read_edge_list`, the declared matrix shape is honored,
    so isolated rows/columns survive.
    """
    p = Path(path)
    with p.open("r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise EdgeListError("missing %%MatrixMarket header")
        if "coordinate" not in header:
            raise EdgeListError("only coordinate (sparse) format supported")
        pattern = "pattern" in header
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        parts = line.split()
        if len(parts) != 3:
            raise EdgeListError(f"bad size line {line!r}")
        n_u, n_v, nnz = (int(x) for x in parts)
        edges = []
        for _ in range(nnz):
            entry = fh.readline().split()
            if len(entry) < 2:
                raise EdgeListError("truncated entry line")
            i, j = int(entry[0]) - 1, int(entry[1]) - 1
            if not pattern and len(entry) >= 3 and float(entry[2]) == 0.0:
                continue
            edges.append((i, j))
    return BipartiteGraph.from_edges(
        n_u, n_v, edges, name=name if name is not None else p.stem
    )


def write_matrix_market(
    graph: BipartiteGraph, path: str | os.PathLike[str]
) -> None:
    """Write the graph's biadjacency as MatrixMarket pattern coordinates."""
    with Path(path).open("w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"% bipartite graph {graph.name or ''}\n")
        fh.write(f"{graph.n_u} {graph.n_v} {graph.n_edges}\n")
        for u, v in graph.edges():
            fh.write(f"{u + 1} {v + 1}\n")
