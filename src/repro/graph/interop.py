"""Interop with the scientific-Python ecosystem.

Conversions between :class:`BipartiteGraph` and

- ``scipy.sparse`` biadjacency matrices (the natural exchange format for
  expression matrices and rating matrices), and
- ``networkx`` bipartite graphs (node attribute ``bipartite`` ∈ {0, 1},
  the networkx convention).

Both libraries are optional: imports happen inside the functions so the
core package keeps numpy as its only hard dependency.
"""

from __future__ import annotations

import numpy as np

from .bipartite import BipartiteGraph, EdgeListError

__all__ = [
    "from_scipy_sparse",
    "to_scipy_sparse",
    "from_networkx",
    "to_networkx",
]


def from_scipy_sparse(matrix, *, name: str = "") -> BipartiteGraph:
    """Build a graph from any scipy.sparse biadjacency matrix
    (rows = U, columns = V; nonzero = edge)."""
    coo = matrix.tocoo()
    edges = np.column_stack([coo.row.astype(np.int64), coo.col.astype(np.int64)])
    return BipartiteGraph.from_edges(
        int(coo.shape[0]), int(coo.shape[1]), edges, name=name
    )


def to_scipy_sparse(graph: BipartiteGraph):
    """The graph's biadjacency matrix as ``scipy.sparse.csr_matrix``."""
    from scipy.sparse import csr_matrix

    data = np.ones(graph.n_edges, dtype=np.int8)
    return csr_matrix(
        (data, graph.u_indices, graph.u_indptr),
        shape=(graph.n_u, graph.n_v),
    )


def from_networkx(nx_graph, *, name: str = "") -> BipartiteGraph:
    """Build a graph from a networkx bipartite graph.

    Nodes must carry the standard ``bipartite`` attribute (0 = U side,
    1 = V side).  Node labels may be arbitrary hashables; they are
    compacted to dense integer ids in sorted-by-insertion order, and the
    mapping is returned on the graph via ``.name`` only — use
    :func:`to_networkx` for the reverse trip.
    """
    u_nodes = [n for n, d in nx_graph.nodes(data=True) if d.get("bipartite") == 0]
    v_nodes = [n for n, d in nx_graph.nodes(data=True) if d.get("bipartite") == 1]
    if len(u_nodes) + len(v_nodes) != nx_graph.number_of_nodes():
        raise EdgeListError(
            "every node needs a 'bipartite' attribute of 0 or 1"
        )
    u_index = {n: i for i, n in enumerate(u_nodes)}
    v_index = {n: i for i, n in enumerate(v_nodes)}
    edges = []
    for a, b in nx_graph.edges():
        if a in u_index and b in v_index:
            edges.append((u_index[a], v_index[b]))
        elif b in u_index and a in v_index:
            edges.append((u_index[b], v_index[a]))
        else:
            raise EdgeListError(f"edge ({a!r}, {b!r}) is not bipartite")
    return BipartiteGraph.from_edges(
        len(u_nodes), len(v_nodes), edges, name=name
    )


def to_networkx(graph: BipartiteGraph):
    """Convert to a networkx Graph with ``bipartite`` attributes.

    U-vertices become nodes ``("u", i)`` and V-vertices ``("v", j)`` so
    the two sides can never collide.
    """
    import networkx as nx

    out = nx.Graph(name=graph.name)
    out.add_nodes_from((("u", i) for i in range(graph.n_u)), bipartite=0)
    out.add_nodes_from((("v", j) for j in range(graph.n_v)), bipartite=1)
    out.add_edges_from((("u", u), ("v", v)) for u, v in graph.edges())
    return out
