"""Bipartite (α, β)-core decomposition.

The (α, β)-core of a bipartite graph is the maximal subgraph in which
every U-vertex has degree ≥ α and every V-vertex degree ≥ β — the
bipartite analog of the k-core, computed by iterative peeling.

Its use here: any biclique with ``|L| ≥ p`` and ``|R| ≥ q`` lives
entirely inside the (q, p)-core (each of its U-vertices keeps ≥ q
biclique-internal neighbors through every peel round, and vice versa),
and maximality is preserved both ways, so size-constrained enumeration
can shrink the graph first.  On skewed graphs the core is a small
fraction of the input.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .bipartite import BipartiteGraph

__all__ = ["alpha_beta_core", "core_subgraph"]


def alpha_beta_core(
    graph: BipartiteGraph, alpha: int, beta: int
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean membership masks ``(u_mask, v_mask)`` of the (α, β)-core.

    Linear-time peeling: repeatedly delete U-vertices whose remaining
    degree drops below ``alpha`` and V-vertices below ``beta``.
    ``alpha``/``beta`` of 0 or less keep everything (even isolated
    vertices).
    """
    deg_u = graph.degrees_u.copy()
    deg_v = graph.degrees_v.copy()
    alive_u = np.ones(graph.n_u, dtype=bool)
    alive_v = np.ones(graph.n_v, dtype=bool)
    queue: deque[tuple[bool, int]] = deque()
    if alpha > 0:
        for u in np.nonzero(deg_u < alpha)[0]:
            queue.append((True, int(u)))
            alive_u[u] = False
    if beta > 0:
        for v in np.nonzero(deg_v < beta)[0]:
            queue.append((False, int(v)))
            alive_v[v] = False
    while queue:
        is_u, x = queue.popleft()
        if is_u:
            for v in graph.neighbors_u(x):
                v = int(v)
                if alive_v[v]:
                    deg_v[v] -= 1
                    if deg_v[v] < beta:
                        alive_v[v] = False
                        queue.append((False, v))
        else:
            for u in graph.neighbors_v(x):
                u = int(u)
                if alive_u[u]:
                    deg_u[u] -= 1
                    if deg_u[u] < alpha:
                        alive_u[u] = False
                        queue.append((True, u))
    return alive_u, alive_v


def core_subgraph(
    graph: BipartiteGraph, alpha: int, beta: int
) -> tuple[BipartiteGraph, np.ndarray, np.ndarray]:
    """The (α, β)-core as a compacted graph plus original-id maps.

    Returns ``(core, u_ids, v_ids)``: ``u_ids[i]`` is the original id of
    the core's U-vertex ``i``.
    """
    u_mask, v_mask = alpha_beta_core(graph, alpha, beta)
    u_ids = np.nonzero(u_mask)[0]
    v_ids = np.nonzero(v_mask)[0]
    u_pos = np.full(graph.n_u, -1, dtype=np.int64)
    u_pos[u_ids] = np.arange(len(u_ids))
    v_pos = np.full(graph.n_v, -1, dtype=np.int64)
    v_pos[v_ids] = np.arange(len(v_ids))
    edges = []
    for i, u in enumerate(u_ids):
        for v in graph.neighbors_u(int(u)):
            j = v_pos[int(v)]
            if j >= 0:
                edges.append((i, int(j)))
    core = BipartiteGraph.from_edges(
        len(u_ids), len(v_ids), edges, name=f"{graph.name}-core({alpha},{beta})"
    )
    return core, u_ids, v_ids
