"""Synthetic bipartite graph generators.

Real-world bipartite graphs in the paper's Table 1 are power-law: a few
hub vertices (popular products, prolific users) with very high degree and
a long tail.  Biclique-rich datasets (EuAll, BookCrossing, Github) have
dense overlapping neighborhoods.  These generators produce graphs with the
same *shape* at laptop scale:

- :func:`random_bipartite` — Erdős–Rényi-style G(n_u, n_v, p).
- :func:`power_law_bipartite` — Zipf-distributed degrees via a bipartite
  configuration model; exponent controls skew.
- :func:`planted_bicliques` — overlapping dense blocks embedded in noise;
  lets tests plant a known biclique structure.
- :func:`block_overlap_bipartite` — community-overlap model that drives
  the maximal-biclique count up sharply, mimicking BX/GH.

All are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from .bipartite import BipartiteGraph

__all__ = [
    "random_bipartite",
    "power_law_bipartite",
    "planted_bicliques",
    "block_overlap_bipartite",
    "add_dense_block",
    "complete_bipartite",
    "crown_graph",
]


def add_dense_block(
    graph: BipartiteGraph,
    a: int,
    b: int,
    p: float,
    *,
    seed: int = 0,
) -> BipartiteGraph:
    """Overlay one moderately-dense ``a × b`` block onto ``graph``.

    Random ``a`` U-vertices and ``b`` V-vertices get extra edges with
    probability ``p`` — a *hub community*.  This is what gives real
    datasets (EuAll, BookCrossing, Github) their hallmark skew: the hub's
    V-vertices root enumeration trees that dwarf the rest, which is the
    workload the paper's load-aware task splitting exists for.
    """
    rng = np.random.default_rng(seed)
    us = rng.choice(graph.n_u, size=min(a, graph.n_u), replace=False)
    vs = rng.choice(graph.n_v, size=min(b, graph.n_v), replace=False)
    mask = rng.random((len(us), len(vs))) < p
    uu, vv = np.nonzero(mask)
    extra = np.column_stack([us[uu], vs[vv]])
    base = np.column_stack(
        [
            np.repeat(np.arange(graph.n_u), np.diff(graph.u_indptr)),
            graph.u_indices,
        ]
    )
    return BipartiteGraph.from_edges(
        graph.n_u,
        graph.n_v,
        np.concatenate([base, extra]),
        name=graph.name,
    )


def complete_bipartite(n_u: int, n_v: int, *, name: str = "") -> BipartiteGraph:
    """The complete bipartite graph ``K_{n_u, n_v}`` (one maximal biclique)."""
    us = np.repeat(np.arange(n_u), n_v)
    vs = np.tile(np.arange(n_v), n_u)
    return BipartiteGraph.from_edges(
        n_u, n_v, np.column_stack([us, vs]), name=name or f"K{n_u},{n_v}"
    )


def crown_graph(n: int, *, name: str = "") -> BipartiteGraph:
    """Crown graph ``S_n^0``: complete bipartite minus a perfect matching.

    A classic stress case — it has exponentially many maximal bicliques
    (every subset S of U pairs with V minus the matched partners of S,
    giving ~2^n maximal bicliques for n ≥ 2), so keep ``n`` small.
    """
    us, vs = np.nonzero(1 - np.eye(n, dtype=np.int8))
    return BipartiteGraph.from_edges(
        n, n, np.column_stack([us, vs]), name=name or f"crown{n}"
    )


def random_bipartite(
    n_u: int, n_v: int, p: float, *, seed: int = 0, name: str = ""
) -> BipartiteGraph:
    """G(n_u, n_v, p): each of the ``n_u·n_v`` edges present independently."""
    rng = np.random.default_rng(seed)
    if n_u * n_v <= 4_000_000:
        mask = rng.random((n_u, n_v)) < p
        us, vs = np.nonzero(mask)
        edges = np.column_stack([us, vs])
    else:  # sample edge count then unique pairs, avoiding the dense mask
        m = rng.binomial(n_u * n_v, p)
        flat = rng.choice(n_u * n_v, size=m, replace=False)
        edges = np.column_stack([flat // n_v, flat % n_v])
    return BipartiteGraph.from_edges(
        n_u, n_v, edges, name=name or f"gnp({n_u},{n_v},{p})"
    )


def _zipf_degrees(
    rng: np.random.Generator, n: int, mean_deg: float, exponent: float, cap: int
) -> np.ndarray:
    """Degree sequence with Zipf-like tail, scaled to the requested mean."""
    raw = rng.zipf(exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, cap)
    scale = mean_deg / raw.mean()
    deg = np.maximum(1, np.round(raw * scale)).astype(np.int64)
    return np.minimum(deg, cap)


def power_law_bipartite(
    n_u: int,
    n_v: int,
    n_edges: int,
    *,
    exponent_u: float = 2.2,
    exponent_v: float = 1.9,
    seed: int = 0,
    name: str = "",
) -> BipartiteGraph:
    """Bipartite configuration model with Zipf-ish degrees on both sides.

    ``n_edges`` is a target; duplicate stubs are collapsed so the realized
    edge count is slightly lower.  Smaller exponents give heavier tails
    (larger Δ), which is what separates BookCrossing-like analogs from
    Amazon-like ones.
    """
    rng = np.random.default_rng(seed)
    deg_u = _zipf_degrees(rng, n_u, n_edges / n_u, exponent_u, cap=n_v)
    deg_v = _zipf_degrees(rng, n_v, n_edges / n_v, exponent_v, cap=n_u)
    stubs_u = np.repeat(np.arange(n_u), deg_u)
    stubs_v = np.repeat(np.arange(n_v), deg_v)
    m = min(len(stubs_u), len(stubs_v), n_edges)
    rng.shuffle(stubs_u)
    rng.shuffle(stubs_v)
    edges = np.column_stack([stubs_u[:m], stubs_v[:m]])
    return BipartiteGraph.from_edges(
        n_u, n_v, edges, name=name or f"powerlaw({n_u},{n_v})"
    )


def planted_bicliques(
    n_u: int,
    n_v: int,
    blocks: list[tuple[int, int]],
    *,
    noise_p: float = 0.0,
    overlap: float = 0.0,
    seed: int = 0,
    name: str = "",
) -> BipartiteGraph:
    """Embed dense complete blocks into a sparse noise background.

    Parameters
    ----------
    blocks:
        ``(a, b)`` sizes of each planted complete biclique.
    noise_p:
        Background edge probability.
    overlap:
        Fraction (0..1) of each block's U-side drawn from the previous
        block's U-side, creating overlapping bicliques.
    """
    rng = np.random.default_rng(seed)
    edge_parts: list[np.ndarray] = []
    prev_us = np.empty(0, dtype=np.int64)
    for a, b in blocks:
        if a > n_u or b > n_v:
            raise ValueError("block larger than graph side")
        n_shared = min(int(a * overlap), len(prev_us))
        shared = rng.choice(prev_us, size=n_shared, replace=False) if n_shared else np.empty(0, dtype=np.int64)
        fresh = rng.choice(n_u, size=a - n_shared, replace=False)
        us = np.unique(np.concatenate([shared, fresh]))
        vs = rng.choice(n_v, size=b, replace=False)
        edge_parts.append(
            np.column_stack([np.repeat(us, len(vs)), np.tile(vs, len(us))])
        )
        prev_us = us
    if noise_p > 0:
        mask = rng.random((n_u, n_v)) < noise_p
        us, vs = np.nonzero(mask)
        edge_parts.append(np.column_stack([us, vs]))
    edges = (
        np.concatenate(edge_parts)
        if edge_parts
        else np.empty((0, 2), dtype=np.int64)
    )
    return BipartiteGraph.from_edges(n_u, n_v, edges, name=name or "planted")


def block_overlap_bipartite(
    n_u: int,
    n_v: int,
    n_communities: int,
    *,
    memberships_u: float = 2.0,
    memberships_v: float = 1.5,
    intra_p: float = 0.55,
    seed: int = 0,
    name: str = "",
) -> BipartiteGraph:
    """Overlapping-community model producing many maximal bicliques.

    Each vertex joins a Poisson number of communities; an edge (u, v) is
    sampled with probability ``intra_p`` per shared community.  Overlap
    between communities yields combinatorially many maximal bicliques —
    the regime where GMBE's pruning and load balancing matter most.
    """
    rng = np.random.default_rng(seed)
    ku = np.maximum(1, rng.poisson(memberships_u, size=n_u))
    kv = np.maximum(1, rng.poisson(memberships_v, size=n_v))
    comm_u = [rng.choice(n_communities, size=min(k, n_communities), replace=False) for k in ku]
    comm_v: list[np.ndarray] = [
        rng.choice(n_communities, size=min(k, n_communities), replace=False)
        for k in kv
    ]
    members_v: list[list[int]] = [[] for _ in range(n_communities)]
    for v, cs in enumerate(comm_v):
        for c in cs:
            members_v[int(c)].append(v)
    parts: list[np.ndarray] = []
    for u, cs in enumerate(comm_u):
        cand: list[int] = []
        for c in cs:
            cand.extend(members_v[int(c)])
        if not cand:
            continue
        cand_arr = np.unique(np.asarray(cand, dtype=np.int64))
        keep = rng.random(len(cand_arr)) < intra_p
        vs = cand_arr[keep]
        if len(vs):
            parts.append(np.column_stack([np.full(len(vs), u, dtype=np.int64), vs]))
    edges = np.concatenate(parts) if parts else np.empty((0, 2), dtype=np.int64)
    return BipartiteGraph.from_edges(n_u, n_v, edges, name=name or "block-overlap")
