"""Bipartite graph substrate: CSR graphs, IO, preprocessing, statistics,
and synthetic generators."""

from .bipartite import BipartiteGraph, EdgeListError
from .cores import alpha_beta_core, core_subgraph
from .generators import (
    add_dense_block,
    block_overlap_bipartite,
    complete_bipartite,
    crown_graph,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
)
from .interop import (
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)
from .io import (
    read_edge_list,
    read_matrix_market,
    reads_edge_list,
    write_edge_list,
    write_matrix_market,
)
from .preprocess import PreparedGraph, degree_ascending_order, prepare
from .stats import (
    GraphStats,
    compute_stats,
    max_degree_u,
    max_degree_v,
    max_two_hop_degree_u,
    max_two_hop_degree_v,
    two_hop_neighbors_u,
    two_hop_neighbors_v,
)

__all__ = [
    "BipartiteGraph",
    "EdgeListError",
    "add_dense_block",
    "alpha_beta_core",
    "core_subgraph",
    "GraphStats",
    "PreparedGraph",
    "block_overlap_bipartite",
    "complete_bipartite",
    "compute_stats",
    "crown_graph",
    "degree_ascending_order",
    "from_networkx",
    "from_scipy_sparse",
    "max_degree_u",
    "max_degree_v",
    "max_two_hop_degree_u",
    "max_two_hop_degree_v",
    "planted_bicliques",
    "power_law_bipartite",
    "prepare",
    "random_bipartite",
    "read_edge_list",
    "read_matrix_market",
    "reads_edge_list",
    "to_networkx",
    "to_scipy_sparse",
    "two_hop_neighbors_u",
    "two_hop_neighbors_v",
    "write_edge_list",
    "write_matrix_market",
]
