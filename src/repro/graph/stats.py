"""Graph statistics used by the paper: Δ, Δ2, and Table 1 summaries.

Notation (paper §2.1): for a vertex ``u``, ``N2(u)`` is the set of 2-hop
neighbors (same side, sharing at least one neighbor, excluding ``u``).
``Δ(X)`` is the maximum degree over side ``X`` and ``Δ2(X)`` the maximum
2-hop degree.  Table 1 reports all of these per dataset; the node-reuse
memory bound of §4.1 is ``3·Δ(V) + 2·Δ2(V)`` words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteGraph

__all__ = [
    "two_hop_neighbors_u",
    "two_hop_neighbors_v",
    "max_degree_u",
    "max_degree_v",
    "max_two_hop_degree_u",
    "max_two_hop_degree_v",
    "GraphStats",
    "compute_stats",
]


def two_hop_neighbors_u(graph: BipartiteGraph, u: int) -> np.ndarray:
    """Sorted ``N2(u)``: U-vertices sharing a V-neighbor with ``u``."""
    nbrs = graph.neighbors_u(u)
    if len(nbrs) == 0:
        return np.empty(0, dtype=np.int32)
    parts = [graph.neighbors_v(int(v)) for v in nbrs]
    merged = np.unique(np.concatenate(parts))
    return merged[merged != u].astype(np.int32, copy=False)


def two_hop_neighbors_v(graph: BipartiteGraph, v: int) -> np.ndarray:
    """Sorted ``N2(v)``: V-vertices sharing a U-neighbor with ``v``."""
    return two_hop_neighbors_u(graph.swapped(), v)


def max_degree_u(graph: BipartiteGraph) -> int:
    """``Δ(U)``."""
    return int(graph.degrees_u.max(initial=0))


def max_degree_v(graph: BipartiteGraph) -> int:
    """``Δ(V)``."""
    return int(graph.degrees_v.max(initial=0))


def _max_two_hop_degree(indptr: np.ndarray, indices: np.ndarray,
                        o_indptr: np.ndarray, o_indices: np.ndarray,
                        n: int) -> int:
    best = 0
    scratch: dict[int, None]
    for x in range(n):
        nbrs = indices[indptr[x]:indptr[x + 1]]
        if len(nbrs) == 0:
            continue
        parts = [o_indices[o_indptr[int(y)]:o_indptr[int(y) + 1]] for y in nbrs]
        merged = np.concatenate(parts)
        count = len(np.unique(merged))
        # Exclude x itself; it always appears (each neighbor links back).
        count -= 1
        if count > best:
            best = count
    return best


def max_two_hop_degree_u(graph: BipartiteGraph) -> int:
    """``Δ2(U)`` — maximum number of 2-hop neighbors over U."""
    return _max_two_hop_degree(
        graph.u_indptr, graph.u_indices,
        graph.v_indptr, graph.v_indices, graph.n_u,
    )


def max_two_hop_degree_v(graph: BipartiteGraph) -> int:
    """``Δ2(V)`` — maximum number of 2-hop neighbors over V."""
    return _max_two_hop_degree(
        graph.v_indptr, graph.v_indices,
        graph.u_indptr, graph.u_indices, graph.n_v,
    )


@dataclass(frozen=True)
class GraphStats:
    """One row of the paper's Table 1 (biclique count filled in separately)."""

    name: str
    n_u: int
    n_v: int
    n_edges: int
    max_deg_u: int
    max_two_hop_u: int
    max_deg_v: int
    max_two_hop_v: int

    def node_buffer_words(self) -> int:
        """Node-reuse footprint bound per §4.1: ``3·Δ(V) + 2·Δ2(V)`` words."""
        return 3 * self.max_deg_v + 2 * self.max_two_hop_v

    def naive_tree_words(self) -> int:
        """Pre-allocated subtree footprint per §3.1:
        ``Δ(V)·(Δ(V) + Δ2(V))`` words."""
        return self.max_deg_v * (self.max_deg_v + self.max_two_hop_v)


def compute_stats(graph: BipartiteGraph) -> GraphStats:
    """Compute the Table 1 statistics row for ``graph``.

    Quadratic-ish in the worst case (unions of adjacency lists); intended
    for the laptop-scale analog datasets, not web-scale graphs.
    """
    return GraphStats(
        name=graph.name,
        n_u=graph.n_u,
        n_v=graph.n_v,
        n_edges=graph.n_edges,
        max_deg_u=max_degree_u(graph),
        max_two_hop_u=max_two_hop_degree_u(graph),
        max_deg_v=max_degree_v(graph),
        max_two_hop_v=max_two_hop_degree_v(graph),
    )
