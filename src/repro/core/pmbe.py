"""PMBE — pivot-based MBE (Abidi et al., IJCAI 2020), reproduced by effect.

PMBE's contribution is pivot-based branch elimination: branches whose
expansion is dominated by an already-expanded pivot are skipped.  We
reproduce that effect on the shared engine with the provably-safe
dominated-sibling rule (a candidate whose local neighborhood is fully
inside a traversed sibling's neighborhood — detected by an unchanged
local-neighborhood size — can only yield non-maximal nodes), plus batch
absorption, on the degree-prepared graph with natural candidate order.
The full containment-DAG machinery of the original is out of scope; the
measured effect (fewer nodes than iMBEA, more than ooMBEA) matches the
paper's Fig. 6 ladder.  See DESIGN.md.
"""

from __future__ import annotations

from ..graph.bipartite import BipartiteGraph
from .bicliques import BicliqueSink, EnumerationResult
from .engine import EngineOptions
from .runner import run_baseline

__all__ = ["pmbe"]

_OPTIONS = EngineOptions(order="id", absorb_equal_left=True, nls_prune=True)


def pmbe(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    relabel: bool = True,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with the PMBE baseline."""
    return run_baseline(graph, sink, _OPTIONS, order="degree", relabel=relabel)
