"""Per-vertex root-task construction (Alg. 3 / Alg. 4 lines #7–13).

Both ParMBE and GMBE decompose the problem into one independent task per
V-vertex ``v_s``: the subtree rooted at the closure of ``{v_s}``, with
candidates drawn from the *later-ordered* 2-hop neighborhood.  A task is
dropped when ``v_s`` is not the smallest vertex of its ``R`` — the
cross-task deduplication rule — so each maximal biclique belongs to
exactly one task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.bipartite import BipartiteGraph
from .bicliques import Counters
from .bitset import BitsetUniverse, resolve_backend
from .localcount import LocalCounter, ragged_gather

__all__ = ["RootTask", "build_root_task"]


@dataclass
class RootTask:
    """Root node of one per-vertex subtree.

    ``(left, right)`` is itself a maximal biclique (the closure of
    ``{v_s}``), reported by the executor exactly when the task survives
    deduplication.  ``work`` is the scalar cost of building the task.
    ``universe`` is the packed-bitset view of the induced subgraph when
    the backend heuristic chose bitset mode for this task (``backend``
    records the resolved choice).
    """

    v_s: int
    left: np.ndarray
    right: np.ndarray
    cands: np.ndarray
    counts: np.ndarray
    work: int
    backend: str = "sorted"
    universe: BitsetUniverse | None = None

    def estimated_height(self) -> int:
        """Tree-height estimate ``min(|L|, |C|)`` from §4.3."""
        return min(len(self.left), len(self.cands))

    def estimated_size(self) -> int:
        """Tree-size estimate ``min(|L|, |C|) · |C|`` from §4.3."""
        return self.estimated_height() * len(self.cands)


def build_root_task(
    graph: BipartiteGraph,
    counter: LocalCounter,
    v_s: int,
    counters: Counters | None = None,
    *,
    backend: str = "sorted",
) -> RootTask | None:
    """Build the root task for ``v_s``; ``None`` if empty or deduplicated.

    The returned task's ``right`` is the closure ``Γ(N(v_s))`` restricted
    per Alg. 3: every 2-hop neighbor fully connected to ``L_s`` joins
    ``R_s`` regardless of order, so ``R_s == Γ(L_s)`` by construction and
    the survival test is simply ``min(R_s) == v_s``.

    ``backend`` is ``"sorted"``, ``"bitset"``, or ``"auto"`` (per-task
    density heuristic, :func:`repro.core.bitset.resolve_backend`).  In
    bitset mode the task carries a :class:`BitsetUniverse` over
    ``L_s`` whose scope is every 2-hop vertex with a neighbor in ``L_s``
    plus ``v_s`` itself — closed under all maximality checks the subtree
    can perform, since ``Γ(L') ⊆ scope`` for any nonempty ``L' ⊆ L_s``.
    """
    left = graph.neighbors_v(v_s)
    if len(left) == 0:
        return None
    # N2(v_s): V-vertices sharing a U-neighbor with v_s.
    flat, hop_lengths = ragged_gather(
        graph.u_indptr, graph.u_indices, left.astype(np.int64)
    )
    work = int(len(flat))
    two_hop = np.unique(flat)
    two_hop = two_hop[two_hop != v_s]
    counter.set_left(left)
    if counters is not None:
        counters.charge_ragged(hop_lengths)
        counters.charge(len(left), 0)  # stamping L_s
    counts, gathered = counter.counts(two_hop, counters)
    work += gathered + len(left)
    full = counts == len(left)
    absorbed = two_hop[full]
    if len(absorbed) and int(absorbed[0]) < v_s:
        return None  # a smaller vertex owns this biclique's task
    right = np.concatenate(
        [absorbed[absorbed < v_s], [np.int32(v_s)], absorbed[absorbed >= v_s]]
    ).astype(np.int32)
    later_partial = (counts > 0) & ~full & (two_hop > v_s)
    cands = two_hop[later_partial].astype(np.int32)
    resolved = backend
    universe = None
    if backend == "auto" and len(cands) == 0:
        # No subtree to expand — nothing amortizes a universe build, so
        # skip even the scope/degree bookkeeping of the heuristic.
        resolved = "sorted"
    elif backend != "sorted":
        partial_scope = two_hop[counts > 0]
        scope = np.insert(
            partial_scope, np.searchsorted(partial_scope, v_s), v_s
        ).astype(np.int32)
        resolved = resolve_backend(
            backend,
            len(left),
            len(cands),
            len(scope),
            int(graph.degrees_v[scope].sum()),
        )
        if resolved == "bitset":
            universe = BitsetUniverse.build(graph, left, scope)
            if counters is not None:
                # Building the packed rows is one word-parallel pass over
                # the scoped adjacency, amortized across the subtree.
                counters.charge_bitset(len(scope), universe.n_words)
    return RootTask(
        v_s=v_s,
        left=left,
        right=right,
        cands=cands,
        counts=counts[later_partial],
        work=work,
        backend=resolved,
        universe=universe,
    )
