"""Biclique value types, output sinks, and enumeration counters.

Every enumerator in the library reports maximal bicliques through a
*sink* — any callable ``sink(L, R)`` receiving sorted numpy arrays.  The
provided sinks cover the common needs: counting (the paper only counts —
its Table 1 reports ``Max. bicliques``), collecting for tests, and
streaming to a file.  Enumerators also fill a shared :class:`Counters`
record that backs Table 2 (ratio of non-maximal to maximal checks) and
the simulator's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, TextIO

import numpy as np

__all__ = [
    "Biclique",
    "BicliqueSink",
    "BicliqueCounter",
    "BicliqueCollector",
    "BicliqueWriter",
    "Counters",
    "EnumerationResult",
    "verify_biclique",
]


@dataclass(frozen=True, order=True)
class Biclique:
    """A biclique ``(L ⊆ U, R ⊆ V)`` with hashable sorted tuples."""

    left: tuple[int, ...]
    right: tuple[int, ...]

    @staticmethod
    def make(left: Iterable[int], right: Iterable[int]) -> "Biclique":
        return Biclique(tuple(sorted({int(x) for x in left})),
                        tuple(sorted({int(x) for x in right})))

    @property
    def n_vertices(self) -> int:
        return len(self.left) + len(self.right)

    @property
    def n_edges(self) -> int:
        return len(self.left) * len(self.right)


class BicliqueSink(Protocol):
    """Anything accepting ``sink(L, R)`` with sorted numpy arrays."""

    def __call__(self, left: np.ndarray, right: np.ndarray) -> None: ...


class BicliqueCounter:
    """Sink that only counts maximal bicliques (the paper's default)."""

    def __init__(self) -> None:
        self.count = 0
        self.max_left = 0
        self.max_right = 0

    def __call__(self, left: np.ndarray, right: np.ndarray) -> None:
        self.count += 1
        if len(left) > self.max_left:
            self.max_left = len(left)
        if len(right) > self.max_right:
            self.max_right = len(right)


class BicliqueCollector:
    """Sink that materializes every maximal biclique (tests, small runs)."""

    def __init__(self) -> None:
        self.bicliques: list[Biclique] = []

    def __call__(self, left: np.ndarray, right: np.ndarray) -> None:
        self.bicliques.append(Biclique.make(left, right))

    @property
    def count(self) -> int:
        return len(self.bicliques)

    def as_set(self) -> set[Biclique]:
        return set(self.bicliques)


class BicliqueWriter:
    """Sink streaming bicliques as ``u,... | v,...`` text lines."""

    def __init__(self, fh: TextIO) -> None:
        self._fh = fh
        self.count = 0

    def __call__(self, left: np.ndarray, right: np.ndarray) -> None:
        self.count += 1
        self._fh.write(
            ",".join(map(str, left.tolist()))
            + " | "
            + ",".join(map(str, right.tolist()))
            + "\n"
        )


@dataclass
class Counters:
    """Work counters shared by all enumerators.

    ``maximal``/``non_maximal`` split the outcomes of the maximality check
    (Alg. 2 line #14): their ratio ``non_maximal / maximal`` is the δ/α of
    the paper's Table 2.  ``set_op_work`` accumulates ``|a| + |b|`` over
    every sorted-set operation — and packed *words* over every bitset
    operation (:meth:`charge_bitset`) — the scalar work the cost model
    converts to simulated time.  ``pruned`` counts candidates removed by
    the local-neighborhood-size rule (§4.2).
    """

    nodes_generated: int = 0
    maximal: int = 0
    non_maximal: int = 0
    pruned: int = 0
    set_op_work: int = 0
    peak_stack_depth: int = 0
    #: Modeled 32-lane warp steps: each set op of total length W costs
    #: ``ceil(W/32) + 1`` steps; ragged per-row passes cost per-row ceils,
    #: which is how lane under-utilization (thread divergence) shows up.
    simt_cycles: int = 0

    def charge(self, a_len: int, b_len: int) -> None:
        """Record one sorted-set operation over arrays of these lengths."""
        total = a_len + b_len
        self.set_op_work += total
        self.simt_cycles += (total + 31) // 32 + 1

    def charge_ragged(self, lengths) -> None:
        """Record a per-row pass over ragged rows (numpy lengths array).

        Each row occupies whole warp steps, so short rows waste lanes —
        the divergence cost the §4.2 pruning reduces by shrinking the
        candidate set.
        """
        total = int(lengths.sum())
        self.set_op_work += total
        # sum(ceil(l/32)) == (sum(l) + sum(-l mod 32)) / 32; the remainder
        # term needs the per-row values, so keep one vector op only.
        self.simt_cycles += int((-lengths % 32).sum() + total) // 32 + 1

    def charge_bitset(self, n_rows: int, n_words: int) -> None:
        """Record a batched packed-bitset pass (word-wide AND + popcount).

        Every row is exactly ``n_words`` 64-bit words, so a warp streams
        32 words per step with *no* per-row divergence — the cuMBE/GBC
        bitmap advantage the simulator must reflect.  ``set_op_work`` is
        charged in words (the cost model's currency is vector lanes of
        useful work; one word carries 64 vertex slots).
        """
        total = int(n_rows) * int(n_words)
        self.set_op_work += total
        self.simt_cycles += (total + 31) // 32 + 1

    @property
    def checks(self) -> int:
        return self.maximal + self.non_maximal

    def nonmaximal_ratio(self) -> float:
        """δ/α — Table 2's pruning-efficiency metric."""
        return self.non_maximal / self.maximal if self.maximal else 0.0

    def merge(self, other: "Counters") -> None:
        self.nodes_generated += other.nodes_generated
        self.maximal += other.maximal
        self.non_maximal += other.non_maximal
        self.pruned += other.pruned
        self.set_op_work += other.set_op_work
        self.simt_cycles += other.simt_cycles
        self.peak_stack_depth = max(self.peak_stack_depth, other.peak_stack_depth)


@dataclass
class EnumerationResult:
    """What every top-level enumerator returns."""

    n_maximal: int
    counters: Counters = field(default_factory=Counters)
    #: Simulated wall-clock seconds, when the run was driven through a
    #: platform model (GPU simulator or the simulated CPU pool); 0.0 for
    #: plain host execution.
    sim_time: float = 0.0
    #: Algorithm-specific extras (e.g. ParMBE per-task work, GMBE SM
    #: timelines); absent keys simply aren't produced by that algorithm.
    extras: dict = field(default_factory=dict)

    @property
    def count(self) -> int:
        return self.n_maximal


def verify_biclique(
    graph, left: Iterable[int], right: Iterable[int]
) -> tuple[bool, bool]:
    """Check ``(left, right)`` against ``graph``.

    Returns ``(is_biclique, is_maximal)``.  Quadratic; for tests.
    """
    from . import sets

    l_arr = np.asarray(sorted(set(int(x) for x in left)), dtype=np.int64)
    r_arr = np.asarray(sorted(set(int(x) for x in right)), dtype=np.int64)
    if len(l_arr) == 0 or len(r_arr) == 0:
        return False, False
    for u in l_arr:
        if not sets.is_subset(r_arr, graph.neighbors_u(int(u))):
            return False, False
    # Maximal iff no vertex outside extends it on either side.
    for u in range(graph.n_u):
        if u in l_arr:
            continue
        if sets.is_subset(r_arr, graph.neighbors_u(u)):
            return True, False
    for v in range(graph.n_v):
        if v in r_arr:
            continue
        if sets.is_subset(l_arr, graph.neighbors_v(v)):
            return True, False
    return True, True
