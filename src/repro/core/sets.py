"""Sorted-array set kernels.

Every MBE algorithm in this library represents vertex sets as strictly
ascending ``int32``/``int64`` numpy arrays (CSR adjacency rows already are).
These kernels are the inner loop of the whole system, so they are written
as branch-light vectorized numpy; the asymptotic shape (``O(min·log max)``
via galloping `searchsorted`) matches what a warp-parallel merge
intersection does on a real GPU, which is what the simulator's cost model
charges for.

All functions assume **sorted, duplicate-free** inputs; that invariant is
established once at graph build time and preserved by every operation here.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EMPTY",
    "intersect",
    "intersect_size",
    "is_subset",
    "setdiff",
    "union",
    "contains",
    "insert_sorted",
    "remove_sorted",
]

#: Canonical empty vertex set.
EMPTY = np.empty(0, dtype=np.int32)


def _membership_mask(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean mask over ``a``: which elements also occur in ``b``."""
    if len(a) == 0 or len(b) == 0:
        return np.zeros(len(a), dtype=bool)
    idx = np.searchsorted(b, a)
    idx[idx == len(b)] = len(b) - 1
    return b[idx] == a


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted intersection ``a ∩ b``.

    The result carries the smaller operand's dtype (as the non-empty
    case always did) — never the module-level int32 ``EMPTY``, so int64
    inputs keep producing int64 outputs.
    """
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0:
        return a[:0]
    return a[_membership_mask(a, b)]


def intersect_size(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` without materializing the intersection.

    Pure searchsorted counting: each element of the smaller operand
    contributes ``1`` exactly when its left/right insertion points in
    the larger operand differ (sets are duplicate-free), so no gather,
    clamp, or intersection array is ever built.
    """
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0:
        return 0
    lo = np.searchsorted(b, a, side="left")
    hi = np.searchsorted(b, a, side="right")
    return int((hi - lo).sum())


def is_subset(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether ``a ⊆ b``."""
    if len(a) == 0:
        return True
    if len(a) > len(b):
        return False
    return bool(np.all(_membership_mask(a, b)))


def setdiff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted difference ``a \\ b``."""
    if len(a) == 0 or len(b) == 0:
        return a
    return a[~_membership_mask(a, b)]


def union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted union ``a ∪ b``."""
    if len(a) == 0:
        return b
    if len(b) == 0:
        return a
    out = np.union1d(a, b)
    return out.astype(a.dtype, copy=False)


def contains(a: np.ndarray, x: int) -> bool:
    """Whether scalar ``x`` occurs in sorted array ``a``."""
    i = int(np.searchsorted(a, x))
    return i < len(a) and int(a[i]) == x


def insert_sorted(a: np.ndarray, x: int) -> np.ndarray:
    """Return ``a ∪ {x}`` (no-op copy semantics if already present)."""
    i = int(np.searchsorted(a, x))
    if i < len(a) and int(a[i]) == x:
        return a
    return np.insert(a, i, x)


def remove_sorted(a: np.ndarray, x: int) -> np.ndarray:
    """Return ``a \\ {x}``."""
    i = int(np.searchsorted(a, x))
    if i < len(a) and int(a[i]) == x:
        return np.delete(a, i)
    return a
