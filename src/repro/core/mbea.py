"""MBEA — the basic recursive MBE baseline (Zhang et al., 2014).

The plain set-enumeration search of Alg. 1 without candidate ordering,
batch absorption, or pruning: every child node pays a full closure
(maximality) check and fully-connected candidates still fork their own
branches' worth of work.  This is the slowest baseline in the paper's
Fig. 6 and the yardstick everything else improves on.

One concession to the synthetic analogs: the graph still receives the
§5 preprocessing (degree-ascending V), because with the hub-block skew
of the large analogs a literally arbitrary input order makes base MBEA
intractable at any scale — the same reason every published MBEA
implementation processes vertices in a degree-aware order.  iMBEA's
differentiators on top of this (per-node candidate sorting by local
neighborhood size, batch absorption) remain intact, so the Fig. 6
refinement ladder is preserved and strict.
"""

from __future__ import annotations

from ..graph.bipartite import BipartiteGraph
from .bicliques import BicliqueSink, EnumerationResult
from .engine import EngineOptions
from .runner import run_baseline

__all__ = ["mbea"]

_OPTIONS = EngineOptions(order="id", absorb_equal_left=False, nls_prune=False)


def mbea(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    relabel: bool = True,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with the MBEA baseline.

    Parameters
    ----------
    graph:
        Input bipartite graph.
    sink:
        Optional ``sink(L, R)`` callable receiving each maximal biclique
        (sorted numpy arrays).  Counting always happens regardless.
    relabel:
        Report bicliques in the input labeling (default) rather than the
        internal prepared order.
    """
    return run_baseline(graph, sink, _OPTIONS, order="degree", relabel=relabel)
