"""Unified set-enumeration-tree engine behind the CPU baselines.

All of the paper's CPU competitors (MBEA, iMBEA, PMBE, ooMBEA) are
backtracking searches over the same set-enumeration tree (Alg. 1); they
differ in vertex ordering, batch absorption of fully-connected
candidates, and pruning strength.  This engine implements the common tree
walk once — as an explicit-stack DFS, semantically identical to the
recursion — with those design choices as knobs:

``order``
    Candidate order inside each node: ``"id"`` (natural order of the
    prepared graph), ``"count_asc"`` (iMBEA's smallest-local-neighborhood
    first), ``"count_desc"`` (pivot-style, largest first).
``absorb_equal_left``
    iMBEA's trick: when ``L' == L`` the branch subsumes its parent, so
    the parent frame is replaced rather than forked.
``nls_prune``
    The local-neighborhood-size rule (paper §4.2 / Thm 4.1): after
    traversing ``v'``, siblings whose ``|N_L|`` is unchanged against the
    new ``L'`` are discarded from the continuation — each would generate
    a provably non-maximal node.

Fidelity note (also in DESIGN.md): PMBE and ooMBEA each carry machinery
(pivot containment structures, batch pivots over 2-hop orderings) beyond
what Fig. 6 needs; they are reproduced here by their *effect* — stronger
ordering/pruning on the shared tree — which preserves the relative
performance ladder the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..graph.bipartite import BipartiteGraph
from . import sets
from .bicliques import BicliqueSink, Counters
from .expand import expand_node, gamma_matches
from .localcount import LocalCounter

__all__ = ["EngineOptions", "run_engine", "run_subtree", "root_candidates"]

Order = Literal["id", "count_asc", "count_desc"]


@dataclass(frozen=True)
class EngineOptions:
    """Knobs distinguishing the baseline algorithms (see module docs).

    ``min_left``/``min_right`` additionally enable *size-constrained*
    enumeration (the (p,q)-biclique setting of Yang et al., cited by the
    paper): subtrees that provably cannot reach ``|L| ≥ min_left`` and
    ``|R| ≥ min_right`` are pruned, and only satisfying maximal
    bicliques are reported.  Both prunings are safe because ``L`` only
    shrinks down the tree and ``R`` can only grow from ``C``.
    """

    order: Order = "id"
    absorb_equal_left: bool = False
    nls_prune: bool = False
    min_left: int = 1
    min_right: int = 1


def _apply_order(
    cands: np.ndarray, counts: np.ndarray, order: Order
) -> tuple[np.ndarray, np.ndarray]:
    if order == "id" or len(cands) <= 1:
        return cands, counts
    if order == "count_asc":
        idx = np.argsort(counts, kind="stable")
    else:
        idx = np.argsort(-counts, kind="stable")
    return cands[idx], counts[idx]


def root_candidates(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray]:
    """Root ``C`` (non-isolated V vertices, id order) and their counts
    (``|N(v) ∩ U| = deg(v)``)."""
    degs = graph.degrees_v
    cands = np.nonzero(degs > 0)[0].astype(np.int32)
    return cands, degs[cands].astype(np.int64)


def run_subtree(
    graph: BipartiteGraph,
    counter: LocalCounter,
    left: np.ndarray,
    right: np.ndarray,
    cands: np.ndarray,
    counts: np.ndarray,
    sink: BicliqueSink,
    counters: Counters,
    options: EngineOptions,
) -> None:
    """DFS over the subtree rooted at node ``(left, right, cands)``.

    ``counts`` must hold ``|N(v_c) ∩ left|`` per candidate.  The root node
    itself is *not* reported (matching ``iteratively_search`` in Alg. 2);
    callers report it when appropriate.
    """
    cands, counts = _apply_order(cands, counts, options.order)
    stack: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]] = [
        (left, right, cands, counts, 0)
    ]
    while stack:
        if len(stack) > counters.peak_stack_depth:
            counters.peak_stack_depth = len(stack)
        l_cur, r_cur, c_cur, n_cur, depth = stack.pop()
        if len(c_cur) == 0:
            continue
        v_prime = int(c_cur[0])
        exp = expand_node(graph, counter, l_cur, v_prime, c_cur, counters)
        counters.nodes_generated += 1
        assert exp.all_counts is not None
        new_right_size = len(r_cur) + len(exp.absorbed)

        # Size-constrained pruning: |L| only shrinks and |R| is bounded
        # by |R'| + |C'|, so a child that already misses a bound can be
        # dropped without the maximality check.
        size_feasible = (
            len(exp.left) >= options.min_left
            and new_right_size + len(exp.new_candidates) >= options.min_right
        )
        if not size_feasible:
            counters.pruned += 1
            if options.absorb_equal_left and len(exp.left) == len(l_cur):
                # The whole remaining parent subtree shares this fate.
                continue
            cont_c = c_cur[1:]
            cont_n = n_cur[1:]
            if len(cont_c):
                stack.append((l_cur, r_cur, cont_c, cont_n, depth))
            continue

        maximal = gamma_matches(graph, exp.left, new_right_size, counters)
        if maximal:
            counters.maximal += 1
            new_right = sets.union(r_cur, exp.absorbed)
            if new_right_size >= options.min_right:
                sink(exp.left, new_right)
        else:
            counters.non_maximal += 1
            new_right = None

        merged = options.absorb_equal_left and len(exp.left) == len(l_cur)
        if not merged:
            # Parent continuation: remaining candidates after removing v'
            # (and, with nls_prune, siblings with unchanged |N_L|).
            cont_c = c_cur[1:]
            cont_n = n_cur[1:]
            if options.nls_prune and len(cont_c):
                changed = exp.all_counts[1:] != cont_n
                counters.pruned += int(len(cont_c) - np.count_nonzero(changed))
                cont_c = cont_c[changed]
                cont_n = cont_n[changed]
            if len(cont_c):
                stack.append((l_cur, r_cur, cont_c, cont_n, depth))
        # When merged and non-maximal, the entire remaining subtree of the
        # parent is non-maximal too (a traversed vertex stays fully
        # connected to every descendant's L) — drop it.
        if maximal and len(exp.new_candidates):
            child_c, child_n = _apply_order(
                exp.new_candidates, exp.new_counts, options.order
            )
            assert new_right is not None
            stack.append((exp.left, new_right, child_c, child_n, depth + 1))


def run_engine(
    graph: BipartiteGraph,
    sink: BicliqueSink,
    options: EngineOptions,
    counters: Counters | None = None,
) -> Counters:
    """Enumerate all maximal bicliques of ``graph`` from the full root
    node ``(U, ∅, V)`` using the given engine options."""
    counters = counters if counters is not None else Counters()
    if graph.n_u == 0 or graph.n_v == 0 or graph.n_edges == 0:
        return counters
    counter = LocalCounter(graph)
    left = np.arange(graph.n_u, dtype=np.int32)
    cands, counts = root_candidates(graph)
    run_subtree(
        graph,
        counter,
        left,
        sets.EMPTY,
        cands,
        counts,
        sink,
        counters,
        options,
    )
    return counters
