"""ooMBEA — ordering-optimized MBE (Chen et al., VLDB 2022), by effect.

ooMBEA combines a global ordering of V with batch-pivot pruning derived
from 2-hop neighborhoods — the strongest serial baseline in the paper's
Fig. 6.  We reproduce it as: degree-ascending preparation, batch
absorption, and the sibling pruning rule that GMBE's Theorem 4.1
generalizes (a candidate whose local neighborhood size is unchanged by a
traversed sibling's branch can only generate non-maximal nodes).  The
paper notes (§3.2) that this family of pruning traverses candidates'
neighborhoods heavily — cheap on CPUs, divergence-prone on GPUs — which
is exactly the trade-off the GMBE comparison explores.
"""

from __future__ import annotations

from ..graph.bipartite import BipartiteGraph
from .bicliques import BicliqueSink, EnumerationResult
from .engine import EngineOptions
from .runner import run_baseline

__all__ = ["oombea"]

_OPTIONS = EngineOptions(order="count_asc", absorb_equal_left=True, nls_prune=True)


def oombea(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    relabel: bool = True,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with the ooMBEA baseline."""
    return run_baseline(graph, sink, _OPTIONS, order="degree", relabel=relabel)
