"""ParMBE — shared-memory parallel MBE (Das & Tirthapura, HiPC 2019).

The state-of-the-art *CPU* competitor in the paper (96 threads).  ParMBE
distributes one task per V-vertex (the Alg. 3 decomposition in the GMBE
paper) across a work-stealing pool; each task runs an independent subtree
search over the later-ordered 2-hop neighborhood of its vertex.

Execution modes:

- ``"serial"`` — run tasks sequentially (pure correctness path);
- ``"threads"`` — run tasks on a real thread pool (exercises the
  concurrent path; results must be identical);
- both record per-task costs, and the result's ``sim_time`` is the
  makespan of list-scheduling those costs onto ``n_workers`` simulated
  cores (see :mod:`repro.parallel.simpool`) in scalar work units —
  the reproduction's stand-in for the paper's 96-core wall clock.
"""

from __future__ import annotations

import threading

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..graph.preprocess import prepare
from ..parallel.pool import run_tasks_threaded
from ..parallel.simpool import schedule_tasks
from .bicliques import BicliqueCounter, BicliqueSink, Counters, EnumerationResult
from .engine import EngineOptions, run_subtree
from .localcount import LocalCounter
from .runner import relabeling_sink
from .tasks import build_root_task

__all__ = ["parmbe"]

_SUBTREE_OPTIONS = EngineOptions(order="id", absorb_equal_left=True, nls_prune=False)


def parmbe(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    n_workers: int = 96,
    mode: str = "serial",
    n_threads: int = 4,
    relabel: bool = True,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with the ParMBE decomposition.

    Parameters
    ----------
    n_workers:
        Simulated core count for the reported makespan (paper: 96).
    mode:
        ``"serial"`` or ``"threads"`` (real concurrency; identical output).
    n_threads:
        Pool width when ``mode == "threads"``.
    """
    if mode not in ("serial", "threads"):
        raise ValueError(f"unknown mode {mode!r}")
    prepared = prepare(graph, order="degree")
    g = prepared.graph
    counting = BicliqueCounter()
    lock = threading.Lock()
    if sink is None:
        user_sink = None
    else:
        user_sink = relabeling_sink(prepared, sink) if relabel else sink

    tls = threading.local()

    def get_counter() -> LocalCounter:
        counter = getattr(tls, "counter", None)
        if counter is None:
            counter = LocalCounter(g)
            tls.counter = counter
        return counter

    def run_task(v_s: int) -> tuple[Counters, int]:
        counter = get_counter()
        task_counters = Counters()
        task = build_root_task(g, counter, v_s, task_counters)
        if task is None:
            return task_counters, task_counters.set_op_work
        emitted: list[tuple[np.ndarray, np.ndarray]] = [(task.left, task.right)]
        task_counters.maximal += 1
        run_subtree(
            g,
            counter,
            task.left,
            task.right,
            task.cands,
            task.counts,
            lambda left, right: emitted.append((left, right)),
            task_counters,
            _SUBTREE_OPTIONS,
        )
        with lock:
            for left, right in emitted:
                counting(left, right)
                if user_sink is not None:
                    user_sink(left, right)
        return task_counters, task_counters.set_op_work

    vertices = range(g.n_v)
    if mode == "serial":
        outcomes = [run_task(v) for v in vertices]
    else:
        outcomes = run_tasks_threaded(run_task, vertices, n_workers=n_threads)

    counters = Counters()
    costs: list[int] = []
    nodes: list[int] = []
    for task_counters, cost in outcomes:
        counters.merge(task_counters)
        costs.append(cost)
        nodes.append(task_counters.nodes_generated)
    schedule = schedule_tasks(costs, n_workers)
    return EnumerationResult(
        n_maximal=counting.count,
        counters=counters,
        sim_time=schedule.makespan,
        extras={"schedule": schedule, "task_costs": costs, "task_nodes": nodes},
    )
