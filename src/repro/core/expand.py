"""Shared node-expansion and maximality-check primitives.

These implement the two halves of the enumeration-node body shared by
Algorithm 1 (recursive baseline), Algorithm 2 (GMBE's stack iteration),
and Algorithm 4 (GMBE's kernel):

- *node generation*: split the parent candidate set by each candidate's
  local neighborhood size against the child's ``L'`` (lines #9–13 of
  Alg. 2) — vectorized through :class:`repro.core.localcount.LocalCounter`;
- *maximality check*: ``R' == Γ(L')`` (line #14), realized as a chained
  sorted intersection with early abort once ``|Γ|`` provably exceeds or
  matches can no longer hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.bipartite import BipartiteGraph
from . import sets
from .bicliques import Counters
from .localcount import LocalCounter

__all__ = ["Expansion", "expand_node", "gamma", "gamma_matches"]


@dataclass
class Expansion:
    """Result of one node generation.

    Attributes
    ----------
    left:
        ``L' = L ∩ N(v')`` (sorted U vertices).
    absorbed:
        Candidates fully connected to ``L'`` (join ``R'``), in candidate
        order; includes ``v'`` itself when it is part of ``candidates``.
    new_candidates:
        Candidates with ``0 < |N_L'| < |L'|`` (form ``C'``).
    new_counts:
        Local neighborhood sizes of ``new_candidates`` against ``L'``.
    work:
        Scalar units of gathered adjacency — the cost-model input.
    """

    left: np.ndarray
    absorbed: np.ndarray
    new_candidates: np.ndarray
    new_counts: np.ndarray
    work: int
    #: ``|N(v_c) ∩ L'|`` for *every* input candidate, aligned with the
    #: ``candidates`` argument — what the local-neighborhood-size pruning
    #: rule (§4.2) compares against the parent's counts.
    all_counts: np.ndarray | None = None


def expand_node(
    graph: BipartiteGraph,
    counter: LocalCounter,
    left: np.ndarray,
    v_prime: int,
    candidates: np.ndarray,
    counters: Counters | None = None,
) -> Expansion:
    """Generate the child node reached by traversing ``v_prime``.

    ``candidates`` must contain the candidates to classify (conventionally
    still including ``v_prime``; it will then land in ``absorbed``).
    """
    n_vp = graph.neighbors_v(v_prime)
    new_left = sets.intersect(left, n_vp)
    work = len(left) + len(n_vp)
    if len(new_left) == 0:
        empty = np.empty(0, dtype=candidates.dtype)
        if counters is not None:
            counters.charge(len(left), len(n_vp))
        return Expansion(
            new_left,
            empty,
            empty,
            np.empty(0, dtype=np.int64),
            work,
            all_counts=np.zeros(len(candidates), dtype=np.int64),
        )
    counter.set_left(new_left)
    if counters is not None:
        counters.charge(len(left), len(n_vp))
        counters.charge(len(new_left), 0)  # stamping L'
    counts, gathered = counter.counts(candidates, counters)
    work += gathered + len(new_left)
    full = counts == len(new_left)
    partial = (counts > 0) & ~full
    return Expansion(
        left=new_left,
        absorbed=candidates[full],
        new_candidates=candidates[partial],
        new_counts=counts[partial],
        work=work,
        all_counts=counts,
    )


def gamma(
    graph: BipartiteGraph, left: np.ndarray, counters: Counters | None = None
) -> np.ndarray:
    """``Γ(L)`` — the common V-neighborhood of all vertices in ``left``."""
    if len(left) == 0:
        return np.arange(graph.n_v, dtype=np.int32)
    # Start from the smallest adjacency list to keep intermediates tight.
    degs = graph.u_indptr[np.asarray(left) + 1] - graph.u_indptr[np.asarray(left)]
    order = np.argsort(degs, kind="stable")
    acc = graph.neighbors_u(int(left[order[0]]))
    for i in order[1:]:
        nbrs = graph.neighbors_u(int(left[i]))
        if counters is not None:
            counters.charge(len(acc), len(nbrs))
        acc = sets.intersect(acc, nbrs)
        if len(acc) == 0:
            break
    return acc


def gamma_matches(
    graph: BipartiteGraph,
    left: np.ndarray,
    right_size: int,
    counters: Counters | None = None,
) -> bool:
    """Whether ``|Γ(left)| == right_size`` — the Alg. 2 maximality check.

    ``R' ⊆ Γ(L')`` always holds for nodes built by :func:`expand_node`, so
    equality of sizes is equality of sets.  Aborts the intersection chain
    as soon as ``|Γ|`` drops below ``right_size``.
    """
    if len(left) == 0:
        return right_size == graph.n_v
    # Seed the chain from the smallest adjacency list (cheapest pivot),
    # then sweep the rest in natural order with early abort.
    degs = graph.u_indptr[left + 1] - graph.u_indptr[left]
    first = int(np.argmin(degs))
    acc = graph.neighbors_u(int(left[first]))
    if len(acc) < right_size:
        return False
    for i in range(len(left)):
        if i == first:
            continue
        nbrs = graph.neighbors_u(int(left[i]))
        if counters is not None:
            counters.charge(len(acc), len(nbrs))
        acc = sets.intersect(acc, nbrs)
        if len(acc) < right_size:
            return False
    return len(acc) == right_size
