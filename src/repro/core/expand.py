"""Shared node-expansion and maximality-check primitives.

These implement the two halves of the enumeration-node body shared by
Algorithm 1 (recursive baseline), Algorithm 2 (GMBE's stack iteration),
and Algorithm 4 (GMBE's kernel):

- *node generation*: split the parent candidate set by each candidate's
  local neighborhood size against the child's ``L'`` (lines #9–13 of
  Alg. 2) — vectorized through :class:`repro.core.localcount.LocalCounter`;
- *maximality check*: ``R' == Γ(L')`` (line #14), realized as a chained
  sorted intersection with early abort once ``|Γ|`` provably exceeds or
  matches can no longer hold.

Both primitives accept either set representation.  In sorted mode they
run the galloping-merge kernels of :mod:`repro.core.sets`; when a
:class:`repro.core.bitset.BitsetUniverse` is supplied (dense root tasks,
see :func:`repro.core.bitset.resolve_backend`) the same quantities come
from word-wide AND/popcount over the task's packed rows — identical
integers, different machine model, charged word-parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.bipartite import BipartiteGraph
from . import bitset, sets
from .bicliques import Counters
from .bitset import BitsetUniverse
from .localcount import LocalCounter

__all__ = ["Expansion", "expand_node", "gamma", "gamma_matches"]


@dataclass
class Expansion:
    """Result of one node generation.

    Attributes
    ----------
    left:
        ``L' = L ∩ N(v')`` (sorted U vertices).
    absorbed:
        Candidates fully connected to ``L'`` (join ``R'``), in candidate
        order; includes ``v'`` itself when it is part of ``candidates``.
    new_candidates:
        Candidates with ``0 < |N_L'| < |L'|`` (form ``C'``).
    new_counts:
        Local neighborhood sizes of ``new_candidates`` against ``L'``.
    work:
        Scalar units of gathered adjacency — the cost-model input.
    """

    left: np.ndarray
    absorbed: np.ndarray
    new_candidates: np.ndarray
    new_counts: np.ndarray
    work: int
    #: ``|N(v_c) ∩ L'|`` for *every* input candidate, aligned with the
    #: ``candidates`` argument — what the local-neighborhood-size pruning
    #: rule (§4.2) compares against the parent's counts.
    all_counts: np.ndarray | None = None
    #: Packed ``L'`` over the task universe when the expansion ran in
    #: bitset mode; ``None`` in sorted mode.
    left_mask: np.ndarray | None = None


def _expand_node_bitset(
    universe: BitsetUniverse,
    left: np.ndarray,
    v_prime: int,
    candidates: np.ndarray,
    counters: Counters | None,
    left_mask: np.ndarray | None,
) -> Expansion:
    """Bitset-mode body of :func:`expand_node` (same fields, same ints)."""
    if left_mask is None:
        left_mask = universe.mask_of_left_subset(left)
    nw = universe.n_words
    new_mask = left_mask & universe.row(v_prime)
    if counters is not None:
        counters.charge_bitset(1, nw)
    n_left = bitset.popcount(new_mask)
    work = nw
    if n_left == 0:
        empty = candidates[:0]
        return Expansion(
            universe.left[:0],
            empty,
            empty,
            np.empty(0, dtype=np.int64),
            work,
            all_counts=np.zeros(len(candidates), dtype=np.int64),
            left_mask=new_mask,
        )
    cand_rows = universe.row_index(candidates)
    counts = bitset.count_rows_vs_mask(universe.rows[cand_rows], new_mask)
    if counters is not None:
        counters.charge_bitset(len(candidates), nw)
    work += len(candidates) * nw
    full = counts == n_left
    partial = (counts > 0) & ~full
    return Expansion(
        left=universe.left_ids(new_mask),
        absorbed=candidates[full],
        new_candidates=candidates[partial],
        new_counts=counts[partial],
        work=work,
        all_counts=counts,
        left_mask=new_mask,
    )


def expand_node(
    graph: BipartiteGraph,
    counter: LocalCounter,
    left: np.ndarray,
    v_prime: int,
    candidates: np.ndarray,
    counters: Counters | None = None,
    *,
    universe: BitsetUniverse | None = None,
    left_mask: np.ndarray | None = None,
) -> Expansion:
    """Generate the child node reached by traversing ``v_prime``.

    ``candidates`` must contain the candidates to classify (conventionally
    still including ``v_prime``; it will then land in ``absorbed``).

    When ``universe`` is given the expansion runs on packed bitsets
    (``left``/``candidates`` must lie inside the universe; ``left_mask``
    optionally supplies the already-packed ``L`` to skip re-packing).
    The returned sets and counts are bit-identical to sorted mode.
    """
    if universe is not None:
        return _expand_node_bitset(
            universe, left, v_prime, candidates, counters, left_mask
        )
    n_vp = graph.neighbors_v(v_prime)
    new_left = sets.intersect(left, n_vp)
    work = len(left) + len(n_vp)
    if len(new_left) == 0:
        empty = np.empty(0, dtype=candidates.dtype)
        if counters is not None:
            counters.charge(len(left), len(n_vp))
        return Expansion(
            new_left,
            empty,
            empty,
            np.empty(0, dtype=np.int64),
            work,
            all_counts=np.zeros(len(candidates), dtype=np.int64),
        )
    counter.set_left(new_left)
    if counters is not None:
        counters.charge(len(left), len(n_vp))
        counters.charge(len(new_left), 0)  # stamping L'
    counts, gathered = counter.counts(candidates, counters)
    work += gathered + len(new_left)
    full = counts == len(new_left)
    partial = (counts > 0) & ~full
    return Expansion(
        left=new_left,
        absorbed=candidates[full],
        new_candidates=candidates[partial],
        new_counts=counts[partial],
        work=work,
        all_counts=counts,
    )


def gamma(
    graph: BipartiteGraph,
    left: np.ndarray,
    counters: Counters | None = None,
    *,
    universe: BitsetUniverse | None = None,
    left_mask: np.ndarray | None = None,
) -> np.ndarray:
    """``Γ(L)`` — the common V-neighborhood of all vertices in ``left``."""
    if universe is not None:
        # Every v ∈ Γ(L') with L' ⊆ L_r nonempty has a neighbor in L_r,
        # so the scan over the packed scope rows is exhaustive.
        if left_mask is None:
            left_mask = universe.mask_of_left_subset(left)
        size = bitset.popcount(left_mask)
        if size == 0:
            return np.arange(graph.n_v, dtype=np.int32)
        counts = bitset.count_rows_vs_mask(universe.rows, left_mask)
        if counters is not None:
            counters.charge_bitset(len(universe.scope), universe.n_words)
        return universe.scope[counts == size]
    if len(left) == 0:
        return np.arange(graph.n_v, dtype=np.int32)
    # Start from the smallest adjacency list to keep intermediates tight.
    degs = graph.degrees_u[np.asarray(left)]
    order = np.argsort(degs, kind="stable")
    acc = graph.neighbors_u(int(left[order[0]]))
    for i in order[1:]:
        nbrs = graph.neighbors_u(int(left[i]))
        if counters is not None:
            counters.charge(len(acc), len(nbrs))
        acc = sets.intersect(acc, nbrs)
        if len(acc) == 0:
            break
    return acc


def gamma_matches(
    graph: BipartiteGraph,
    left: np.ndarray,
    right_size: int,
    counters: Counters | None = None,
    *,
    universe: BitsetUniverse | None = None,
    left_mask: np.ndarray | None = None,
) -> bool:
    """Whether ``|Γ(left)| == right_size`` — the Alg. 2 maximality check.

    ``R' ⊆ Γ(L')`` always holds for nodes built by :func:`expand_node`, so
    equality of sizes is equality of sets.  In sorted mode the chain
    aborts as soon as ``|Γ|`` drops below ``right_size``; in bitset mode
    (``universe`` given) it is a single batched popcount over the task's
    packed scope rows.
    """
    if universe is not None:
        if left_mask is None:
            left_mask = universe.mask_of_left_subset(left)
        size = bitset.popcount(left_mask)
        if size == 0:
            return right_size == graph.n_v
        counts = bitset.count_rows_vs_mask(universe.rows, left_mask)
        if counters is not None:
            counters.charge_bitset(len(universe.scope), universe.n_words)
        return int(np.count_nonzero(counts == size)) == right_size
    if len(left) == 0:
        return right_size == graph.n_v
    # Seed the chain from the smallest adjacency list (cheapest pivot),
    # then sweep the rest in natural order with early abort.
    degs = graph.degrees_u[left]
    first = int(np.argmin(degs))
    acc = graph.neighbors_u(int(left[first]))
    if len(acc) < right_size:
        return False
    for i in range(len(left)):
        if i == first:
            continue
        nbrs = graph.neighbors_u(int(left[i]))
        if counters is not None:
            counters.charge(len(acc), len(nbrs))
        acc = sets.intersect(acc, nbrs)
        if len(acc) < right_size:
            return False
    return len(acc) == right_size
