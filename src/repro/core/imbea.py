"""iMBEA — MBEA with vertex ordering and batch absorption (Zhang et al.).

Improvements over plain MBEA, per the original paper:

1. V is sorted by ascending degree before enumeration, and inside each
   node candidates are traversed smallest-local-neighborhood first, which
   keeps early subtrees shallow;
2. when a branch does not shrink ``L`` (``L' == L``), the branch subsumes
   its parent: the traversed vertex is absorbed into ``R`` in place
   instead of forking a sibling subtree.
"""

from __future__ import annotations

from ..graph.bipartite import BipartiteGraph
from .bicliques import BicliqueSink, EnumerationResult
from .engine import EngineOptions
from .runner import run_baseline

__all__ = ["imbea"]

_OPTIONS = EngineOptions(order="count_asc", absorb_equal_left=True, nls_prune=False)


def imbea(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    relabel: bool = True,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with the iMBEA baseline."""
    return run_baseline(graph, sink, _OPTIONS, order="degree", relabel=relabel)
