"""Size-constrained maximal biclique enumeration.

The (p, q)-setting the paper cites for GNN aggregation (Yang et al.,
VLDB J. 2023): report only maximal bicliques with ``|L| ≥ p`` and
``|R| ≥ q``.  Filtering after a full enumeration is correct but wasteful
— on fraud-style workloads almost all maximal bicliques are tiny.  This
wrapper pushes both bounds into the search (see
:class:`repro.core.engine.EngineOptions`): subtrees whose ``L`` already
shrank below ``p``, or whose ``R ∪ C`` cannot reach ``q``, are cut.

The result is exactly ``{maximal bicliques B : |B.left| ≥ p, |B.right| ≥ q}``
— maximality remains *global* (w.r.t. the whole graph), matching the
filtered semantics.
"""

from __future__ import annotations

from ..graph.bipartite import BipartiteGraph
from .bicliques import BicliqueSink, EnumerationResult
from .engine import EngineOptions
from .runner import run_baseline

__all__ = ["constrained_mbe"]


def constrained_mbe(
    graph: BipartiteGraph,
    min_left: int,
    min_right: int,
    sink: BicliqueSink | None = None,
    *,
    relabel: bool = True,
    core_reduce: bool = True,
) -> EnumerationResult:
    """Enumerate maximal bicliques with ``|L| ≥ min_left``, ``|R| ≥ min_right``.

    Parameters
    ----------
    core_reduce:
        First shrink the graph to its (min_right, min_left)-core (see
        :func:`repro.graph.cores.core_subgraph`): the constrained
        maximal bicliques of the core and of the full graph coincide, so
        this is a pure speedup on skewed inputs.

    Notes
    -----
    Bounds apply in the *caller's* orientation (left = U side of the
    input); the §5 side-selection swap is handled internally.
    """
    if min_left < 1 or min_right < 1:
        raise ValueError("size bounds must be at least 1")

    if core_reduce and (min_left > 1 or min_right > 1):
        from ..graph.cores import core_subgraph

        core, u_ids, v_ids = core_subgraph(graph, min_right, min_left)
        if core.n_edges == 0:
            return EnumerationResult(n_maximal=0)
        if sink is None:
            mapped_sink = None
        else:

            def mapped_sink(left, right):
                sink(u_ids[left], v_ids[right])

        return constrained_mbe(
            core,
            min_left,
            min_right,
            mapped_sink,
            relabel=relabel,
            core_reduce=False,
        )

    # The engine's L/R follow the *prepared* orientation; if preparation
    # swaps sides, the caller's (min_left, min_right) swap too.
    swapped = graph.n_u < graph.n_v
    eff_left, eff_right = (min_right, min_left) if swapped else (min_left, min_right)
    options = EngineOptions(
        order="count_asc",
        absorb_equal_left=True,
        nls_prune=True,
        min_left=eff_left,
        min_right=eff_right,
    )
    return run_baseline(graph, sink, options, order="degree", relabel=relabel)
