"""Common run wrapper shared by the serial CPU baselines.

Each baseline = preprocessing choice + :class:`EngineOptions`.  The
wrapper prepares the graph, runs the engine, and (by default) relabels
reported bicliques back to the caller's original vertex ids so results
are directly comparable across algorithms and against the oracle.
"""

from __future__ import annotations

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..graph.preprocess import prepare
from .bicliques import BicliqueSink, Counters, EnumerationResult
from .engine import EngineOptions, run_engine

__all__ = ["run_baseline", "relabeling_sink"]


def relabeling_sink(prepared, sink: BicliqueSink) -> BicliqueSink:
    """Wrap ``sink`` so it receives bicliques in input-graph labels."""

    def _wrapped(left: np.ndarray, right: np.ndarray) -> None:
        l_in, r_in = prepared.biclique_to_input_labels(left, right)
        sink(l_in, r_in)

    return _wrapped


def run_baseline(
    graph: BipartiteGraph,
    sink: BicliqueSink | None,
    options: EngineOptions,
    *,
    order: str = "degree",
    relabel: bool = True,
) -> EnumerationResult:
    """Prepare ``graph``, run the engine, and package the result."""
    from .bicliques import BicliqueCounter

    prepared = prepare(graph, order=order)
    counting = BicliqueCounter()
    if sink is None:
        effective: BicliqueSink = counting
    else:
        inner = relabeling_sink(prepared, sink) if relabel else sink

        def _tee(left: np.ndarray, right: np.ndarray) -> None:
            counting(left, right)
            inner(left, right)

        effective = _tee
    counters = Counters()
    run_engine(prepared.graph, effective, options, counters)
    return EnumerationResult(n_maximal=counting.count, counters=counters)
