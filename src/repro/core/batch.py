"""Cross-task batched execution of dense (bitset-backend) subtrees.

PR 1 made a *single* task word-parallel: one packed AND + popcount per
node expansion.  But the simulator's real wall-clock cost is Python
interpreter overhead, and every task still pays its own round of
``intersect``/``gamma``/maximality calls.  The GPU papers amortize
exactly this — GMBE (SC 2023) keeps many dense tasks in flight per SM,
cuMBE (arXiv:2401.05039) batches candidate pruning across warps — so
this module is the numpy analog: ``k`` same-depth dense tasks are
stacked into rectangular ``uint64`` arrays and their DFS traversals run
in *lockstep*, one ``(k·S, W)`` bitwise-AND + popcount per round instead
of ``k`` Python-level call chains.

The batched runner (:func:`run_batch`) is a bit-exact re-implementation
of :class:`repro.gmbe.node_buffer.NodeBuffer` driven by
:func:`repro.gmbe.host.run_task_with_node_buffer`: identical traversal
order, identical emissions (same arrays, same order per task), and
identical per-task :class:`~repro.core.bicliques.Counters` charges.
Cost charging stays *per logical task* — each member is charged with its
own true ``n_words``/scope size exactly as the sequential path would be
— so simulated-cycle figures, checkpoints, fault injection, and
telemetry phase attribution are unaffected by batching (DESIGN.md §10).

Primitives (:func:`batch_intersect`, :func:`batch_popcount`,
:func:`batch_subset_mask`, :func:`ragged_stack`/:func:`ragged_split`)
are exposed separately: the kernel's batched maximality check and the
tests build on them, and they are the natural substrate for a later
numba/cython backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .bicliques import Counters
from .bitset import BitsetUniverse, from_sorted, popcount_words, to_sorted

__all__ = [
    "BatchMember",
    "BatchStats",
    "batch_gamma_matches",
    "batch_intersect",
    "batch_popcount",
    "batch_subset_mask",
    "ragged_split",
    "ragged_stack",
    "run_batch",
]

#: Candidate-state sentinel for "still a candidate" — mirrors
#: :data:`repro.gmbe.node_buffer.INF_DEPTH`.
_INF = np.iinfo(np.int64).max
#: Padding state for slots beyond a member's real candidate count; acts
#: like a permanently excluded root-level candidate (never INF, never
#: matches any depth marker ≥ 1 or ≤ -2).
_PAD = -1


# ----------------------------------------------------------------------
# Stacked-bitset primitives
# ----------------------------------------------------------------------
def batch_intersect(
    rows: np.ndarray, masks: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Word-wise ``rows & masks`` with broadcasting — the one bulk AND
    that replaces ``n_tasks`` per-task intersections."""
    return np.bitwise_and(rows, masks, out=out)


def batch_popcount(words: np.ndarray) -> np.ndarray:
    """Set-bit counts over the last (word) axis of a stacked array.

    ``(…, n_words) uint64 → (…,) int64`` — the batched form of
    :func:`repro.core.bitset.popcount`.
    """
    return popcount_words(words).sum(axis=-1, dtype=np.int64)


def batch_subset_mask(rows: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Per-row boolean: is ``rows[i]`` a subset of ``masks[i]``?

    ``masks`` broadcasts against ``rows`` over the leading axes.
    """
    sub = np.bitwise_and(rows, np.bitwise_not(masks))
    return ~np.any(sub != 0, axis=-1)


def ragged_stack(
    blocks: list[np.ndarray], n_words: int
) -> tuple[np.ndarray, np.ndarray]:
    """Gather per-task ``(r_i, w_i)`` row blocks into one ``(Σr, n_words)``
    matrix (rows zero-padded to the common word count).

    Returns ``(stacked, lengths)``; :func:`ragged_split` is the inverse
    scatter.
    """
    lengths = np.array([len(b) for b in blocks], dtype=np.int64)
    total = int(lengths.sum())
    stacked = np.zeros((total, n_words), dtype=np.uint64)
    at = 0
    for block in blocks:
        if len(block):
            stacked[at : at + len(block), : block.shape[1]] = block
            at += len(block)
    return stacked, lengths


def ragged_split(flat: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
    """Scatter a stacked result back into per-task views (inverse of
    :func:`ragged_stack` along the row axis)."""
    return np.split(flat, np.cumsum(lengths)[:-1])


def batch_gamma_matches(
    universes: list[BitsetUniverse],
    lefts: list[np.ndarray],
    right_sizes: list[int],
    counters: list[Counters],
) -> list[bool]:
    """Batched ``|Γ(L)| == |R|`` over several tasks' packed scopes.

    One stacked AND + popcount over every task's scope rows replaces the
    per-task :func:`repro.core.expand.gamma_matches` calls made at split-
    child dequeue.  Each task is charged exactly as the sequential check
    would charge it (``charge_bitset(len(scope), n_words)``); every
    ``L`` must be nonempty (split children always are).
    """
    n_words = max(u.n_words for u in universes)
    stacked, lengths = ragged_stack([u.rows for u in universes], n_words)
    masks = np.zeros((len(universes), n_words), dtype=np.uint64)
    for i, (u, left) in enumerate(zip(universes, lefts)):
        masks[i, : u.n_words] = u.mask_of_left_subset(left)
    sizes = batch_popcount(masks)
    counts = batch_popcount(
        batch_intersect(stacked, np.repeat(masks, lengths, axis=0))
    )
    out: list[bool] = []
    for i, per_task in enumerate(ragged_split(counts, lengths)):
        counters[i].charge_bitset(len(universes[i].scope), universes[i].n_words)
        n_match = int(np.count_nonzero(per_task == sizes[i]))
        out.append(n_match == int(right_sizes[i]))
    return out


# ----------------------------------------------------------------------
# Lockstep batched DFS
# ----------------------------------------------------------------------
@dataclass
class BatchMember:
    """One dense task joining a lockstep round: the same fields
    :func:`repro.gmbe.host.run_task_with_node_buffer` consumes, plus the
    sink and counters the sequential path would have used."""

    universe: BitsetUniverse
    left: np.ndarray
    right: np.ndarray
    cands: np.ndarray
    counts: np.ndarray
    counters: Counters
    sink: Callable[[np.ndarray, np.ndarray], None]


@dataclass
class BatchStats:
    """Per-run batching statistics (telemetry feed; ``None`` when
    telemetry is off so the hot loop pays one ``is not None`` check)."""

    rounds: int = 0
    tasks_per_round: list[int] = field(default_factory=list)


def run_batch(
    members: list[BatchMember],
    *,
    prune: bool = True,
    stats: BatchStats | None = None,
) -> None:
    """Enumerate every member's subtree in vectorized lockstep.

    Emissions (per task, in traversal order) and per-task ``Counters``
    charges are bit-identical to running each member through
    :func:`repro.gmbe.host.run_task_with_node_buffer` alone; only the
    Python-level work is amortized across the batch.
    """
    live = [m for m in members if len(m.cands)]
    if not live:
        return
    k = len(live)
    w_per = np.array([m.universe.n_words for m in live], dtype=np.int64)
    s_per = np.array([len(m.universe.scope) for m in live], dtype=np.int64)
    c_per = np.array([len(m.cands) for m in live], dtype=np.int64)
    w_max = int(w_per.max())
    s_max = int(s_per.max())
    c_max = int(c_per.max())
    # Depth never exceeds min(|L|, |C|): every push strictly shrinks L
    # (traversed candidates are partial) and consumes one candidate.
    d_per = np.minimum(
        np.array([len(m.left) for m in live], dtype=np.int64), c_per
    )
    d_cap = int(d_per.max()) + 1

    # Stacked state, padded rectangular.  Padding rows/slots are inert:
    # zero scope rows count 0 < |L'| (L' nonempty at every push), and
    # padded candidate slots carry the _PAD state, never INF.
    scope_rows = np.zeros((k, s_max, w_max), dtype=np.uint64)
    cand_rows = np.zeros((k, c_max), dtype=np.int64)
    cand_vids = np.zeros((k, c_max), dtype=np.int32)
    cand_state = np.full((k, c_max), _PAD, dtype=np.int64)
    nls = np.zeros((k, c_max), dtype=np.int64)
    masks = np.zeros((k, d_cap + 1, w_max), dtype=np.uint64)
    nls_stack = np.zeros((k, d_cap + 1, c_max), dtype=np.int64)
    prune_stack = np.zeros((k, d_cap + 1, c_max), dtype=bool)
    trav_stack = np.zeros((k, d_cap + 1), dtype=np.int64)
    join_stack = np.zeros((k, d_cap + 1), dtype=np.int64)
    depth = np.zeros(k, dtype=np.int64)
    right_size = np.zeros(k, dtype=np.int64)
    uni_left: list[np.ndarray] = []
    right_root: list[np.ndarray] = []

    for t, m in enumerate(live):
        u = m.universe
        scope_rows[t, : s_per[t], : w_per[t]] = u.rows
        cand_rows[t, : c_per[t]] = u.row_index(m.cands)
        cand_vids[t, : c_per[t]] = m.cands
        cand_state[t, : c_per[t]] = _INF
        nls[t, : c_per[t]] = m.counts
        masks[t, 0, : w_per[t]] = from_sorted(
            u.left_positions(m.left), u.n_bits
        )
        right_size[t] = len(m.right)
        uni_left.append(u.left)
        right_root.append(np.asarray(m.right, dtype=np.int32))

    # Per-task accumulators, folded into each member's Counters at the
    # end — identical totals to the sequential path's incremental adds.
    acc_work = np.zeros(k, dtype=np.int64)
    acc_simt = np.zeros(k, dtype=np.int64)
    acc_nodes = np.zeros(k, dtype=np.int64)
    acc_maximal = np.zeros(k, dtype=np.int64)
    acc_nonmax = np.zeros(k, dtype=np.int64)
    acc_pruned = np.zeros(k, dtype=np.int64)
    acc_peak = np.zeros(k, dtype=np.int64)

    def pop_rows(rows: np.ndarray) -> None:
        """Vectorized :meth:`NodeBuffer.pop` over task rows ``rows``."""
        d = depth[rows]
        cs = cand_state[rows]
        # Candidates that joined R here, and exclusions made while this
        # node was active, become candidates again.
        lift = (cs == d[:, None]) | (cs == -(d + 1)[:, None])
        cs = np.where(lift, _INF, cs)
        # nls reverts to the parent's values (full-row snapshot of the
        # pre-push state — equivalent to the sequential undo log).
        nls[rows] = nls_stack[rows, d]
        # Traversed vertex leaves C at the parent; pruned siblings too.
        cs[np.arange(len(rows)), trav_stack[rows, d]] = -d
        pending = prune_stack[rows, d] & (cs == _INF)
        cs = np.where(pending, -d[:, None], cs)
        cand_state[rows] = cs
        acc_pruned[rows] += pending.sum(axis=1)
        right_size[rows] -= join_stack[rows, d]
        depth[rows] = d - 1

    active = np.ones(k, dtype=bool)
    while True:
        alive = np.nonzero(active)[0]
        if len(alive) == 0:
            break
        if stats is not None:
            stats.rounds += 1
            stats.tasks_per_round.append(len(alive))

        # Phase A — control flow: find each live task's next candidate
        # (Alg. 2 line #6), popping exhausted nodes until one is found
        # or the task finishes at the root.
        push_t: list[np.ndarray] = []
        push_i: list[np.ndarray] = []
        pending_rows = alive
        while len(pending_rows):
            is_inf = cand_state[pending_rows] == _INF
            has = is_inf.any(axis=1)
            takers = pending_rows[has]
            if len(takers):
                push_t.append(takers)
                push_i.append(np.argmax(is_inf[has], axis=1))
            rest = pending_rows[~has]
            if len(rest) == 0:
                break
            done = rest[depth[rest] == 0]
            active[done] = False
            pending_rows = rest[depth[rest] > 0]
            if len(pending_rows):
                pop_rows(pending_rows)
        if not push_t:
            continue
        P = np.concatenate(push_t)
        ci = np.concatenate(push_i)
        p = len(P)
        nd = depth[P] + 1

        # Phase B — batched push (Alg. 2 lines #8–14): one stacked AND +
        # popcount serves every task's node generation and maximality
        # check this round.
        vrow = cand_rows[P, ci]
        new_mask = masks[P, depth[P]] & scope_rows[P, vrow]
        masks[P, nd] = new_mask
        counts_scope = batch_popcount(scope_rows[P] & new_mask[:, None, :])
        n_left = batch_popcount(new_mask)
        counts = np.take_along_axis(counts_scope, cand_rows[P], axis=1)

        cs = cand_state[P]
        cur = cs == _INF
        cur_n = cur.sum(axis=1)
        old_nls = nls[P]
        nls_stack[P, nd] = old_nls

        full = cur & (counts == n_left[:, None])
        dropped = cur & (counts == 0)
        if prune:
            unchanged = cur & (counts == old_nls)
            unchanged[np.arange(p), ci] = False
            prune_stack[P, nd] = unchanged
        cs = np.where(full, nd[:, None], cs)
        cs = np.where(dropped, -(nd + 1)[:, None], cs)
        cand_state[P] = cs
        nls[P] = np.where(cur, counts, old_nls)
        trav_stack[P, nd] = ci
        joined = full.sum(axis=1)
        join_stack[P, nd] = joined
        right_size[P] += joined
        depth[P] = nd
        acc_nodes[P] += 1
        acc_peak[P] = np.maximum(acc_peak[P], nd)

        # Maximality: |Γ(L')| == |R'| over each task's true scope rows
        # (padded rows count 0 < n_left, so they never match).
        n_match = (counts_scope == n_left[:, None]).sum(axis=1)
        maximal = n_match == right_size[P]
        acc_maximal[P] += maximal
        acc_nonmax[P] += ~maximal

        # Per-task cost charges, identical to the sequential bitset path:
        # mask AND (1 row), candidate counting pass (cur_n rows), and the
        # maximality scan (scope rows) — each over the task's own words.
        w = w_per[P]
        acc_work[P] += w + cur_n * w + s_per[P] * w
        acc_simt[P] += (
            (w + 31) // 32
            + (cur_n * w + 31) // 32
            + (s_per[P] * w + 31) // 32
            + 3
        )

        # Phase C — report maximal nodes; non-maximal nodes are never
        # descended into (undone immediately, as in Alg. 2).
        for j in np.nonzero(maximal)[0]:
            t = int(P[j])
            m = live[t]
            left_ids = uni_left[t][to_sorted(new_mask[j, : w_per[t]])]
            st = cand_state[t]
            joined_vids = cand_vids[t][(st >= 1) & (st <= depth[t])]
            m.sink(
                left_ids,
                np.sort(np.concatenate([right_root[t], joined_vids])),
            )
        nonmax_rows = P[~maximal]
        if len(nonmax_rows):
            pop_rows(nonmax_rows)

    for t, m in enumerate(live):
        c = m.counters
        c.nodes_generated += int(acc_nodes[t])
        c.maximal += int(acc_maximal[t])
        c.non_maximal += int(acc_nonmax[t])
        c.pruned += int(acc_pruned[t])
        c.set_op_work += int(acc_work[t])
        c.simt_cycles += int(acc_simt[t])
        c.peak_stack_depth = max(c.peak_stack_depth, int(acc_peak[t]))
