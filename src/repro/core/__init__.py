"""Core MBE algorithms: the serial baselines (MBEA, iMBEA, PMBE, ooMBEA),
the parallel CPU baseline (ParMBE), their shared enumeration engine, and
the brute-force reference oracle."""

from .batch import (
    BatchMember,
    BatchStats,
    batch_gamma_matches,
    batch_intersect,
    batch_popcount,
    batch_subset_mask,
    ragged_split,
    ragged_stack,
    run_batch,
)
from .bicliques import (
    Biclique,
    BicliqueCollector,
    BicliqueCounter,
    BicliqueSink,
    BicliqueWriter,
    Counters,
    EnumerationResult,
    verify_biclique,
)
from .bitset import BitsetUniverse, resolve_backend
from .constrained import constrained_mbe
from .counting import codegree_histogram, count_bicliques_pq, count_butterflies
from .engine import EngineOptions, run_engine, run_subtree
from .imbea import imbea
from .localcount import LocalCounter, ragged_gather
from .maximum import OBJECTIVES, maximum_biclique
from .mbea import mbea
from .oombea import oombea
from .parmbe import parmbe
from .pmbe import pmbe
from .reference import maximal_biclique_count_reference, reference_mbe
from .tasks import RootTask, build_root_task

__all__ = [
    "BatchMember",
    "BatchStats",
    "Biclique",
    "BicliqueCollector",
    "BitsetUniverse",
    "batch_gamma_matches",
    "batch_intersect",
    "batch_popcount",
    "batch_subset_mask",
    "ragged_split",
    "ragged_stack",
    "resolve_backend",
    "run_batch",
    "BicliqueCounter",
    "BicliqueSink",
    "BicliqueWriter",
    "Counters",
    "EngineOptions",
    "EnumerationResult",
    "LocalCounter",
    "RootTask",
    "build_root_task",
    "codegree_histogram",
    "constrained_mbe",
    "count_bicliques_pq",
    "count_butterflies",
    "imbea",
    "OBJECTIVES",
    "maximal_biclique_count_reference",
    "maximum_biclique",
    "mbea",
    "oombea",
    "parmbe",
    "pmbe",
    "ragged_gather",
    "reference_mbe",
    "run_engine",
    "run_subtree",
    "verify_biclique",
]
