"""(p, q)-biclique counting — butterflies and beyond.

The paper cites (p,q)-biclique counting (Yang et al., VLDB J. 2023) as
an MBE-adjacent primitive: count every complete bipartite subgraph
``K_{p,q}`` (not necessarily maximal).  The ``(2,2)`` case is the
*butterfly count*, the standard bipartite clustering primitive.

Implementation notes:

- butterflies are counted via co-degrees: every U-pair with ``c``
  common neighbors carries ``C(c, 2)`` butterflies; co-degrees come
  from one vectorized wedge aggregation over the smaller side;
- general ``(p, q)`` enumerates combinations of ``p`` U-vertices from
  shared neighborhoods and adds ``C(|common|, q)``; combinations are
  pruned through the running common-neighborhood intersection, which
  keeps it practical for the small ``p`` used in applications.
"""

from __future__ import annotations

from math import comb

import numpy as np

from ..graph.bipartite import BipartiteGraph
from . import sets

__all__ = ["count_butterflies", "count_bicliques_pq", "codegree_histogram"]


def _wedge_codegrees(graph: BipartiteGraph) -> dict[tuple[int, int], int]:
    """Co-degree of every U-pair with ≥1 common neighbor.

    Iterates V-vertices and accumulates all U-pairs of each adjacency
    list — ``O(Σ deg(v)²)`` wedges, the standard butterfly-counting
    bound (process the side with the smaller wedge count in callers).
    """
    codeg: dict[tuple[int, int], int] = {}
    for v in range(graph.n_v):
        nbrs = graph.neighbors_v(v)
        n = len(nbrs)
        if n < 2:
            continue
        for i in range(n - 1):
            a = int(nbrs[i])
            for j in range(i + 1, n):
                key = (a, int(nbrs[j]))
                codeg[key] = codeg.get(key, 0) + 1
    return codeg


def codegree_histogram(graph: BipartiteGraph) -> dict[int, int]:
    """Histogram {co-degree -> number of U-pairs} (co-degree ≥ 1)."""
    hist: dict[int, int] = {}
    for c in _wedge_codegrees(graph).values():
        hist[c] = hist.get(c, 0) + 1
    return hist


def count_butterflies(graph: BipartiteGraph) -> int:
    """Number of butterflies (``K_{2,2}`` subgraphs).

    Counts from whichever side generates fewer wedges.
    """
    wedges_v = int(np.sum(graph.degrees_v.astype(np.int64) ** 2))
    wedges_u = int(np.sum(graph.degrees_u.astype(np.int64) ** 2))
    g = graph if wedges_v <= wedges_u else graph.swapped()
    return sum(comb(c, 2) for c in _wedge_codegrees(g).values())


def count_bicliques_pq(graph: BipartiteGraph, p: int, q: int) -> int:
    """Number of ``K_{p,q}`` subgraphs (``p`` on the U side).

    Exact; intended for small ``p`` (the combination side).  ``p`` and
    ``q`` must be ≥ 1.  ``(1, 1)`` counts edges; ``(2, 2)`` equals
    :func:`count_butterflies`.
    """
    if p < 1 or q < 1:
        raise ValueError("p and q must be at least 1")
    if p == 1:
        return sum(comb(int(d), q) for d in graph.degrees_u)
    if q == 1 and p > 1:
        # symmetric shortcut: K_{p,1} counted from the V side
        return sum(comb(int(d), p) for d in graph.degrees_v)
    if p == 2:
        return sum(comb(c, q) for c in _wedge_codegrees(graph).values())

    # General small-p case: extend U-sets through shared neighborhoods.
    total = 0
    eligible = [u for u in range(graph.n_u) if graph.degree_u(u) >= q]

    def extend(chosen_last: int, common: np.ndarray, depth: int) -> int:
        if depth == p:
            return comb(len(common), q)
        count = 0
        # Only U-vertices after chosen_last (combinations, not permutations)
        # that keep the common neighborhood at least q wide.
        candidates = np.unique(
            np.concatenate(
                [graph.neighbors_v(int(v)) for v in common]
            )
        ) if len(common) else np.empty(0, dtype=np.int64)
        for u in candidates:
            u = int(u)
            if u <= chosen_last or graph.degree_u(u) < q:
                continue
            new_common = sets.intersect(common, graph.neighbors_u(u))
            if len(new_common) >= q:
                count += extend(u, new_common, depth + 1)
        return count

    for u in eligible:
        total += extend(u, graph.neighbors_u(u), 1)
    return total
