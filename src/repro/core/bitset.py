"""Packed-bitset set kernels and per-task bitset universes.

Real GPU MBE implementations do not run sorted-array merges on dense
subproblems: cuMBE (arXiv:2401.05039) and GBC (arXiv:2403.07858) both
switch the induced subgraph of a root task to a packed bitmap so that
every intersection becomes a word-wide AND plus popcount.  This module is
the numpy analog: vertex sets over a small, task-scoped universe are
``uint64`` words (64 vertices per word), and the counting pass that
dominates node expansion collapses to one 2-D ``AND`` + ``popcount``
over a row matrix.

Scoping matters.  A :class:`BitsetUniverse` is built once per root task
at :func:`repro.core.tasks.build_root_task` time: its bit positions are
the task's ``L_r`` relabeled to the dense range ``[0, |L_r|)``, and it
stores one packed row ``N(v) ∩ L_r`` for every V vertex *in scope* —
every ``v`` with at least one neighbor in ``L_r``, plus ``v_s`` itself.
Because ``L' ⊆ L_r`` everywhere in the subtree, any ``v ∈ Γ(L')`` has a
neighbor in ``L_r``, so the scope is closed under every maximality check
the subtree will ever perform.

Cost-model note: these kernels are charged word-parallel
(:meth:`repro.core.bicliques.Counters.charge_bitset`) — a warp moves 32
words (= 2048 vertex slots) per step with no per-row divergence — which
is exactly why the bitmap representation wins on dense tasks and why the
simulator must account it differently from galloping merges.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "WORD_BITS",
    "BitsetUniverse",
    "and_",
    "andnot",
    "count_rows_vs_mask",
    "from_sorted",
    "n_words",
    "or_",
    "popcount",
    "popcount_rows",
    "popcount_words",
    "resolve_backend",
    "test_bits",
    "to_sorted",
]

#: Bits per packed word (one ``uint64``).
WORD_BITS = 64

_ONE = np.uint64(1)
_LITTLE = sys.byteorder == "little"

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    _popcount_u64 = np.bitwise_count
else:  # pragma: no cover - numpy 1.x fallback
    #: module-level byte-popcount table — built once at import, shared by
    #: every caller (single-task and batched paths alike)
    _BYTE_POP = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount_u64(words: np.ndarray) -> np.ndarray:
        bytes_ = words[..., None].view(np.uint8)
        return _BYTE_POP[bytes_].sum(axis=-1, dtype=np.uint64).reshape(words.shape)


#: Elementwise per-word popcount primitive (``np.bitwise_count`` on
#: numpy ≥ 2.0, a cached byte-LUT fallback otherwise).  Exported so the
#: batched path (:mod:`repro.core.batch`) reuses the exact same kernel
#: as the single-task helpers below.  Note the result dtype is ``uint8``
#: per word — reduce with an explicit ``dtype`` as done here.
popcount_words = _popcount_u64


def n_words(n_bits: int) -> int:
    """Words needed for a universe of ``n_bits`` positions (≥ 1 word)."""
    return max(1, (int(n_bits) + WORD_BITS - 1) // WORD_BITS)


def from_sorted(positions: np.ndarray, n_bits: int) -> np.ndarray:
    """Pack sorted (or any duplicate-free) positions into a word array."""
    words = np.zeros(n_words(n_bits), dtype=np.uint64)
    pos = np.asarray(positions, dtype=np.int64)
    if len(pos):
        np.bitwise_or.at(
            words, pos >> 6, _ONE << (pos & 63).astype(np.uint64)
        )
    return words


def to_sorted(words: np.ndarray, dtype=np.int64) -> np.ndarray:
    """Unpack a word array back to sorted ascending bit positions."""
    u8 = words if _LITTLE else words.byteswap()
    bits = np.unpackbits(u8.view(np.uint8), bitorder="little")
    return np.nonzero(bits)[0].astype(dtype, copy=False)


def and_(a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Word-wise ``a & b`` (set intersection)."""
    return np.bitwise_and(a, b, out=out)


def or_(a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Word-wise ``a | b`` (set union)."""
    return np.bitwise_or(a, b, out=out)


def andnot(a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Word-wise ``a & ~b`` (set difference)."""
    return np.bitwise_and(a, np.bitwise_not(b), out=out)


def popcount(words: np.ndarray) -> int:
    """Total set bits (``|set|``) of a mask of any shape."""
    return int(_popcount_u64(words).sum())


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a ``(rows, n_words)`` matrix."""
    return _popcount_u64(matrix).sum(axis=-1, dtype=np.int64)


def count_rows_vs_mask(rows: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``|row_i ∩ mask|`` for every packed row — the batched replacement
    for :meth:`repro.core.localcount.LocalCounter.counts` in bitset mode."""
    return popcount_rows(rows & mask)


def test_bits(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``positions`` are set in ``words``."""
    pos = np.asarray(positions, dtype=np.int64)
    if len(pos) == 0:
        return np.zeros(0, dtype=bool)
    return (words[pos >> 6] >> (pos & 63).astype(np.uint64)) & _ONE != 0


def resolve_backend(
    setting: str,
    n_left: int,
    n_cands: int,
    n_scope: int,
    scope_degree_total: int,
) -> str:
    """Pick ``"sorted"`` or ``"bitset"`` for one root task.

    The ``"auto"`` rule mirrors cuMBE's density switch: a sorted counting
    pass gathers the full adjacency of every in-scope vertex
    (``scope_degree_total`` elements), while a bitset pass touches
    ``n_scope · ceil(|L_r|/64)`` words.  Whenever the packed pass moves
    less data the task is dense enough for the bitmap to win.  Tasks
    with no candidates never expand a node, so there is no pass to
    amortize the universe build against — they stay sorted.
    """
    if setting != "auto":
        return setting
    if n_left == 0 or n_scope == 0 or n_cands == 0:
        return "sorted"
    return (
        "bitset"
        if scope_degree_total >= n_scope * n_words(n_left)
        else "sorted"
    )


class BitsetUniverse:
    """Packed view of one root task's induced subgraph (see module docs).

    Attributes
    ----------
    left:
        Sorted global U ids of ``L_r`` — bit position ``i`` is
        ``left[i]``.
    scope:
        Sorted global V ids with a packed row here: every vertex with a
        neighbor in ``L_r``, plus the task's ``v_s``.
    rows:
        ``(len(scope), n_words)`` uint64 matrix; row ``j`` packs
        ``N(scope[j]) ∩ L_r`` over the local positions.
    """

    __slots__ = ("left", "scope", "rows", "n_bits", "n_words")

    def __init__(self, left: np.ndarray, scope: np.ndarray, rows: np.ndarray) -> None:
        self.left = left
        self.scope = scope
        self.rows = rows
        self.n_bits = len(left)
        self.n_words = rows.shape[1] if rows.ndim == 2 else n_words(len(left))

    @staticmethod
    def build(graph, left: np.ndarray, scope: np.ndarray) -> "BitsetUniverse":
        """Pack ``N(v) ∩ left`` for every ``v`` in ``scope``.

        One ragged gather over the scope adjacency — the same order of
        work as a single sorted counting pass, amortized over the whole
        subtree.  The bits are set through a dense boolean staging
        matrix + ``packbits`` (vectorized; the matrix is task-scoped and
        tiny compared to the graph).
        """
        from .localcount import ragged_gather

        left = np.asarray(left)
        scope = np.asarray(scope)
        nb = len(left)
        nw = n_words(nb)
        if nb == 0 or len(scope) == 0:
            return BitsetUniverse(
                left, scope, np.zeros((len(scope), nw), dtype=np.uint64)
            )
        flat, lengths = ragged_gather(
            graph.v_indptr, graph.v_indices, scope.astype(np.int64)
        )
        idx = np.searchsorted(left, flat)
        idx_c = np.minimum(idx, nb - 1)
        hit = left[idx_c] == flat
        row_ids = np.repeat(np.arange(len(scope), dtype=np.int64), lengths)[hit]
        dense = np.zeros((len(scope), nw * WORD_BITS), dtype=bool)
        dense[row_ids, idx_c[hit]] = True
        packed = np.packbits(dense, axis=1, bitorder="little")
        if not _LITTLE:  # pragma: no cover - big-endian hosts
            rows = packed.view(np.uint64).byteswap()
        else:
            rows = packed.view(np.uint64)
        return BitsetUniverse(left, scope, np.ascontiguousarray(rows))

    # ------------------------------------------------------------------
    def left_positions(self, u_ids: np.ndarray) -> np.ndarray:
        """Local bit positions of global U ids (must all be in ``left``)."""
        return np.searchsorted(self.left, np.asarray(u_ids, dtype=self.left.dtype))

    def row_index(self, v_ids: np.ndarray) -> np.ndarray:
        """Row indices of global V ids (must all be in ``scope``)."""
        return np.searchsorted(self.scope, np.asarray(v_ids, dtype=self.scope.dtype))

    def mask_of_left_subset(self, u_ids: np.ndarray) -> np.ndarray:
        """Packed mask of a subset of ``left`` given as global U ids."""
        return from_sorted(self.left_positions(u_ids), self.n_bits)

    def left_ids(self, mask: np.ndarray) -> np.ndarray:
        """Sorted global U ids of a packed mask."""
        return self.left[to_sorted(mask)]

    def row(self, v_id: int) -> np.ndarray:
        """Packed ``N(v_id) ∩ L_r`` for a single in-scope V vertex."""
        return self.rows[int(self.row_index(np.asarray([v_id]))[0])]

    def memory_words(self) -> int:
        """Modeled GPU words held by the packed rows + id arrays."""
        return int(self.rows.size) + len(self.left) + len(self.scope)
