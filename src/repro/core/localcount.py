"""Vectorized local-neighborhood counting.

The inner loop of every MBE node expansion is: *for each candidate
``v_c ∈ C``, how many vertices of ``N(v_c)`` fall inside the current
``L``?*  (the paper's *local neighborhood size*, §4.2).  Done naively this
is ``|C|`` separate set intersections; done here it is one ragged CSR
gather plus a ``reduceat`` — the numpy equivalent of the warp-parallel
counting a GPU performs, and the main reason the Python reproduction can
enumerate tens of thousands of bicliques per second.

The membership test uses a *version-stamped* array over U: marking ``L``
costs ``O(|L|)`` and never needs clearing, so per-node overhead stays
proportional to actual work.
"""

from __future__ import annotations

import numpy as np

from ..graph.bipartite import BipartiteGraph

__all__ = ["LocalCounter", "ragged_gather"]


def ragged_gather(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR rows ``rows`` into one flat array.

    Returns ``(flat, lengths)`` where ``flat`` is the concatenation of
    ``indices[indptr[r]:indptr[r+1]]`` for each ``r`` in order and
    ``lengths[i]`` is the length of row ``rows[i]``.
    """
    starts = indptr[rows]
    lengths = (indptr[rows + 1] - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), lengths
    # Standard ragged-range construction: for each row an arithmetic ramp
    # starting at `starts[i]`, all packed into one flat index vector.
    offsets = np.cumsum(lengths) - lengths
    flat_pos = np.arange(total, dtype=np.int64)
    flat_pos += np.repeat(starts - offsets, lengths)
    return indices[flat_pos], lengths


class LocalCounter:
    """Counts ``|N(v_c) ∩ L|`` for whole candidate batches at once.

    One instance is bound to a graph side; it owns the stamp array over
    that side's *opposite* vertices (the members of ``L``).
    """

    def __init__(self, graph: BipartiteGraph) -> None:
        self._graph = graph
        self._stamp = np.zeros(graph.n_u, dtype=np.int64)
        self._version = 0
        self._l_size = 0

    def set_left(self, left: np.ndarray) -> None:
        """Declare the current ``L`` (array of U vertices)."""
        self._version += 1
        self._stamp[left] = self._version
        self._l_size = len(left)

    @property
    def left_size(self) -> int:
        return self._l_size

    def counts(
        self, candidates: np.ndarray, counters=None
    ) -> tuple[np.ndarray, int]:
        """``|N(v_c) ∩ L|`` for every candidate, plus total gathered work.

        The second return value is the summed adjacency length — the raw
        work the SIMT cost model charges for this pass.  When ``counters``
        is given, the pass is charged to it as a ragged warp operation.
        """
        g = self._graph
        if len(candidates) == 0:
            return np.empty(0, dtype=np.int64), 0
        flat, lengths = ragged_gather(g.v_indptr, g.v_indices, candidates)
        if counters is not None:
            counters.charge_ragged(lengths)
        if len(flat) == 0:
            return np.zeros(len(candidates), dtype=np.int64), 0
        hits = self._stamp[flat] == self._version
        # Segment sums via prefix-sum differencing: robust to zero-length
        # rows, unlike np.add.reduceat.
        csum = np.zeros(len(flat) + 1, dtype=np.int64)
        np.cumsum(hits, out=csum[1:])
        ends = np.cumsum(lengths)
        counts = csum[ends] - csum[ends - lengths]
        return counts, int(len(flat))

    def counts_vs_mask(
        self, universe, cand_rows: np.ndarray, mask: np.ndarray, counters=None
    ) -> tuple[np.ndarray, int]:
        """Bitset-mode :meth:`counts`: ``|N(v_c) ∩ L'|`` per candidate row.

        ``universe`` is the task's :class:`repro.core.bitset.BitsetUniverse`,
        ``cand_rows`` the candidates' row indices into it, and ``mask`` the
        packed ``L'``.  Returns the same integers as :meth:`counts` on the
        equivalent sorted inputs; the work term and the ``counters`` charge
        are in packed words (word-parallel AND + popcount, no ragged
        divergence).
        """
        from . import bitset

        if len(cand_rows) == 0:
            return np.empty(0, dtype=np.int64), 0
        counts = bitset.count_rows_vs_mask(universe.rows[cand_rows], mask)
        if counters is not None:
            counters.charge_bitset(len(cand_rows), universe.n_words)
        return counts, int(len(cand_rows)) * universe.n_words

    def membership(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``vertices`` (U side) are in ``L``."""
        return self._stamp[vertices] == self._version
