"""Maximum biclique search (branch-and-bound).

The paper's intro cites maximum biclique search at billion scale (Lyu
et al., VLDB 2020) as a sibling problem: find *one* biclique maximizing
an objective instead of enumerating all maximal ones.  Since the
maximum biclique is always a maximal biclique, the MBE enumeration tree
is a complete search space for it; this module adds the two
branch-and-bound ingredients that make the search practical:

- an **upper bound** per subtree — ``|L'|`` can only shrink and ``|R|``
  is capped by ``|R'| + |C'|``, so e.g. the edge objective is bounded by
  ``|L'| · (|R'| + |C'|)``;
- **big-first ordering** — expanding the candidate with the largest
  local neighborhood first finds strong incumbents early, which makes
  the bound bite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..graph.preprocess import prepare
from . import sets
from .bicliques import Biclique, Counters, EnumerationResult
from .expand import expand_node, gamma_matches
from .localcount import LocalCounter

__all__ = ["maximum_biclique", "OBJECTIVES"]

#: objective name -> (score(l_size, r_size), bound(l_size, r_size, c_size))
OBJECTIVES: dict[str, tuple[Callable[[int, int], float], Callable[[int, int, int], float]]] = {
    "edges": (
        lambda l, r: l * r,
        lambda l, r, c: l * (r + c),
    ),
    "vertices": (
        lambda l, r: l + r,
        lambda l, r, c: l + r + c,
    ),
    "balanced": (
        lambda l, r: min(l, r),
        lambda l, r, c: min(l, r + c),
    ),
}


def maximum_biclique(
    graph: BipartiteGraph,
    *,
    objective: str = "edges",
    min_left: int = 1,
    min_right: int = 1,
) -> tuple[Biclique | None, EnumerationResult]:
    """Find a biclique maximizing ``objective``.

    Parameters
    ----------
    objective:
        ``"edges"`` (``|L|·|R|``, the classic maximum biclique),
        ``"vertices"`` (``|L| + |R|``) or ``"balanced"`` (``min(|L|,|R|)``).
    min_left, min_right:
        Feasibility bounds in the input orientation (rows = left).

    Returns
    -------
    (best, result):
        The best biclique in input labels (``None`` if none satisfies
        the bounds) and an :class:`EnumerationResult` whose counters
        describe the pruned search.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
        )
    if min_left < 1 or min_right < 1:
        raise ValueError("size bounds must be at least 1")
    score_fn, bound_fn = OBJECTIVES[objective]

    prepared = prepare(graph, order="degree")
    g = prepared.graph
    if prepared.swapped:
        min_left, min_right = min_right, min_left
    counters = Counters()
    counter = LocalCounter(g)

    best_score = -1.0
    best: tuple[np.ndarray, np.ndarray] | None = None

    def consider(left: np.ndarray, right: np.ndarray) -> None:
        nonlocal best_score, best
        if len(left) < min_left or len(right) < min_right:
            return
        s = score_fn(len(left), len(right))
        if s > best_score:
            best_score = s
            best = (left, right)

    if g.n_edges:
        left0 = np.arange(g.n_u, dtype=np.int32)
        degs = g.degrees_v
        cands0 = np.nonzero(degs > 0)[0].astype(np.int32)
        counts0 = degs[cands0].astype(np.int64)
        stack = [(left0, sets.EMPTY, cands0, counts0)]
        while stack:
            l_cur, r_cur, c_cur, n_cur = stack.pop()
            if len(c_cur) == 0:
                continue
            if bound_fn(len(l_cur), len(r_cur), len(c_cur)) <= best_score:
                counters.pruned += 1
                continue
            # big-first: branch on the strongest candidate.
            pick = int(np.argmax(n_cur))
            v_prime = int(c_cur[pick])
            rest = np.delete(c_cur, pick)
            rest_n = np.delete(n_cur, pick)
            ordered = np.concatenate([[v_prime], rest]).astype(c_cur.dtype)
            exp = expand_node(g, counter, l_cur, v_prime, ordered, counters)
            counters.nodes_generated += 1
            new_right_size = len(r_cur) + len(exp.absorbed)
            # Parent continuation (minus the §4.2-pruned siblings).
            assert exp.all_counts is not None
            changed = exp.all_counts[1:] != rest_n
            counters.pruned += int(len(rest) - np.count_nonzero(changed))
            cont_c = rest[changed]
            if len(cont_c):
                stack.append((l_cur, r_cur, cont_c, rest_n[changed]))
            if len(exp.left) < min_left:
                continue
            if bound_fn(len(exp.left), new_right_size, len(exp.new_candidates)) <= best_score:
                counters.pruned += 1
                continue
            maximal = gamma_matches(g, exp.left, new_right_size, counters)
            if maximal:
                counters.maximal += 1
                new_right = sets.union(r_cur, exp.absorbed)
                consider(exp.left, new_right)
                if len(exp.new_candidates):
                    stack.append(
                        (exp.left, new_right, exp.new_candidates, exp.new_counts)
                    )
            else:
                counters.non_maximal += 1

    result = EnumerationResult(
        n_maximal=1 if best is not None else 0, counters=counters
    )
    if best is None:
        return None, result
    l_in, r_in = prepared.biclique_to_input_labels(best[0], best[1])
    return Biclique.make(l_in, r_in), result
