"""Brute-force reference oracle for maximal biclique enumeration.

Enumerates the powerset of the smaller side and keeps closed, maximal
pairs.  Exponential — usable only for graphs with ≤ ~20 vertices on one
side — but trivially correct, which makes it the ground truth every real
algorithm is tested against.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..graph.bipartite import BipartiteGraph
from . import sets
from .bicliques import Biclique

__all__ = ["reference_mbe", "maximal_biclique_count_reference"]

_MAX_SIDE = 22


def reference_mbe(graph: BipartiteGraph) -> set[Biclique]:
    """All maximal bicliques of ``graph`` via closure of every R ⊆ V.

    Uses the closure characterization: (L, R) is a maximal biclique iff
    ``L = Γ(R)`` and ``R = Γ(L)`` with both non-empty.  Enumerating all
    non-empty subsets R of the smaller side and closing twice yields every
    maximal biclique (deduplicated by the closure).
    """
    g = graph if graph.n_v <= graph.n_u else graph.swapped()
    swapped = g is not graph
    if g.n_v > _MAX_SIDE:
        raise ValueError(
            f"reference oracle limited to |V| <= {_MAX_SIDE}, got {g.n_v}"
        )
    all_u = np.arange(g.n_u, dtype=np.int32)
    found: set[Biclique] = set()
    vertices = list(range(g.n_v))
    for k in range(1, g.n_v + 1):
        for combo in combinations(vertices, k):
            r = np.asarray(combo, dtype=np.int32)
            l_closed = all_u
            for v in r:
                l_closed = sets.intersect(l_closed, g.neighbors_v(int(v)))
                if len(l_closed) == 0:
                    break
            if len(l_closed) == 0:
                continue
            r_closed = g.neighbors_u(int(l_closed[0]))
            for u in l_closed[1:]:
                r_closed = sets.intersect(r_closed, g.neighbors_u(int(u)))
            if len(r_closed) != len(r) or not np.array_equal(r_closed, r):
                continue  # R not closed -> this subset is not the canonical R
            if swapped:
                found.add(Biclique.make(r, l_closed))
            else:
                found.add(Biclique.make(l_closed, r))
    return found


def maximal_biclique_count_reference(graph: BipartiteGraph) -> int:
    """Count of maximal bicliques via the brute-force oracle."""
    return len(reference_mbe(graph))
