"""Parallel-execution substrates: the simulated multi-core pool used for
ParMBE timing, a real thread-pool runner for host-parallel execution, and
the persistent worker pool backing the enumeration service."""

from .pool import run_tasks_threaded
from .simpool import PoolSchedule, schedule_tasks
from .workers import WorkerPool

__all__ = ["PoolSchedule", "WorkerPool", "run_tasks_threaded", "schedule_tasks"]
