"""Parallel-execution substrates: the simulated multi-core pool used for
ParMBE timing, a real thread-pool runner for host-parallel execution, the
persistent worker pool backing the enumeration service, and the supervised
process pool backing crash-isolated shard execution."""

from .pool import run_tasks_threaded
from .procpool import (
    PoolBrokenError,
    ProcessWorkerPool,
    RemoteTaskError,
    Supervisor,
    SupervisorPolicy,
    WorkerCrashError,
    WorkerHungError,
    set_heartbeat_aux_provider,
)
from .simpool import PoolSchedule, schedule_tasks
from .workers import WorkerPool

__all__ = [
    "PoolBrokenError",
    "PoolSchedule",
    "ProcessWorkerPool",
    "RemoteTaskError",
    "Supervisor",
    "SupervisorPolicy",
    "WorkerCrashError",
    "WorkerHungError",
    "WorkerPool",
    "run_tasks_threaded",
    "schedule_tasks",
    "set_heartbeat_aux_provider",
]
