"""Parallel-execution substrates: the simulated multi-core pool used for
ParMBE timing and a real thread-pool runner for host-parallel execution."""

from .pool import run_tasks_threaded
from .simpool import PoolSchedule, schedule_tasks

__all__ = ["PoolSchedule", "run_tasks_threaded", "schedule_tasks"]
