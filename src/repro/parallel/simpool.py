"""Simulated multi-core execution pool.

The paper benchmarks ParMBE on a 96-core machine; this host may have one
core, so wall-clock speedups are reproduced through a deterministic
list-scheduling model instead: tasks with known costs are assigned
greedily to the first free core (the steady-state behaviour of a
work-stealing runtime).  The resulting makespan, per-core loads, and a
busy-core timeline let the benchmarks report CPU-side parallel numbers in
the same simulated-time units as the GPU simulator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["PoolSchedule", "schedule_tasks"]


@dataclass
class PoolSchedule:
    """Outcome of scheduling a task list onto ``n_workers`` cores."""

    n_workers: int
    makespan: float
    core_loads: list[float]
    #: ``(start, end, core, task_index)`` per task, in completion order.
    intervals: list[tuple[float, float, int, int]] = field(repr=False, default_factory=list)

    @property
    def total_work(self) -> float:
        return float(sum(load for load in self.core_loads))

    @property
    def efficiency(self) -> float:
        """Parallel efficiency: total work / (cores × makespan)."""
        denom = self.n_workers * self.makespan
        return self.total_work / denom if denom > 0 else 1.0

    def busy_cores_at(self, t: float) -> int:
        """Number of cores executing a task at simulated time ``t``."""
        return sum(1 for s, e, _, _ in self.intervals if s <= t < e)


def schedule_tasks(
    costs: Sequence[float],
    n_workers: int,
    *,
    per_task_overhead: float = 0.0,
) -> PoolSchedule:
    """Greedy list-schedule ``costs`` (in arrival order) onto cores.

    ``per_task_overhead`` models dispatch/steal cost added to every task.
    Deterministic: ties go to the lowest-numbered core.
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    heap: list[tuple[float, int]] = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    loads = [0.0] * n_workers
    intervals: list[tuple[float, float, int, int]] = []
    for i, cost in enumerate(costs):
        free_at, core = heapq.heappop(heap)
        duration = float(cost) + per_task_overhead
        end = free_at + duration
        loads[core] += duration
        intervals.append((free_at, end, core, i))
        heapq.heappush(heap, (end, core))
    makespan = max((end for _, end, _, _ in intervals), default=0.0)
    return PoolSchedule(
        n_workers=n_workers,
        makespan=makespan,
        core_loads=loads,
        intervals=intervals,
    )
