"""Thread-pool task runner for host-parallel ParMBE execution.

Python threads share the GIL, so on CPython the speedup from this runner
is modest (numpy kernels release the GIL only briefly at these sizes);
it exists so the parallel decomposition is *actually exercised
concurrently* — results must be identical and thread-safe — while the
96-core wall-clock model comes from :mod:`repro.parallel.simpool`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["run_tasks_threaded"]


def run_tasks_threaded(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    n_workers: int = 4,
) -> list[R]:
    """Run ``fn`` over ``items`` on a thread pool, preserving input order."""
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    if n_workers == 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))
