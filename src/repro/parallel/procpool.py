"""Supervised spawn-based process pool: crash-isolated shard execution.

:class:`~repro.parallel.WorkerPool` threads share one interpreter — a
worker that segfaults, is OOM-killed, or wedges in native code takes
the whole host process (and every other shard) with it, and the GIL
caps wall-clock scaling at 1x.  :class:`ProcessWorkerPool` is the
process-backed sibling with the same ``submit``/``drain``/``shutdown``
surface: each worker is a ``spawn`` OS process that can die — or be
``kill -9``-ed on purpose — without corrupting the pool.

Supervision model (DESIGN.md §12):

- every worker owns two pipes: a duplex **task pipe** (pickled
  ``(fn, args, kwargs)`` in, ``(ok, value, error)`` out) and a one-way
  **heartbeat pipe** a daemon thread in the worker beats on every
  ``SupervisorPolicy.heartbeat_interval`` seconds;
- one parent-side monitor thread multiplexes every pipe through
  :func:`multiprocessing.connection.wait` and keeps a
  :class:`Supervisor` ledger of last-beat and task-start times;
- a worker whose process exits is a **crash** (its task's future fails
  with :class:`WorkerCrashError`); one that stays alive but silent past
  ``heartbeat_timeout`` — a SIGSTOP, a native deadlock — or that holds
  one task past ``task_deadline`` is **hung**: the supervisor SIGKILLs
  it and the future fails with :class:`WorkerHungError`;
- dead workers are **restarted with exponential backoff**, at most
  ``max_restarts`` times per slot; a slot that exhausts its budget is
  retired, and when every slot is retired the pool is **broken**:
  queued futures fail with :class:`PoolBrokenError` and further
  submissions are refused.

The pool supervises *workers*; it never re-runs a task whose process
died mid-flight (the work may not be idempotent — and for shards,
re-running means *resuming from a checkpoint*, which only the caller
knows how to do).  Task-level retry and poison-task quarantine live in
:class:`~repro.sharding.ShardCoordinator`.

Exceptions raised *inside* a task are not supervision events: they are
serialized (type name, message, remote traceback) and surface as
:class:`RemoteTaskError` on the future, exactly as a thread pool would
propagate them — the worker stays alive and takes the next task.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from concurrent.futures import wait as cf_wait
from dataclasses import dataclass
from multiprocessing import connection
from typing import Callable

__all__ = [
    "PoolBrokenError",
    "ProcessWorkerPool",
    "RemoteTaskError",
    "Supervisor",
    "SupervisorPolicy",
    "WorkerCrashError",
    "WorkerHungError",
    "set_heartbeat_aux_provider",
]


class WorkerCrashError(RuntimeError):
    """A worker process died (crash, OOM kill, SIGKILL) mid-task."""

    def __init__(self, message: str, *, worker_id: int | None = None,
                 exitcode: int | None = None) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.exitcode = exitcode


class WorkerHungError(WorkerCrashError):
    """A worker stopped heartbeating (or blew its task deadline) and
    was killed by the supervisor."""


class RemoteTaskError(RuntimeError):
    """A task raised inside its worker process.

    The remote traceback travels as a PEP 678 note — the original
    exception object cannot cross the process boundary reliably, but
    where it happened must not be lost.
    """

    def __init__(self, message: str, *, exc_type: str | None = None) -> None:
        super().__init__(message)
        self.exc_type = exc_type


class PoolBrokenError(RuntimeError):
    """Every worker slot exhausted its restart budget; the pool is dead."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Health-detection and restart knobs for one pool.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between worker heartbeats.
    heartbeat_timeout:
        A worker silent this long is declared hung and killed.  Counts
        from spawn too, so it must cover worker boot (interpreter start
        plus imports) — keep it a comfortable multiple of the interval.
    task_deadline:
        Optional wall-clock budget per task; a worker holding one task
        longer is killed (``None`` = unbounded).
    max_restarts:
        Restart budget *per worker slot*; the slot is retired once
        spent.
    restart_backoff_base, restart_backoff_multiplier, restart_backoff_max:
        Respawn ``k`` of a slot waits
        ``base * multiplier**(k-1)`` seconds, capped at ``max`` —
        a crash-looping environment must not busy-spin fork bombs.
    tick:
        Monitor wakeup period when no pipe is ready; bounds how stale a
        verdict can be.
    """

    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 15.0
    task_deadline: float | None = None
    max_restarts: int = 3
    restart_backoff_base: float = 0.1
    restart_backoff_multiplier: float = 2.0
    restart_backoff_max: float = 2.0
    tick: float = 0.05

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be positive or None")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.restart_backoff_base < 0 or self.restart_backoff_max < 0:
            raise ValueError("backoff values must be non-negative")
        if self.restart_backoff_multiplier < 1.0:
            raise ValueError("restart_backoff_multiplier must be >= 1")
        if self.tick <= 0:
            raise ValueError("tick must be positive")

    def restart_backoff(self, restart_index: int) -> float:
        """Backoff before the ``restart_index``-th respawn (1-based)."""
        delay = self.restart_backoff_base * (
            self.restart_backoff_multiplier ** (restart_index - 1)
        )
        return min(delay, self.restart_backoff_max)


class Supervisor:
    """Watchdog ledger: who beat when, who runs what, who may restart.

    Pure bookkeeping over an injectable clock — the pool feeds it
    beats/task events and asks for verdicts; it never touches processes
    itself, which is what makes it unit-testable with a fake clock.
    Events (``spawn``/``death``/``hang``/``restart``/``retire``/
    ``broken``) fan out to the optional ``on_event`` callback — the
    coordinator maps them onto ``supervisor.*`` telemetry counters.
    """

    def __init__(
        self,
        policy: SupervisorPolicy,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_event: Callable[[str, dict], None] | None = None,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._on_event = on_event
        self._last_beat: dict[int, float] = {}
        self._task_started: dict[int, float] = {}
        self._restarts: dict[int, int] = {}
        self.deaths = 0
        self.hangs = 0
        self.deadline_kills = 0
        self.restarts_total = 0
        self.retired = 0
        self.spawned = 0

    # ------------------------------------------------------------------
    def emit(self, kind: str, **info) -> None:
        if self._on_event is not None:
            try:
                self._on_event(kind, info)
            except Exception:
                pass  # an observer must never take the supervisor down

    def register(self, worker_id: int) -> None:
        """A worker process was (re)spawned; its boot counts as a beat."""
        self._last_beat[worker_id] = self._clock()
        self._task_started.pop(worker_id, None)
        self.spawned += 1
        self.emit("spawn", worker=worker_id)

    def beat(self, worker_id: int) -> None:
        self._last_beat[worker_id] = self._clock()

    def task_started(self, worker_id: int) -> None:
        self._task_started[worker_id] = self._clock()

    def task_finished(self, worker_id: int) -> None:
        self._task_started.pop(worker_id, None)

    def verdict(self, worker_id: int, *, alive: bool) -> str | None:
        """Health call for one worker: None (fine), ``"dead"``,
        ``"hung"`` (missed heartbeats), or ``"deadline"``."""
        if not alive:
            return "dead"
        now = self._clock()
        last = self._last_beat.get(worker_id)
        if last is not None and now - last > self.policy.heartbeat_timeout:
            return "hung"
        started = self._task_started.get(worker_id)
        deadline = self.policy.task_deadline
        if (started is not None and deadline is not None
                and now - started > deadline):
            return "deadline"
        return None

    def note_death(self, worker_id: int, reason: str) -> None:
        """Record a death verdict in the counters and event stream."""
        self.deaths += 1
        if reason == "hung":
            self.hangs += 1
        elif reason == "deadline":
            self.deadline_kills += 1
        self._task_started.pop(worker_id, None)
        self.emit("death", worker=worker_id, reason=reason)

    def plan_restart(self, worker_id: int) -> float | None:
        """Respawn instant for a dead worker, or ``None`` when the
        slot's restart budget is spent (the slot retires)."""
        used = self._restarts.get(worker_id, 0)
        if used >= self.policy.max_restarts:
            self.retired += 1
            self.emit("retire", worker=worker_id, restarts=used)
            return None
        self._restarts[worker_id] = used + 1
        self.restarts_total += 1
        return self._clock() + self.policy.restart_backoff(used + 1)

    def restarts(self, worker_id: int) -> int:
        return self._restarts.get(worker_id, 0)

    def per_worker(self) -> dict[int, dict]:
        """Liveness/restart detail by worker id (health snapshots)."""
        now = self._clock()
        out: dict[int, dict] = {}
        for worker_id in sorted(set(self._last_beat) | set(self._restarts)):
            last = self._last_beat.get(worker_id)
            out[worker_id] = {
                "restarts": self._restarts.get(worker_id, 0),
                "last_beat_age_s": None if last is None else now - last,
            }
        return out

    def summary(self) -> dict:
        """Counter snapshot (the pool exposes this as ``stats()``)."""
        return {
            "spawned": self.spawned,
            "deaths": self.deaths,
            "hangs": self.hangs,
            "deadline_kills": self.deadline_kills,
            "restarts": self.restarts_total,
            "retired": self.retired,
        }


# ----------------------------------------------------------------------
# Worker side (runs in the spawned child; must stay import-light)
# ----------------------------------------------------------------------

#: Optional zero-arg callable returning a picklable payload to piggyback
#: on each heartbeat.  The *running task* installs it (e.g.
#: ``run_shard_task`` flushes its buffered telemetry here) so a worker
#: that is later SIGKILLed still left its last records with the parent.
_AUX_PROVIDER: Callable[[], object] | None = None


def set_heartbeat_aux_provider(provider: Callable[[], object] | None) -> None:
    """Install (or clear, with ``None``) this process's heartbeat
    payload provider.  Meaningful only inside a pool worker; harmless
    anywhere else."""
    global _AUX_PROVIDER
    _AUX_PROVIDER = provider


def _heartbeat_loop(hb_conn, interval: float, stop: threading.Event) -> None:
    while not stop.is_set():
        payload = None
        provider = _AUX_PROVIDER
        if provider is not None:
            try:
                payload = provider()
            except Exception:
                payload = None  # a broken provider must not stop beats
        try:
            hb_conn.send((os.getpid(), payload))
        except (BrokenPipeError, OSError):
            return  # parent is gone; nothing left to report to
        except Exception:
            # The payload would not pickle; the beat itself must go out.
            try:
                hb_conn.send((os.getpid(), None))
            except (BrokenPipeError, OSError):
                return
        stop.wait(interval)


def _worker_main(worker_id: int, conn, hb_conn, heartbeat_interval: float) -> None:
    """Child entry: beat, then loop recv → execute → send until EOF."""
    stop = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(hb_conn, heartbeat_interval, stop),
        name=f"procpool-heartbeat-{worker_id}",
        daemon=True,
    )
    beater.start()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:  # graceful shutdown
                break
            task_id, fn, args, kwargs = msg
            try:
                value = fn(*args, **kwargs)
                reply = (task_id, True, value, None)
            except BaseException as exc:
                reply = (
                    task_id, False, None,
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                )
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break  # parent is gone
            except Exception as exc:
                # The *result* would not pickle; the parent must still
                # get an answer or its future would hang forever.
                conn.send((
                    task_id, False, None,
                    (
                        type(exc).__name__,
                        f"task result could not be serialized: {exc}",
                        traceback.format_exc(),
                    ),
                ))
    finally:
        stop.set()


def _warm_import(module_names, sleep_s: float = 0.0):
    """Warm-up task: pay a worker's import cost ahead of real work."""
    import importlib

    for name in module_names:
        importlib.import_module(name)
    if sleep_s > 0:
        time.sleep(sleep_s)
    return os.getpid()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Task:
    __slots__ = ("task_id", "future", "label", "payload")

    def __init__(self, task_id, future, label, payload):
        self.task_id = task_id
        self.future = future
        self.label = label
        self.payload = payload  # (fn, args, kwargs) — kept for requeue


class _Slot:
    __slots__ = ("worker_id", "process", "conn", "hb", "task",
                 "respawn_at", "kill_reason")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.hb = None
        self.task: _Task | None = None
        #: monotonic instant to respawn at; None while live or retired
        self.respawn_at: float | None = None
        #: set when the supervisor kills the process on purpose, so the
        #: subsequent death is reported as hung, not crashed
        self.kill_reason: str | None = None

    @property
    def live(self) -> bool:
        return self.process is not None

    @property
    def retired(self) -> bool:
        return self.process is None and self.respawn_at is None


class ProcessWorkerPool:
    """Supervised pool of ``spawn`` worker processes.

    Drop-in for :class:`~repro.parallel.WorkerPool` where the submitted
    functions and their arguments are picklable module-level callables:
    same ``submit(fn, *args, worker_label=..., **kwargs)`` future
    surface, same ``active``/``completed``/``outstanding`` accounting,
    same ``drain``/``shutdown`` semantics — plus supervision (see the
    module docstring for the crash/hang/restart model).
    """

    def __init__(
        self,
        n_workers: int = 4,
        *,
        policy: SupervisorPolicy | None = None,
        on_event: Callable[[str, dict], None] | None = None,
        on_aux: Callable[[int, object], None] | None = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        #: called as ``on_aux(worker_id, payload)`` for every non-None
        #: heartbeat payload (see :func:`set_heartbeat_aux_provider`).
        #: Runs on the monitor thread under the pool lock — handlers
        #: must be quick and must not call back into the pool.
        self.on_aux = on_aux
        self.policy = policy if policy is not None else SupervisorPolicy()
        self._ctx = multiprocessing.get_context("spawn")
        self.supervisor = Supervisor(self.policy, on_event=on_event)
        # Reentrant: resolving a future fires its done callbacks (e.g.
        # our own _discard) synchronously on the monitor thread, while
        # the monitor already holds the lock.
        self._lock = threading.RLock()
        self._queue: deque[_Task] = deque()
        self._outstanding: set[Future] = set()
        self._slots = [_Slot(i) for i in range(n_workers)]
        self._conn_to_slot: dict = {}
        self._task_ids = itertools.count()
        self._completed = 0
        self._stopping = False
        self._broken = False
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        with self._lock:
            for slot in self._slots:
                self._spawn_locked(slot)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="procpool-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Public surface (WorkerPool-compatible)
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable,
        /,
        *args,
        worker_label: str | None = None,
        **kwargs,
    ) -> Future:
        """Schedule ``fn(*args, **kwargs)`` on a worker process.

        ``fn`` and its arguments must pickle (module-level functions;
        no live telemetry/locks).  ``worker_label`` names the unit of
        work and is attached as a PEP 678 note to any crash or remote
        error, mirroring :class:`~repro.parallel.WorkerPool`.
        """
        future: Future = Future()
        with self._lock:
            if self._stopping:
                raise RuntimeError("pool is shut down")
            if self._broken:
                raise PoolBrokenError(
                    "every worker slot exhausted its restart budget"
                )
            task = _Task(
                next(self._task_ids), future, worker_label,
                (fn, args, kwargs),
            )
            self._queue.append(task)
            self._outstanding.add(future)
        future.add_done_callback(self._discard)
        self._wake()
        return future

    def _discard(self, future: Future) -> None:
        with self._lock:
            self._outstanding.discard(future)
            self._completed += 1

    @property
    def active(self) -> int:
        """Tasks currently executing on a worker process."""
        with self._lock:
            return sum(1 for s in self._slots if s.task is not None)

    @property
    def completed(self) -> int:
        """Tasks resolved (any outcome) since the pool started."""
        with self._lock:
            return self._completed

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet resolved (queued or running)."""
        with self._lock:
            return len(self._outstanding)

    @property
    def broken(self) -> bool:
        """True once every slot retired; submissions are refused."""
        with self._lock:
            return self._broken

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for every outstanding task; True if fully drained."""
        with self._lock:
            pending = set(self._outstanding)
        if not pending:
            return True
        done, not_done = cf_wait(pending, timeout=timeout)
        return not not_done

    def shutdown(
        self, wait: bool = True, *, drain_timeout: float | None = None
    ) -> bool:
        """Stop the pool; True if every task finished before shutdown.

        Same contract as :meth:`WorkerPool.shutdown`, with one process
        upgrade: ``wait=False`` (or a blown ``drain_timeout``) does not
        abandon running work — worker processes are killed and their
        futures fail with :class:`PoolBrokenError`, so no caller is
        ever left waiting on a future nothing will resolve.
        """
        if drain_timeout is not None:
            drained = self.drain(drain_timeout)
        elif wait:
            drained = self.drain(None)
        else:
            drained = self.outstanding == 0
        with self._lock:
            if self._stopping:
                return drained
            self._stopping = True
        self._wake()
        self._monitor.join(timeout=30.0)
        return drained

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Extra introspection (chaos tests, coordinator, benchmarks)
    # ------------------------------------------------------------------
    def worker_pids(self) -> dict[int, int]:
        """Live worker pids by slot id (chaos tests aim SIGKILL here)."""
        with self._lock:
            return {
                s.worker_id: s.process.pid
                for s in self._slots
                if s.process is not None and s.process.pid is not None
            }

    def running_labels(self) -> dict[int, str | None]:
        """``worker_label`` of the task each busy worker is running."""
        with self._lock:
            return {
                s.worker_id: s.task.label
                for s in self._slots
                if s.task is not None
            }

    def stats(self) -> dict:
        """Supervision counters (spawns, deaths, hangs, restarts...)
        plus per-slot liveness/restart detail under ``"workers"``."""
        summary = self.supervisor.summary()
        with self._lock:
            per = self.supervisor.per_worker()
            workers = {}
            for slot in self._slots:
                detail = per.get(
                    slot.worker_id,
                    {"restarts": 0, "last_beat_age_s": None},
                )
                workers[slot.worker_id] = {
                    "alive": slot.live,
                    "retired": slot.retired,
                    "pid": (slot.process.pid
                            if slot.process is not None else None),
                    **detail,
                }
        summary["workers"] = workers
        return summary

    def warm(
        self,
        modules: tuple[str, ...] = (),
        *,
        hold_s: float = 0.5,
        timeout: float | None = 60.0,
    ) -> bool:
        """Pay every worker's interpreter-boot + import cost up front.

        Submits one import task per worker; ``hold_s`` keeps each busy
        long enough that all slots get one (benchmarks call this so
        measured wall-clock excludes one-time spawn cost).
        """
        futures = [
            self.submit(_warm_import, tuple(modules), hold_s,
                        worker_label="warmup")
            for _ in range(self.n_workers)
        ]
        done, not_done = cf_wait(futures, timeout=timeout)
        return not not_done

    # ------------------------------------------------------------------
    # Monitor internals (single thread; state mutations under the lock)
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except (BrokenPipeError, OSError):
            pass

    def _spawn_locked(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        parent_hb, child_hb = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(slot.worker_id, child_conn, child_hb,
                  self.policy.heartbeat_interval),
            name=f"procpool-worker-{slot.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        child_hb.close()
        slot.process = process
        slot.conn = parent_conn
        slot.hb = parent_hb
        slot.task = None
        slot.respawn_at = None
        slot.kill_reason = None
        self._conn_to_slot[parent_conn] = slot
        self._conn_to_slot[parent_hb] = slot
        self.supervisor.register(slot.worker_id)

    def _monitor_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    break
                now = time.monotonic()
                for slot in self._slots:
                    if (slot.respawn_at is not None
                            and now >= slot.respawn_at):
                        self._spawn_locked(slot)
                        self.supervisor.emit(
                            "restart", worker=slot.worker_id,
                            restarts=self.supervisor.restarts(slot.worker_id),
                        )
                self._dispatch_locked()
                readers = [self._wake_r]
                for slot in self._slots:
                    if slot.live:
                        readers.append(slot.conn)
                        readers.append(slot.hb)
            try:
                ready = connection.wait(readers, timeout=self.policy.tick)
            except OSError:
                ready = []  # a pipe died between listing and waiting
            with self._lock:
                for reader in ready:
                    self._service_locked(reader)
                self._health_check_locked()
        self._teardown()

    def _dispatch_locked(self) -> None:
        for slot in self._slots:
            if not self._queue:
                return
            if not slot.live or slot.task is not None:
                continue
            task = self._queue.popleft()
            if not task.future.set_running_or_notify_cancel():
                continue  # cancelled while queued
            try:
                slot.conn.send(
                    (task.task_id,) + task.payload
                )
            except (BrokenPipeError, OSError):
                # Worker died before the task left the parent: nothing
                # executed, so the task is safe to give to another slot.
                self._queue.appendleft(task)
                self._handle_death_locked(slot, "dead")
                continue
            except Exception as exc:
                # The payload would not pickle — a caller bug, not a
                # worker fault.
                if task.label is not None:
                    exc.add_note(
                        f"[repro.parallel.ProcessWorkerPool] failed to "
                        f"serialize task: {task.label}"
                    )
                task.future.set_exception(exc)
                continue
            slot.task = task
            self.supervisor.task_started(slot.worker_id)

    def _service_locked(self, reader) -> None:
        if reader is self._wake_r:
            try:
                while self._wake_r.poll():
                    self._wake_r.recv_bytes()
            except (EOFError, OSError):
                pass
            return
        slot = self._conn_to_slot.get(reader)
        if slot is None or not slot.live:
            return  # already handled as a death this round
        if reader is slot.hb:
            try:
                while slot.hb.poll():
                    beat = slot.hb.recv()
                    self.supervisor.beat(slot.worker_id)
                    # (pid, payload) beats carry optional task telemetry;
                    # bare-int beats from older workers still count.
                    payload = beat[1] if isinstance(beat, tuple) else None
                    if payload is not None and self.on_aux is not None:
                        try:
                            self.on_aux(slot.worker_id, payload)
                        except Exception:
                            pass  # observer bug; never kill the monitor
            except (EOFError, OSError):
                self._handle_death_locked(slot, "dead")
            return
        try:
            task_id, ok, value, err = slot.conn.recv()
        except (EOFError, OSError):
            self._handle_death_locked(slot, "dead")
            return
        task = slot.task
        if task is None or task.task_id != task_id:
            return  # stale reply from a pre-kill task; nobody waits on it
        slot.task = None
        self.supervisor.task_finished(slot.worker_id)
        if ok:
            task.future.set_result(value)
        else:
            exc_type, message, remote_tb = err
            exc = RemoteTaskError(
                f"{exc_type}: {message}", exc_type=exc_type
            )
            exc.add_note(
                "remote traceback (worker process "
                f"{slot.worker_id}):\n{remote_tb.rstrip()}"
            )
            if task.label is not None:
                exc.add_note(
                    f"[repro.parallel.ProcessWorkerPool] raised while "
                    f"running: {task.label}"
                )
            task.future.set_exception(exc)

    def _health_check_locked(self) -> None:
        for slot in self._slots:
            if not slot.live:
                continue
            verdict = self.supervisor.verdict(
                slot.worker_id, alive=slot.process.is_alive()
            )
            if verdict is None:
                continue
            if verdict in ("hung", "deadline"):
                slot.kill_reason = verdict
                try:
                    slot.process.kill()
                except (OSError, ValueError):
                    pass
                slot.process.join(timeout=5.0)
            self._handle_death_locked(slot, verdict)

    def _handle_death_locked(self, slot: _Slot, verdict: str) -> None:
        process = slot.process
        if process is None:
            return
        reason = slot.kill_reason or (
            verdict if verdict in ("hung", "deadline") else "crash"
        )
        self._close_slot_pipes(slot)
        slot.process = None
        process.join(timeout=1.0)
        exitcode = process.exitcode
        self.supervisor.note_death(slot.worker_id, reason)
        task = slot.task
        slot.task = None
        self.supervisor.task_finished(slot.worker_id)
        if task is not None:
            if reason in ("hung", "deadline"):
                why = (
                    "missed heartbeats "
                    f"(> {self.policy.heartbeat_timeout:g}s silent)"
                    if reason == "hung"
                    else "task deadline "
                    f"({self.policy.task_deadline:g}s) exceeded"
                )
                exc: WorkerCrashError = WorkerHungError(
                    f"worker {slot.worker_id} killed by supervisor: {why}",
                    worker_id=slot.worker_id,
                    exitcode=exitcode,
                )
            else:
                exc = WorkerCrashError(
                    f"worker {slot.worker_id} died with exit code "
                    f"{exitcode} while running a task",
                    worker_id=slot.worker_id,
                    exitcode=exitcode,
                )
            if task.label is not None:
                exc.add_note(
                    f"[repro.parallel.ProcessWorkerPool] worker died "
                    f"while running: {task.label}"
                )
            task.future.set_exception(exc)
        respawn_at = self.supervisor.plan_restart(slot.worker_id)
        slot.respawn_at = respawn_at
        slot.kill_reason = None
        if respawn_at is None and all(
            s.retired for s in self._slots
        ):
            self._broken = True
            self.supervisor.emit("broken")
            while self._queue:
                queued = self._queue.popleft()
                if queued.future.set_running_or_notify_cancel():
                    queued.future.set_exception(PoolBrokenError(
                        "every worker slot exhausted its restart budget"
                    ))

    def _close_slot_pipes(self, slot: _Slot) -> None:
        for conn_attr in ("conn", "hb"):
            conn_obj = getattr(slot, conn_attr)
            if conn_obj is None:
                continue
            self._conn_to_slot.pop(conn_obj, None)
            try:
                conn_obj.close()
            except OSError:
                pass
            setattr(slot, conn_attr, None)

    def _teardown(self) -> None:
        """Final monitor step after ``shutdown``: stop every worker and
        resolve every future that could otherwise wait forever."""
        with self._lock:
            while self._queue:
                task = self._queue.popleft()
                task.future.cancel()
            for slot in self._slots:
                if not slot.live:
                    continue
                if slot.task is None:
                    try:
                        slot.conn.send(None)  # graceful: finish and exit
                    except (BrokenPipeError, OSError):
                        pass
                else:
                    try:
                        slot.process.kill()
                    except (OSError, ValueError):
                        pass
                    slot.task.future.set_exception(PoolBrokenError(
                        "pool shut down before the task finished"
                    ))
                    slot.task = None
            for slot in self._slots:
                if slot.live:
                    slot.process.join(timeout=5.0)
                    if slot.process.is_alive():
                        try:
                            slot.process.kill()
                        except (OSError, ValueError):
                            pass
                        slot.process.join(timeout=5.0)
                    self._close_slot_pipes(slot)
                    slot.process = None
                slot.respawn_at = None
        for wake in (self._wake_r, self._wake_w):
            try:
                wake.close()
            except OSError:
                pass
