"""Persistent worker pool for the enumeration service.

:func:`run_tasks_threaded` (the batch runner) owns its pool for the
duration of one call; a *service* needs workers that outlive any single
job, accept work one future at a time, and report how busy they are so
the broker can size its admission queue.  :class:`WorkerPool` is that
substrate — a thin, instrumented wrapper over a named
:class:`~concurrent.futures.ThreadPoolExecutor`.

Python threads share the GIL, so same caveat as :mod:`repro.parallel.pool`:
the point is real concurrent execution and isolation (a job raising in a
worker never takes the pool down), not CPU-parallel speedup.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, TypeVar

R = TypeVar("R")

__all__ = ["WorkerPool"]


class WorkerPool:
    """Named thread pool with live busy-count accounting."""

    def __init__(
        self, n_workers: int = 4, *, thread_name_prefix: str = "repro-worker"
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self._executor = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix=thread_name_prefix
        )
        self._lock = threading.Lock()
        self._active = 0
        self._completed = 0

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., R], /, *args, **kwargs) -> "Future[R]":
        """Schedule ``fn(*args, **kwargs)``; returns its future.

        The wrapper only tracks activity — exceptions flow through the
        future untouched, so a raising job is isolated to its caller.
        """

        def _tracked() -> R:
            with self._lock:
                self._active += 1
            try:
                return fn(*args, **kwargs)
            finally:
                with self._lock:
                    self._active -= 1
                    self._completed += 1

        return self._executor.submit(_tracked)

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Jobs currently executing on a worker thread."""
        with self._lock:
            return self._active

    @property
    def completed(self) -> int:
        """Jobs that have finished (successfully or not) since start."""
        with self._lock:
            return self._completed

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
