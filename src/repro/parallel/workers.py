"""Persistent worker pool for the enumeration service.

:func:`run_tasks_threaded` (the batch runner) owns its pool for the
duration of one call; a *service* needs workers that outlive any single
job, accept work one future at a time, and report how busy they are so
the broker can size its admission queue.  :class:`WorkerPool` is that
substrate — a thin, instrumented wrapper over a named
:class:`~concurrent.futures.ThreadPoolExecutor`.

Python threads share the GIL, so same caveat as :mod:`repro.parallel.pool`:
the point is real concurrent execution and isolation (a job raising in a
worker never takes the pool down), not CPU-parallel speedup.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import Callable, TypeVar

R = TypeVar("R")

__all__ = ["WorkerPool"]


class WorkerPool:
    """Named thread pool with live busy-count accounting."""

    def __init__(
        self, n_workers: int = 4, *, thread_name_prefix: str = "repro-worker"
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self._executor = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix=thread_name_prefix
        )
        self._lock = threading.Lock()
        self._active = 0
        self._completed = 0
        #: futures not yet done — what a drain timeout waits on
        self._outstanding: set[Future] = set()

    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[..., R],
        /,
        *args,
        worker_label: str | None = None,
        **kwargs,
    ) -> "Future[R]":
        """Schedule ``fn(*args, **kwargs)``; returns its future.

        The wrapper only tracks activity — exceptions flow through the
        future untouched, so a raising job is isolated to its caller.

        ``worker_label`` (consumed by the pool, never passed to ``fn``)
        names the unit of work — e.g. ``"shard 3/8 of job 17"``.  A
        crashing worker attaches it to the exception as a PEP 678 note,
        so the traceback that eventually surfaces (possibly far from the
        submission site, after a merge or a retry) still says *which*
        task died.
        """

        def _tracked() -> R:
            with self._lock:
                self._active += 1
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:
                if worker_label is not None:
                    exc.add_note(
                        f"[repro.parallel.WorkerPool] raised while running: "
                        f"{worker_label}"
                    )
                raise
            finally:
                with self._lock:
                    self._active -= 1
                    self._completed += 1

        future = self._executor.submit(_tracked)
        with self._lock:
            self._outstanding.add(future)
        future.add_done_callback(self._discard)
        return future

    def _discard(self, future: Future) -> None:
        with self._lock:
            self._outstanding.discard(future)

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Jobs currently executing on a worker thread."""
        with self._lock:
            return self._active

    @property
    def completed(self) -> int:
        """Jobs that have finished (successfully or not) since start."""
        with self._lock:
            return self._completed

    @property
    def outstanding(self) -> int:
        """Jobs submitted but not yet done (queued or executing)."""
        with self._lock:
            return len(self._outstanding)

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for every outstanding job to finish; True if fully drained.

        ``timeout=None`` waits indefinitely.  Unlike
        ``executor.shutdown(wait=True)``, a timeout bounds the wait —
        the pool is still usable afterwards.
        """
        with self._lock:
            pending = set(self._outstanding)
        if not pending:
            return True
        done, not_done = wait(pending, timeout=timeout)
        return not not_done

    def shutdown(
        self, wait: bool = True, *, drain_timeout: float | None = None
    ) -> bool:
        """Stop the pool; True if every job finished before shutdown.

        ``drain_timeout`` selects graceful shutdown: wait up to that
        many seconds for outstanding work to complete, then stop —
        cancelling jobs still *queued* (they resolve as cancelled
        futures; a job already running on a thread cannot be
        interrupted and is abandoned to finish on the daemon pool).
        Without it, ``wait=True`` blocks until everything finishes and
        ``wait=False`` returns immediately, as before.
        """
        if drain_timeout is not None:
            drained = self.drain(drain_timeout)
            self._executor.shutdown(wait=False, cancel_futures=True)
            return drained
        self._executor.shutdown(wait=wait)
        return self.outstanding == 0

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
