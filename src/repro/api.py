"""High-level convenience API.

:func:`enumerate_maximal_bicliques` is the one-call entry point for
downstream users: accepts a :class:`BipartiteGraph`, a dense 0/1 numpy
matrix, a scipy.sparse biadjacency matrix, or a networkx bipartite
graph; runs any of the bundled algorithms; and returns the maximal
bicliques as a list (optionally size-filtered — the common need in
fraud/bicluster applications).
"""

from __future__ import annotations

import numbers
import os

import numpy as np

from .core import (
    Biclique,
    BicliqueCollector,
    imbea,
    mbea,
    oombea,
    parmbe,
    pmbe,
)
from .gmbe import GMBEConfig, gmbe_gpu, gmbe_host
from .graph import BipartiteGraph

__all__ = [
    "enumerate_maximal_bicliques",
    "as_bipartite_graph",
    "validate_size_filters",
]

_ALGORITHMS = {
    "gmbe": None,
    "gmbe-host": None,
    "mbea": mbea,
    "imbea": imbea,
    "pmbe": pmbe,
    "oombea": oombea,
    "parmbe": parmbe,
}


def as_bipartite_graph(data) -> BipartiteGraph:
    """Coerce supported inputs into a :class:`BipartiteGraph`.

    Accepts: BipartiteGraph (returned as-is), numpy 2-D arrays
    (biadjacency), scipy.sparse matrices, and networkx graphs with the
    ``bipartite`` node attribute.
    """
    if isinstance(data, BipartiteGraph):
        return data
    if isinstance(data, np.ndarray):
        return BipartiteGraph.from_biadjacency(data)
    if hasattr(data, "tocoo"):  # scipy.sparse duck type
        from .graph.interop import from_scipy_sparse

        return from_scipy_sparse(data)
    if hasattr(data, "nodes") and hasattr(data, "edges"):  # networkx
        from .graph.interop import from_networkx

        return from_networkx(data)
    raise TypeError(
        "expected BipartiteGraph, numpy array, scipy.sparse matrix, or "
        f"networkx graph; got {type(data).__name__}"
    )


def _validate_size_filter(name: str, value) -> int:
    # bool is an int subclass; min_left=True is a caller bug, not a 1.
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ValueError(
            f"{name} must be a non-negative integer, got {value!r}"
        )
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {int(value)}")
    return int(value)


def validate_size_filters(min_left, min_right) -> tuple[int, int]:
    """Validate ``min_left``/``min_right`` size-filter arguments.

    Negative or non-integral values (including bools) raise
    :class:`ValueError` naming the offending value instead of silently
    filtering wrong — numpy integers are accepted and coerced.
    """
    return (
        _validate_size_filter("min_left", min_left),
        _validate_size_filter("min_right", min_right),
    )


def enumerate_maximal_bicliques(
    data,
    *,
    algorithm: str = "gmbe",
    min_left: int = 1,
    min_right: int = 1,
    config: GMBEConfig | str | None = None,
    tuning_store=None,
    tune_on_miss: bool = False,
    fault_plan=None,
    checkpoint_path=None,
    checkpoint_every: int = 256,
    resume: bool = False,
    telemetry=None,
    shards: int = 1,
    shard_balancer: str = "greedy",
    shard_pool: str = "thread",
    as_store: bool = False,
) -> "list[Biclique]":
    """Enumerate all maximal bicliques of ``data``.

    Parameters
    ----------
    data:
        Anything :func:`as_bipartite_graph` accepts.  For matrix inputs,
        rows are the U side and columns the V side.
    algorithm:
        ``"gmbe"`` (simulated GPU, default), ``"gmbe-host"``, or one of
        the CPU baselines (``mbea``/``imbea``/``pmbe``/``oombea``/
        ``parmbe``).  All produce the identical set.
    min_left, min_right:
        Only return bicliques with at least this many vertices per side
        (filtering happens after enumeration; maximality is global).
    config:
        Optional :class:`GMBEConfig` for the GMBE variants, or the
        string ``"tuned"`` to use the per-graph autotuned configuration
        (GMBE variants only): the :mod:`repro.tuning` store is consulted
        under the graph's fingerprint; a hit resolves the config with
        zero simulator work, a miss falls back to the default config —
        or, with ``tune_on_miss=True``, runs a synchronous
        :func:`repro.tuning.tune` and persists the result.
    tuning_store:
        Optional :class:`~repro.tuning.TunedConfigStore` (or a path to
        one) consulted for ``config="tuned"``; defaults to
        :func:`repro.tuning.default_store` (``$GMBE_TUNING_STORE``).
    tune_on_miss:
        With ``config="tuned"``: tune synchronously when the store has
        no entry for this graph (default: just fall back to defaults).
    fault_plan, checkpoint_path, checkpoint_every, resume:
        Robustness passthrough (``algorithm="gmbe"`` only): inject a
        seeded :class:`~repro.gpusim.FaultPlan`, and/or snapshot the
        enumeration frontier to ``checkpoint_path`` so an interrupted
        run can be resumed bit-identically (see DESIGN.md §9).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`
        (``algorithm="gmbe"`` only): the run is traced as a
        ``sim.kernel`` span and its phase/queue/fault statistics land
        in ``telemetry.registry`` (see ``docs/observability.md``).
    shards, shard_balancer:
        With ``shards > 1`` (``algorithm="gmbe"`` only) the enumeration
        runs as N independent shard-jobs over disjoint root-task
        ownership sets and the results are stream-merged — bit-identical
        to the single-node run (see :mod:`repro.sharding` and DESIGN.md
        §11).  ``checkpoint_path`` then names a *directory* holding one
        snapshot per shard (crashed shards resume individually);
        ``fault_plan``/``resume`` are per-run concepts and are rejected —
        use :class:`~repro.sharding.ShardCoordinator` directly for
        per-shard fault injection.
    shard_pool:
        ``"thread"`` (default) runs the shards on an in-process pool;
        ``"process"`` runs each shard in a supervised spawned process
        (heartbeats, crash restarts, quarantine — see DESIGN.md §12).
        Because this function promises the *complete* enumeration, a
        process-pool run that exhausts a shard's retry budget raises
        :class:`~repro.sharding.DegradedShardRun` carrying the partial
        result rather than returning a silently short list.
    as_store:
        Return a compressed :class:`~repro.store.StoredResultSet`
        (same sorted contents; iterate, ``len()``, or page with
        ``page(cursor, limit)``) instead of a Python list — O(encoded)
        resident bytes instead of O(output) objects.

    Returns
    -------
    list[Biclique]
        Sorted for determinism.  With ``as_store=True``, a
        :class:`~repro.store.StoredResultSet` over the same sequence.
    """
    if algorithm not in _ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_ALGORITHMS)}"
        )
    min_left, min_right = validate_size_filters(min_left, min_right)
    if isinstance(shards, bool) or not isinstance(shards, numbers.Integral):
        raise ValueError(
            f"shards must be a positive integer, got {shards!r}"
        )
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if shards > 1:
        if algorithm != "gmbe":
            raise ValueError(
                f'shards > 1 is only supported by algorithm="gmbe", '
                f"not {algorithm!r}"
            )
        if fault_plan is not None or resume:
            raise ValueError(
                "fault_plan/resume are per-run concepts; with shards > 1 "
                "use repro.sharding.ShardCoordinator for per-shard fault "
                "injection (crashed shards resume automatically from "
                "their own checkpoints)"
            )
    graph = as_bipartite_graph(data)
    if isinstance(config, str):
        if config != "tuned":
            raise ValueError(
                f"config must be a GMBEConfig or the string 'tuned', "
                f"got {config!r}"
            )
        if algorithm in ("gmbe", "gmbe-host"):
            from .tuning import TunedConfigStore, resolve_config

            if isinstance(tuning_store, (str, os.PathLike)):
                tuning_store = TunedConfigStore(tuning_store)
            config, _ = resolve_config(
                graph,
                store=tuning_store,
                tune_on_miss=tune_on_miss,
                telemetry=telemetry,
            )
        else:
            config = None  # CPU baselines take no config; sentinel is moot
    collector = BicliqueCollector()
    if (
        fault_plan is not None or checkpoint_path is not None or resume
    ) and algorithm != "gmbe":
        raise ValueError(
            "fault injection and checkpoint/resume are only supported "
            f'by algorithm="gmbe", not {algorithm!r}'
        )
    if telemetry is not None and algorithm != "gmbe":
        raise ValueError(
            'telemetry is only supported by algorithm="gmbe", '
            f"not {algorithm!r}"
        )
    if algorithm == "gmbe" and shards > 1:
        from .sharding import DegradedShardRun, ShardCoordinator

        report = ShardCoordinator(
            graph,
            shards,
            config=config or GMBEConfig(),
            balancer=shard_balancer,
            checkpoint_dir=checkpoint_path,
            checkpoint_every=checkpoint_every,
            telemetry=telemetry,
            pool=shard_pool,
        ).run()
        if report.is_partial:
            # This function's contract is the complete set; an explicit
            # partial must surface as an error that still carries it.
            raise DegradedShardRun(report)
        for b in report.bicliques:
            collector(b.left, b.right)
    elif algorithm == "gmbe":
        gmbe_gpu(
            graph,
            collector,
            config=config or GMBEConfig(),
            fault_plan=fault_plan,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume=resume,
            telemetry=telemetry,
        )
    elif algorithm == "gmbe-host":
        gmbe_host(graph, collector, config=config or GMBEConfig())
    else:
        _ALGORITHMS[algorithm](graph, collector)
    out = [
        b
        for b in collector.bicliques
        if len(b.left) >= min_left and len(b.right) >= min_right
    ]
    out.sort()
    if as_store:
        from .store import StoredResultSet

        return StoredResultSet.from_bicliques(out)
    return out
