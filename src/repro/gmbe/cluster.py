"""Distributed multi-machine GMBE — the paper's stated future work (§5).

The paper: *"Theoretically, GMBE can also be extended to a distributed
computing environment, where multiple machines (each with one or more
GPUs) are connected by the network ... we leave the exploration of GMBE
on distributed multi-machine clusters as our future work."*

This module implements that extension on the simulator.  The design
follows the paper's single-machine multi-GPU recipe: the ``processing_v``
counter is shared *cluster-wide* (a network service instead of
``atomicInc_system``), task queues stay per-GPU, and no intermediate
data ever crosses machines — each root task is computed entirely on the
GPU that claimed it.  The only new cost is the round-trip to the counter
service: GPUs co-located with the counter pay the PCIe/NVLink price,
remote GPUs pay a network RTT per claim.

The interesting trade-off this exposes (see
``benchmarks/bench_ablation_cluster.py``): with cheap per-vertex tasks,
a high RTT serializes root claims and erases scaling — the known
remedy, also modeled here, is *batched claiming* (each pull reserves a
contiguous chunk of vertices, amortizing the RTT).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bicliques import BicliqueSink, EnumerationResult
from ..graph.bipartite import BipartiteGraph
from ..gpusim.device import V100, DeviceSpec
from .config import DEFAULT_CONFIG, GMBEConfig
from .kernel import gmbe_gpu

__all__ = ["ClusterSpec", "gmbe_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes
    ----------
    n_nodes:
        Machines in the cluster; the counter service lives on node 0.
    gpus_per_node:
        Identical GPUs per machine.
    device:
        The GPU model (paper's multi-GPU machine uses V100s).
    local_pull_cycles:
        Cycles for a counter claim from node 0's own GPUs (PCIe atomic).
    remote_pull_cycles:
        Cycles for a claim crossing the network (RTT at GPU clock; the
        default ~1.4 us corresponds to a fast RDMA fabric).
    claim_batch:
        Vertices reserved per counter claim.  1 = the paper's plain
        ``atomicInc``; larger batches amortize the RTT.
    """

    n_nodes: int = 2
    gpus_per_node: int = 1
    device: DeviceSpec = V100
    local_pull_cycles: float = 200.0
    remote_pull_cycles: float = 2000.0
    claim_batch: int = 1

    def __post_init__(self) -> None:
        # Per-field validation naming the offender and its value (same
        # style as repro.api.validate_size_filters) so a bad spec fails
        # at construction with a message that says what to fix.
        for name in ("n_nodes", "gpus_per_node", "claim_batch"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}"
                )
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("local_pull_cycles", "remote_pull_cycles"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ValueError(
                    f"{name} must be a non-negative number, got {value!r}"
                )
            if value < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {value}"
                )
        if not isinstance(self.device, DeviceSpec):
            raise ValueError(
                f"device must be a DeviceSpec, got "
                f"{type(self.device).__name__} ({self.device!r})"
            )

    def __repr__(self) -> str:
        # The default dataclass repr hides where the claim cost lands;
        # the per-GPU surcharge breakdown is what shard-placement
        # debugging actually needs (which GPUs pay the network RTT).
        breakdown = ", ".join(
            f"gpu{i}@node{i // self.gpus_per_node}={cost:g}"
            for i, cost in enumerate(self.surcharges())
        )
        return (
            f"ClusterSpec(n_nodes={self.n_nodes}, "
            f"gpus_per_node={self.gpus_per_node}, "
            f"device={self.device.name!r}, claim_batch={self.claim_batch}, "
            f"pull_surcharges=[{breakdown}])"
        )

    @property
    def n_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    def surcharges(self) -> list[float]:
        """Per-GPU counter-claim surcharge, amortized over the batch."""
        out: list[float] = []
        for node in range(self.n_nodes):
            cost = self.local_pull_cycles if node == 0 else self.remote_pull_cycles
            out.extend([cost / self.claim_batch] * self.gpus_per_node)
        return out


def gmbe_cluster(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    cluster: ClusterSpec = ClusterSpec(),
    config: GMBEConfig = DEFAULT_CONFIG,
    relabel: bool = True,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with GMBE on a simulated cluster.

    Results are identical to any other execution mode; ``sim_time`` and
    per-GPU times account for the cluster-wide counter's claim costs.
    The returned ``extras`` additionally carries the cluster spec.
    """
    result = gmbe_gpu(
        graph,
        sink,
        config=config,
        device=cluster.device,
        n_gpus=cluster.n_gpus,
        relabel=relabel,
        root_pull_surcharges=cluster.surcharges(),
    )
    result.extras["cluster"] = cluster
    per_gpu = result.extras["per_gpu_seconds"]
    result.extras["per_node_seconds"] = [
        max(per_gpu[n * cluster.gpus_per_node : (n + 1) * cluster.gpus_per_node])
        for n in range(cluster.n_nodes)
    ]
    return result
