"""Host (sequential) execution of the GMBE algorithm.

Runs the exact GMBE enumeration — per-vertex root tasks (Alg. 3/4
construction), node-reuse stack iteration (Alg. 2), local-neighborhood-
size pruning (§4.2) — on one CPU thread with no GPU model attached.
This is the correctness anchor: the simulated-GPU kernel must produce
identical bicliques, and the CPU baselines must agree with both.
"""

from __future__ import annotations

import numpy as np

from ..core.bicliques import (
    BicliqueCounter,
    BicliqueSink,
    Counters,
    EnumerationResult,
)
from ..core.localcount import LocalCounter
from ..core.runner import relabeling_sink
from ..core.tasks import RootTask, build_root_task
from ..graph.bipartite import BipartiteGraph
from ..graph.preprocess import prepare
from .config import DEFAULT_CONFIG, GMBEConfig
from .node_buffer import NodeBuffer

__all__ = ["gmbe_host", "run_task_with_node_buffer"]


def run_task_with_node_buffer(
    graph: BipartiteGraph,
    counter: LocalCounter,
    task: RootTask,
    sink: BicliqueSink,
    counters: Counters,
    *,
    prune: bool = True,
) -> None:
    """Enumerate ``task``'s subtree with a reused :class:`NodeBuffer`.

    The task's own root biclique is *not* reported here (callers decide,
    since split tasks report at dequeue time).
    """
    buf = NodeBuffer(
        graph,
        counter,
        task.left,
        task.right,
        task.cands,
        task.counts,
        prune=prune,
        counters=counters,
        universe=getattr(task, "universe", None),
    )
    while True:
        idx = buf.next_candidate()
        if idx is None:
            if buf.depth == 0:
                return
            buf.pop()
            continue
        outcome = buf.push(idx)
        if outcome.maximal:
            sink(buf.current_left(), buf.current_right())
        else:
            # Non-maximal nodes are never descended into (Alg. 2 only
            # pushes maximal children); undo immediately.
            buf.pop()


def gmbe_host(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    config: GMBEConfig = DEFAULT_CONFIG,
    relabel: bool = True,
) -> EnumerationResult:
    """Sequentially enumerate all maximal bicliques with GMBE semantics."""
    prepared = prepare(graph, order=config.order)
    g = prepared.graph
    counting = BicliqueCounter()
    if sink is None:
        inner = None
    else:
        inner = relabeling_sink(prepared, sink) if relabel else sink

    def emit(left: np.ndarray, right: np.ndarray) -> None:
        counting(left, right)
        if inner is not None:
            inner(left, right)

    counter = LocalCounter(g)
    counters = Counters()
    backend_tally = {"sorted": 0, "bitset": 0}
    # The w/o_REUSE ablation walks freshly allocated frames through the
    # sorted engine, so only node-reuse runs resolve a bitset backend.
    backend = config.set_backend if config.node_reuse else "sorted"
    for v_s in range(g.n_v):
        task = build_root_task(g, counter, v_s, counters, backend=backend)
        if task is None:
            continue
        backend_tally[task.backend] += 1
        counters.maximal += 1
        emit(task.left, task.right)
        if config.node_reuse:
            run_task_with_node_buffer(
                g, counter, task, emit, counters, prune=config.prune
            )
        else:
            # GMBE-w/o_REUSE: identical traversal on freshly allocated
            # frames (the §3.1 layout); used by the memory ablation.
            from ..core.engine import EngineOptions, run_subtree

            run_subtree(
                g, counter, task.left, task.right, task.cands, task.counts,
                emit, counters,
                EngineOptions("id", False, config.prune),
            )
    return EnumerationResult(
        n_maximal=counting.count,
        counters=counters,
        extras={"set_backend_tasks": backend_tally},
    )
