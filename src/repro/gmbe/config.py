"""GMBE configuration.

Default values follow the paper's §6.1 *Measures*: ``bound_height = 20``,
``bound_size = 1500``, ``WarpPerSM = 16``, V sorted by ascending degree.
The Fig. 10 / Fig. 11 sensitivity benchmarks sweep these.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace

__all__ = ["GMBEConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class GMBEConfig:
    """Tuning knobs of the GMBE kernel (§4.2–§4.3).

    Attributes
    ----------
    bound_height:
        Split a task when its estimated tree height ``min(|L|, |C|)``
        exceeds this (and the size bound also trips).
    bound_size:
        Split a task when its estimated node count ``min(|L|,|C|)·|C|``
        exceeds this (and the height bound also trips).
    warps_per_sm:
        Persistent-thread warps resident per SM (*WarpPerSM*).
    prune:
        Local-neighborhood-size pruning (§4.2); the GMBE-w/o_PRUNE
        variant of Fig. 8 / Table 2 turns it off.
    scheduling:
        ``"task"`` (load-aware task-centric, the paper's GMBE),
        ``"warp"`` (GMBE-WARP: one enumeration tree per warp), or
        ``"block"`` (GMBE-BLOCK: one tree per thread block).
    node_reuse:
        Memory accounting mode: node-reuse buffers (§4.1) vs the
        pre-allocated per-subtree layout of §3.1 (GMBE-w/o_REUSE).
        Enumeration behaviour is identical; only the modeled GPU memory
        demand differs (Fig. 7).
    set_backend:
        Set-representation backend for the enumeration hot path:
        ``"sorted"`` (galloping merges over sorted arrays),
        ``"bitset"`` (packed uint64 bitmaps over the task's induced
        subgraph, the cuMBE/GBC dense-task optimization), or ``"auto"``
        (per-root-task density heuristic,
        :func:`repro.core.bitset.resolve_backend`).  The enumerated
        biclique set, maximality outcomes, and pruning counts are
        bit-identical across all three; only the modeled work units
        differ (word-parallel vs merge charging).
    max_task_retries:
        Failure budget per task lineage under fault injection (§9 of
        DESIGN.md): a warp-hang / SM-crash / dropped-enqueue failure
        re-enqueues the task on a surviving SM up to this many times
        before the subtree is abandoned (and counted in
        ``SimReport.tasks_lost``).  Irrelevant to fault-free runs.
    batch_tasks:
        Cross-task batched execution of dense (bitset-backend) tasks
        (:mod:`repro.core.batch`): ``"off"`` runs every task through the
        sequential node-buffer loop, ``"auto"`` groups up to a default
        number of same-depth dense tasks per lockstep round, and a
        positive int caps the group size explicitly.  Batching is a pure
        wall-clock optimization: the enumerated biclique set, per-task
        ``Counters`` charges, simulated cycles, checkpoints, and fault
        behaviour are bit-identical to ``"off"`` (DESIGN.md §10).
    order:
        Vertex ordering of the enumeration side V applied during
        preprocessing (§5): ``"degree"`` (static ascending degree, the
        paper's default), ``"degeneracy"`` (2-hop degeneracy peeling,
        ooMBEA-style), or ``"none"`` (keep input order).  The enumerated
        biclique set is identical for every ordering — only the tree
        shape, and hence the modeled cycles, changes — which is why the
        autotuner (:mod:`repro.tuning`) treats it as just another knob.
    """

    bound_height: int = 20
    bound_size: int = 1500
    warps_per_sm: int = 16
    prune: bool = True
    scheduling: str = "task"
    node_reuse: bool = True
    set_backend: str = "auto"
    max_task_retries: int = 3
    batch_tasks: int | str = "auto"
    order: str = "degree"

    def __post_init__(self) -> None:
        if self.bound_height <= 0 or self.bound_size <= 0:
            raise ValueError("bounds must be positive")
        if self.warps_per_sm <= 0:
            raise ValueError("warps_per_sm must be positive")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")
        if self.scheduling not in ("task", "warp", "block"):
            raise ValueError(f"unknown scheduling {self.scheduling!r}")
        if self.set_backend not in ("sorted", "bitset", "auto"):
            raise ValueError(f"unknown set_backend {self.set_backend!r}")
        if self.order not in ("degree", "degeneracy", "none"):
            raise ValueError(f"unknown order {self.order!r}")
        bt = self.batch_tasks
        if isinstance(bt, bool) or not isinstance(bt, (int, str)):
            raise ValueError(
                f"batch_tasks must be 'off', 'auto', or a positive int, "
                f"got {bt!r}"
            )
        if isinstance(bt, str) and bt not in ("off", "auto"):
            raise ValueError(f"unknown batch_tasks {bt!r}")
        if isinstance(bt, int) and bt <= 0:
            raise ValueError("batch_tasks int must be positive")

    def with_(self, **changes) -> "GMBEConfig":
        """Functional update, e.g. ``cfg.with_(prune=False)``."""
        return replace(self, **changes)

    def signature(self) -> tuple[tuple[str, object], ...]:
        """Stable, hashable field snapshot in field-name order.

        :mod:`repro.service` folds this into its content-addressed cache
        key so two jobs share a result only when *every* knob matches —
        stable across processes, unlike ``hash(self)``.
        """
        return tuple(sorted(asdict(self).items()))

    # ------------------------------------------------------------------
    # Serialization (the tuned-config store and checkpoints persist
    # configs as JSON; the round trip must be exact).
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Stable JSON object of every knob, in field-declaration order."""
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)}
        )

    @classmethod
    def from_dict(cls, data: dict) -> "GMBEConfig":
        """Build a config from a mapping, rejecting unknown keys.

        Missing keys take their defaults (a config written before a knob
        existed still loads); unknown keys raise :class:`ValueError`
        naming both the offender and the valid field set, so a typo in a
        hand-edited store entry fails loudly instead of being ignored.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"GMBEConfig JSON must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown GMBEConfig key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "GMBEConfig":
        """Inverse of :meth:`to_json`; :class:`ValueError` on bad input."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"GMBEConfig JSON is malformed: {exc}") from exc
        return cls.from_dict(data)


DEFAULT_CONFIG = GMBEConfig()
