"""The node-reuse ``node_buf`` structure (paper §4.1, Alg. 2, Fig. 5).

One :class:`NodeBuffer` holds an entire subtree traversal in a fixed
region: the root node's ``L_r``/``R_r``/``C_r`` plus a per-vertex *depth*
field, per-candidate *local neighborhood size*, and the traversed-vertex
stack.  ``push``/``pop`` derive every descendant node in place, so the
modeled GPU footprint is ``3·Δ(V) + 2·Δ2(V)`` words per concurrent
procedure instead of ``Δ(V)·(Δ(V)+Δ2(V))`` (§3.1) — the 49×–4,819×
saving of Fig. 7.

Candidate states (one int per candidate in ``C_r``):

- ``INF``   — currently a candidate;
- ``d ≥ 1`` — joined ``R`` at depth ``d`` (still there at depths ≥ d);
- ``-d``    — excluded while the node at depth ``d-1`` is active
  (traversed there, dropped to zero local neighbors, or pruned by the
  §4.2 rule); restored to candidate when that node pops.

Root vertices of ``L_r ∪ R_r`` carry depth 0; the root's ``R_r`` never
changes, so only candidates track membership transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..core import bitset
from ..core.bicliques import Counters
from ..core.bitset import BitsetUniverse
from ..core.expand import gamma_matches
from ..core.localcount import LocalCounter

__all__ = ["NodeBuffer", "INF_DEPTH", "PushOutcome"]

#: Sentinel depth for "still a candidate" (the paper's ∞).
INF_DEPTH = np.iinfo(np.int64).max


@dataclass
class _Frame:
    """Per-depth undo log — what a ``pop`` must revert."""

    traversed_idx: int
    #: candidate indices whose nls changed, with prior values
    nls_undo_idx: np.ndarray
    nls_undo_val: np.ndarray
    #: candidate indices to exclude at the parent once this node pops
    pending_prune: np.ndarray
    #: number of candidates that joined R at this depth
    joined: int
    maximal: bool = field(default=False)


@dataclass
class PushOutcome:
    """What :meth:`NodeBuffer.push` reports about the new node."""

    maximal: bool
    left_size: int
    right_size: int
    n_candidates: int
    work: int


class NodeBuffer:
    """Reusable enumeration node for one subtree (see module docs).

    Parameters mirror a root task: ``left = L_r``, ``right = R_r``,
    ``cands = C_r`` with ``counts`` their local neighborhood sizes
    against ``L_r``.

    When ``universe`` is given (a :class:`repro.core.bitset.BitsetUniverse`
    covering ``left`` and every candidate/check vertex) the buffer runs
    the set kernels on packed bitsets: ``L`` lives as a word mask per
    depth, the counting pass is one batched AND+popcount over the
    candidates' packed rows, and the maximality check scans the whole
    scope.  All structural state (depths, candidate states, nls) and
    every enumeration outcome are identical to sorted mode; only the
    modeled work units differ.  The universe's packed rows are per-task
    adjacency (like the graph itself), so they are *not* part of the
    §4.1 per-node :meth:`memory_words` accounting.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        counter: LocalCounter,
        left: np.ndarray,
        right: np.ndarray,
        cands: np.ndarray,
        counts: np.ndarray,
        *,
        prune: bool = True,
        counters: Counters | None = None,
        universe: BitsetUniverse | None = None,
    ) -> None:
        self._graph = graph
        self._counter = counter
        self._prune = prune
        self.counters = counters if counters is not None else Counters()
        self.left_root = np.asarray(left, dtype=np.int32)
        self.right_root = np.asarray(right, dtype=np.int32)
        self.cands_root = np.asarray(cands, dtype=np.int32)
        self.depth_l = np.zeros(len(self.left_root), dtype=np.int64)
        self.cand_state = np.full(len(self.cands_root), INF_DEPTH, dtype=np.int64)
        self.nls = np.asarray(counts, dtype=np.int64).copy()
        self._frames: list[_Frame] = []
        self._right_size = len(self.right_root)
        self._universe = universe
        if universe is not None:
            # left/cands may be a subset of the universe (split children
            # share their root's universe), so map through positions.
            self._left_pos = universe.left_positions(self.left_root)
            self._cand_rows = universe.row_index(self.cands_root)
            self._mask_stack = [
                bitset.from_sorted(self._left_pos, universe.n_bits)
            ]

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Depth of the current node (root task = 0)."""
        return len(self._frames)

    def current_left(self) -> np.ndarray:
        """``L`` of the current node."""
        return self.left_root[self.depth_l == self.depth]

    def current_right(self) -> np.ndarray:
        """``R`` of the current node (sorted)."""
        joined = self.cands_root[
            (self.cand_state >= 1) & (self.cand_state <= self.depth)
        ]
        return np.sort(np.concatenate([self.right_root, joined]))

    def candidate_indices(self) -> np.ndarray:
        """Indices (into ``C_r``) of the current node's candidates."""
        return np.nonzero(self.cand_state == INF_DEPTH)[0]

    def next_candidate(self) -> int | None:
        """Index of the smallest-id untraversed candidate, or ``None``.

        ``C_r`` is id-sorted, so the first ``INF`` slot is the smallest —
        Alg. 2 line #6.
        """
        if len(self.cand_state) == 0:
            return None
        idx = np.argmax(self.cand_state == INF_DEPTH)
        if self.cand_state[idx] != INF_DEPTH:
            return None
        return int(idx)

    # ------------------------------------------------------------------
    def push(self, cand_idx: int) -> PushOutcome:
        """Traverse candidate ``cand_idx``, deriving the child in place.

        Performs node generation (Alg. 2 lines #8–13), the §4.2 pruning
        bookkeeping, and the maximality check (line #14).  The child
        becomes the current node whether or not it is maximal; callers
        that see ``maximal == False`` must :meth:`pop` immediately
        (the paper never descends into non-maximal nodes).
        """
        if self.cand_state[cand_idx] != INF_DEPTH:
            raise ValueError("push target is not a current candidate")
        graph = self._graph
        new_depth = self.depth + 1
        v_prime = int(self.cands_root[cand_idx])
        cur_left_idx = np.nonzero(self.depth_l == self.depth)[0]
        # Candidates before the state update; v' is among them.
        cand_idxs = self.candidate_indices()
        new_mask = None
        if self._universe is not None:
            # Packed path: L' = L & row(v'), then one batched popcount
            # pass over the candidates' rows — no ragged gather.
            u = self._universe
            new_mask = self._mask_stack[-1] & u.rows[self._cand_rows[cand_idx]]
            self.counters.charge_bitset(1, u.n_words)
            in_new_left = bitset.test_bits(new_mask, self._left_pos[cur_left_idx])
            n_new_left = int(np.count_nonzero(in_new_left))
            new_left = None
            counts, gathered = self._counter.counts_vs_mask(
                u, self._cand_rows[cand_idxs], new_mask, self.counters
            )
            work = u.n_words + gathered
            self._mask_stack.append(new_mask)
        else:
            cur_left = self.left_root[cur_left_idx]
            n_vp = graph.neighbors_v(v_prime)
            work = len(cur_left) + len(n_vp)
            # L' membership: stamp N(v') and test current L against it.
            self._counter.set_left(n_vp.astype(np.int64))
            in_new_left = self._counter.membership(cur_left)
            new_left = cur_left[in_new_left]
            n_new_left = len(new_left)
            self.counters.charge(len(cur_left), len(n_vp))
            self._counter.set_left(new_left)
            self.counters.charge(n_new_left, 0)  # stamping L'
            counts, gathered = self._counter.counts(
                self.cands_root[cand_idxs].astype(np.int64), self.counters
            )
            work += gathered + n_new_left
        self.counters.nodes_generated += 1

        old_nls = self.nls[cand_idxs]
        full = counts == n_new_left
        dropped = counts == 0
        unchanged = counts == old_nls

        # Depth updates: L' members advance to the child's depth.
        left_global = cur_left_idx[in_new_left]
        self.depth_l[left_global] = new_depth
        # Fully-connected candidates (v' included) join R at this depth.
        joined_idx = cand_idxs[full]
        self.cand_state[joined_idx] = new_depth
        # Zero-local-neighborhood candidates leave C while the *child* is
        # active (they remain candidates at the parent): marker
        # -(new_depth + 1) is lifted by the child's own pop.
        self.cand_state[cand_idxs[dropped]] = -(new_depth + 1)
        # nls undo log + update for surviving candidates.
        changed = counts != old_nls
        undo_idx = cand_idxs[changed]
        undo_val = old_nls[changed]
        self.nls[cand_idxs] = counts

        # §4.2 pruning: siblings with unchanged |N_L| will be excluded at
        # the parent as soon as this child pops (Thm 4.1).
        if self._prune:
            prune_mask = unchanged & (cand_idxs != cand_idx)
            pending = cand_idxs[prune_mask]
        else:
            pending = np.empty(0, dtype=np.int64)

        self._right_size += int(len(joined_idx))
        maximal = gamma_matches(
            graph,
            new_left,
            self._right_size,
            self.counters,
            universe=self._universe,
            left_mask=new_mask,
        )
        if maximal:
            self.counters.maximal += 1
        else:
            self.counters.non_maximal += 1
        self._frames.append(
            _Frame(
                traversed_idx=cand_idx,
                nls_undo_idx=undo_idx,
                nls_undo_val=undo_val,
                pending_prune=pending,
                joined=int(len(joined_idx)),
                maximal=maximal,
            )
        )
        if len(self._frames) > self.counters.peak_stack_depth:
            self.counters.peak_stack_depth = len(self._frames)
        n_cands = int(np.count_nonzero(self.cand_state == INF_DEPTH))
        return PushOutcome(
            maximal=maximal,
            left_size=n_new_left,
            right_size=self._right_size,
            n_candidates=n_cands,
            work=work,
        )

    def pop(self) -> None:
        """Backtrack to the parent node, undoing the last push."""
        if not self._frames:
            raise IndexError("pop from root node")
        depth = self.depth
        frame = self._frames.pop()
        if self._universe is not None:
            self._mask_stack.pop()
        # L members restored.
        self.depth_l[self.depth_l == depth] = depth - 1
        # Candidates that joined R here become candidates again...
        self.cand_state[self.cand_state == depth] = INF_DEPTH
        # ...and exclusions made while this node was active are lifted.
        self.cand_state[self.cand_state == -(depth + 1)] = INF_DEPTH
        # nls reverts to the parent's values.
        self.nls[frame.nls_undo_idx] = frame.nls_undo_val
        # The traversed vertex leaves C at the parent; pruned siblings too.
        self.cand_state[frame.traversed_idx] = -depth
        if len(frame.pending_prune):
            still = self.cand_state[frame.pending_prune] == INF_DEPTH
            pruned = frame.pending_prune[still]
            self.cand_state[pruned] = -depth
            self.counters.pruned += int(len(pruned))
        self._right_size -= frame.joined

    # ------------------------------------------------------------------
    def memory_words(self) -> int:
        """Modeled GPU words held by this buffer (§4.1 accounting).

        ``|L_r|`` ids + ``|L_r|`` depths + ``|C_r|`` ids + ``|C_r|``
        states + ``|C_r|`` nls + traversed stack (≤ ``|L_r|``) —
        the paper's ``3·Δ(V) + 2·Δ2(V)`` bound with ``|L_r| ≤ Δ(V)`` and
        ``|C_r| ≤ Δ2(V)``.
        """
        return 3 * len(self.left_root) + 3 * len(self.cands_root)
