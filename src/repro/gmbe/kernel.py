"""GMBE on the simulated GPU — Alg. 4 end to end.

:func:`gmbe_gpu` runs the *actual* enumeration (every set operation is
executed for real, so the bicliques are exact) while a discrete-event
persistent-thread simulation decides *when* each piece of work runs and
*how long* it takes in modeled warp-steps.  The three scheduling schemes
of the paper are supported:

- ``"task"``  — load-aware task-centric GMBE: oversized tasks
  (``min(|L|,|C|) > bound_height`` **and** ``min(|L|,|C|)·|C| >
  bound_size``) are split one level and re-enqueued on the two-level
  queues; dequeued children pay the Alg. 4 line #16 maximality check.
- ``"warp"``  — GMBE-WARP: one whole enumeration tree per warp.
- ``"block"`` — GMBE-BLOCK: one tree per thread block; the block's
  warps cooperate on the data-parallel portion of each node.

Robustness (DESIGN.md §9).  With a fault plan or a checkpoint path the
kernel switches into lineage-tracked mode: every task carries a stable
lineage id (root vertex × split path), every emission is keyed by
``(lineage, seq)`` in an exactly-once ledger (so a re-executed crashed
task cannot double-report a biclique), and the enumeration frontier is
periodically snapshotted so a killed run resumes bit-identically.

Returned ``sim_time`` is simulated seconds on the given device(s);
``extras`` carries the scheduler report, per-GPU times, active-SM
timeline recorders, queue statistics, and the modeled warp execution
efficiency.
"""

from __future__ import annotations

import operator
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core import sets
from ..core.batch import (
    BatchMember,
    BatchStats,
    batch_gamma_matches,
    run_batch,
)
from ..core.bicliques import (
    BicliqueCounter,
    BicliqueSink,
    Counters,
    EnumerationResult,
)
from ..core.expand import expand_node, gamma_matches
from ..core.localcount import LocalCounter
from ..core.runner import relabeling_sink
from ..core.tasks import build_root_task
from ..checkpoint import (
    CheckpointWriter,
    EmissionRecord,
    Snapshot,
    TaskRecord,
    load_checkpoint,
)
from ..graph.bipartite import BipartiteGraph
from ..graph.preprocess import prepare
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.faults import FaultPlan
from ..gpusim.scheduler import ExecOutcome, PersistentThreadScheduler
from ..telemetry import (
    NULL_TRACER,
    current_telemetry,
    register_counters,
    register_sim_report,
)
from .config import DEFAULT_CONFIG, GMBEConfig
from .host import run_task_with_node_buffer

__all__ = ["SubtreeTask", "gmbe_gpu"]


@dataclass
class SubtreeTask:
    """A queued enumeration-tree task (root of one subtree).

    Field names intentionally match :class:`repro.core.tasks.RootTask`
    so :func:`run_task_with_node_buffer` accepts either.
    """

    left: np.ndarray
    right: np.ndarray
    cands: np.ndarray
    counts: np.ndarray
    #: split children must re-verify ``R == Γ(L)`` at dequeue time
    needs_check: bool = False
    #: packed-bitset universe of the owning root task (split children
    #: share their root's universe; ``left``/``cands`` stay subsets)
    universe: object | None = None
    #: stable identity across retries/requeues: ``(root_v,)`` for a
    #: root task, ``parent_lineage + (child_index,)`` for a split child
    lineage: tuple = ()

    def estimated_height(self) -> int:
        return min(len(self.left), len(self.cands))

    def estimated_size(self) -> int:
        return self.estimated_height() * len(self.cands)


def _discard_sink(left, right) -> None:
    """Sink for re-executed tasks: emissions are known duplicates."""


#: Padded-cell budget for one stacked batch: caps both the scope matrix
#: (``k·S_max·W_max`` words) and the per-depth stacks (``k·D_max·C_max``
#: cells) so an outlier task cannot blow the rectangular padding up.
_BATCH_CELL_CAP = 1 << 21

#: Batch size used by ``batch_tasks="auto"``.
_AUTO_BATCH = 32


@dataclass
class _BatchSlot:
    """One member's in-flight state while its batch outcome is computed."""

    task: "SubtreeTask"
    counters: Counters
    emissions: list = field(default_factory=list)
    #: first ledger sequence number: 0 when the slot's own node biclique
    #: is among the emissions (dequeue-checked split children), else 1
    first_seq: int = 1
    base: float = 0.0
    failed: bool = False

    def sink(self, left, right) -> None:
        self.emissions.append((left, right))


@dataclass
class _BatchedOutcome:
    """A precomputed execute() result, delivered at consume time."""

    cycles: float
    counters: Counters
    emissions: list
    first_seq: int


def _should_split(task, config: GMBEConfig) -> bool:
    return (
        config.scheduling == "task"
        and task.estimated_height() > config.bound_height
        and task.estimated_size() > config.bound_size
    )


class _EmissionLedger:
    """Exactly-once emission gate at task granularity.

    ``seq 0`` is a task's own node biclique (reported at root-pull time
    for roots, at the dequeue maximality check for split children);
    subtree emissions take 1..N in deterministic traversal order.  The
    simulator delivers a crashed task's emissions atomically — execute
    runs to completion before the fault lands — so a retry re-produces
    the *entire* identical sequence.  Duplicates are therefore
    suppressed per task: one ``executed`` membership test at dequeue
    instead of a set operation per emission (the fault-overhead gate
    budget is 5%, see ``benchmarks/bench_faults.py``).  The ``executed``
    set is checkpointed explicitly: it cannot be derived from the
    records because a root's seq-0 emission happens at pull time, before
    its task ever executes.  The retained records double as the
    checkpoint's result replay.
    """

    __slots__ = ("sink", "executed", "records")

    def __init__(self, sink, *, keep_records: bool) -> None:
        self.sink = sink
        #: lineages whose execute() has already delivered emissions
        self.executed: set = set()
        #: retained only when a checkpoint is being written — the
        #: copies are the dominant robust-mode cost otherwise
        self.records: list[EmissionRecord] | None = (
            [] if keep_records else None
        )

    def mark_executed(self, lineage: tuple) -> bool:
        """Record that ``lineage`` is executing; True if it already did
        (the caller must then suppress every emission of this run)."""
        if lineage in self.executed:
            return True
        self.executed.add(lineage)
        return False

    def emit(self, lineage: tuple, seq: int, left, right) -> None:
        if self.records is not None:
            # copy: callers hand out views into reused node buffers
            self.records.append(
                EmissionRecord(lineage, seq, left.copy(), right.copy())
            )
        self.sink(left, right)

    def preload(self, records, executed) -> None:
        """Seed from checkpoint state, replaying each record into the
        sink so a resumed run reports the complete biclique set."""
        self.executed.update(executed)
        for rec in records:
            if self.records is not None:
                self.records.append(rec)
            self.sink(
                np.asarray(rec.left, dtype=np.int32),
                np.asarray(rec.right, dtype=np.int32),
            )


def _register_run_telemetry(
    telemetry, tracer, report, master, dev, split_overhead_cycles,
    batch_stats=None,
) -> None:
    """Fold one run's statistics into the unified registry and re-emit
    the fault log as correlated trace events.

    Runs once per enumeration (never per task), inside the ``sim.kernel``
    span so every event inherits its span/trace/job correlation ids.
    The phase counters decompose the modeled kernel time the way the
    paper's §6.2 profiles do: set-op SIMT cycles, node (stack push/pop)
    overhead, queue acquisition, split overhead, watchdog stalls.
    """
    registry = telemetry.registry
    register_counters(registry, master)
    register_sim_report(registry, report)
    phases = report.phase_cycles or {}
    registry.counter("sim.phase.set_op_cycles").add(master.simt_cycles)
    registry.counter("sim.phase.node_overhead_cycles").add(
        dev.node_overhead_cycles * master.nodes_generated
    )
    registry.counter("sim.phase.queue_acquire_cycles").add(
        phases.get("queue_acquire", 0.0)
    )
    registry.counter("sim.phase.execute_cycles").add(
        phases.get("execute", 0.0)
    )
    registry.counter("sim.phase.watchdog_cycles").add(
        phases.get("watchdog", 0.0)
    )
    registry.counter("sim.phase.split_cycles").add(split_overhead_cycles)
    if batch_stats is not None:
        registry.counter("sim.batch.rounds").add(batch_stats.rounds)
        batch_hist = registry.histogram("sim.batch.tasks_per_round")
        for n in batch_stats.tasks_per_round:
            batch_hist.record(n)
    depth_hist = registry.histogram("sim.queue.device_depth")
    for _time, _dev_id, depth in report.queue_depth_samples:
        depth_hist.record(depth)
    split_hist = registry.histogram("sim.split.children")
    for time_cycles, dev_id, n_children in report.split_events:
        split_hist.record(n_children)
        tracer.event(
            "task.split",
            sim_time_cycles=time_cycles,
            device=dev_id,
            children=n_children,
        )
    if report.fault_log is not None:
        for ev in report.fault_log.events:
            tracer.event(
                f"fault.{ev.kind}",
                site=ev.site,
                sim_time_cycles=ev.time,
                device=ev.device,
                sm=ev.sm,
                lineage=list(ev.lineage) if ev.lineage is not None else None,
                **ev.detail,
            )


def gmbe_gpu(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    config: GMBEConfig = DEFAULT_CONFIG,
    device: DeviceSpec = A100,
    n_gpus: int = 1,
    relabel: bool = True,
    local_queue_capacity: int = 64,
    root_pull_surcharges: list[float] | None = None,
    root_mask=None,
    fault_plan=None,
    checkpoint_path=None,
    checkpoint_every: int = 256,
    resume: bool = False,
    halt_after_tasks: int | None = None,
    telemetry=None,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with GMBE on simulated GPUs.

    Parameters
    ----------
    graph:
        Input bipartite graph (any labeling; preprocessing per §5).
    sink:
        Optional ``sink(L, R)`` receiving every maximal biclique.
    config:
        GMBE knobs (bounds, WarpPerSM, pruning, scheduling scheme).
    device:
        Simulated GPU model; its ``warps_per_sm`` is overridden by
        ``config.warps_per_sm``.
    n_gpus:
        Device count; the root counter is shared (atomicInc_system, §5)
        while task queues stay per-device.
    root_pull_surcharges:
        Optional per-GPU extra cycles on every shared-counter pull —
        the hook :func:`repro.gmbe.cluster.gmbe_cluster` uses to model
        cross-machine atomics in the distributed extension.
    root_mask:
        Optional boolean array over the **prepared** V space (length
        ``n_v`` after :func:`~repro.graph.preprocess.prepare`): only
        vertices with a True entry are pulled and built as root tasks.
        This is the :mod:`repro.sharding` ownership hook — a masked run
        enumerates exactly the maximal bicliques whose canonical
        minimum R-vertex (in prepared order) is inside the mask,
        because the per-vertex dedup rule assigns each biclique to that
        root's task and nothing else about a subtree depends on the
        mask.  Skipped vertices cost zero modeled cycles (their owner
        shard charges them).  Checkpoints of a masked run record the
        usual ``root_cursor`` frontier; resuming requires the same mask.
    fault_plan:
        Optional :class:`~repro.gpusim.faults.FaultPlan` (or replay
        plan).  Attaching one enables lineage tracking and the
        exactly-once emission ledger; the final biclique set is
        bit-identical to a fault-free run as long as no lineage exceeds
        ``config.max_task_retries`` failures.
    checkpoint_path:
        Write a resumable :class:`~repro.checkpoint.Snapshot` here every
        ``checkpoint_every`` completed tasks (and at a halt); the file
        is removed when the run finishes cleanly.
    resume:
        Load ``checkpoint_path`` and continue the interrupted run: the
        snapshot's emissions are replayed into ``sink``, its pending
        tasks re-enqueued, the root cursor and fault-plan cursor
        restored.  The resumed result equals an uninterrupted run.
    halt_after_tasks:
        Stop after this many completed tasks (the kill switch the
        checkpoint tests and ``--halt-after-tasks`` use); the final
        frontier is snapshotted if a checkpoint path is set.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  When omitted the
        ambient one is discovered via
        :func:`~repro.telemetry.current_telemetry` (the broker plants
        it before the thread hop).  An enabled telemetry wraps the run
        in a ``sim.kernel`` span (inheriting the caller's ``job_id``),
        attributes per-phase cycles/queue depth/splits into the metrics
        registry, and re-emits fault-log entries as trace events —
        every one carrying the span's correlation ids.  ``None`` or a
        disabled telemetry costs one check up front and nothing per
        task.
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires checkpoint_path")
    prepared = prepare(graph, order=config.order)
    g = prepared.graph
    if root_mask is not None:
        root_mask = np.asarray(root_mask, dtype=bool)
        if root_mask.shape != (g.n_v,):
            raise ValueError(
                f"root_mask must cover the prepared V side: expected "
                f"shape ({g.n_v},), got {root_mask.shape}"
            )
    dev = device.with_(warps_per_sm=config.warps_per_sm)
    counting = BicliqueCounter()
    inner = None if sink is None else (
        relabeling_sink(prepared, sink) if relabel else sink
    )

    def emit(left: np.ndarray, right: np.ndarray) -> None:
        counting(left, right)
        if inner is not None:
            inner(left, right)

    robust = (
        fault_plan is not None
        or checkpoint_path is not None
        or halt_after_tasks is not None
    )

    if telemetry is None:
        telemetry = current_telemetry()
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    tracer = telemetry.tracer if telemetry is not None else NULL_TRACER
    #: split-overhead cycle accumulator; ``None`` keeps the split path
    #: untouched when telemetry is off
    split_cycles = [0.0] if telemetry is not None else None

    # ------------------------------------------------------------------
    # Resume: load + validate the snapshot before any work happens.
    # ------------------------------------------------------------------
    snapshot = None
    if resume:
        snapshot = load_checkpoint(checkpoint_path)
        snapshot.validate_against(
            graph_fingerprint=graph.fingerprint,
            config_signature=config.signature(),
            device_name=dev.name,
            n_gpus=n_gpus,
        )
        if snapshot.fault_plan is not None:
            state = snapshot.fault_plan
            if state.get("type") == "ReplayFaultPlan":
                if fault_plan is None:
                    raise ValueError(
                        "checkpoint was recorded under a replayed fault "
                        "log; pass the same replay plan to resume"
                    )
                fault_plan.cursor = int(state.get("cursor", 0))
            else:
                fault_plan = FaultPlan.from_state(state)

    ledger = (
        _EmissionLedger(emit, keep_records=checkpoint_path is not None)
        if robust
        else None
    )
    #: without records to retain, the ledger does no per-emission work
    #: (dedup is per task via ``mark_executed``) — emit straight to the
    #: sink so zero-fault robust runs pay nothing per biclique
    keep_records = ledger is not None and ledger.records is not None
    #: hot-path alias for the per-task dedup set (None when not robust)
    executed_set = ledger.executed if ledger is not None else None
    master = Counters()
    base_elapsed = 0.0
    base_tasks_executed = 0
    base_tasks_split = 0
    start_root = 0
    initial_tasks: list[tuple[SubtreeTask, int]] = []
    if snapshot is not None:
        for name, value in snapshot.counters.items():
            if hasattr(master, name):
                setattr(master, name, value)
        ledger.preload(snapshot.emissions, snapshot.executed)
        base_elapsed = snapshot.elapsed_cycles
        base_tasks_executed = snapshot.tasks_executed
        base_tasks_split = snapshot.tasks_split
        start_root = snapshot.root_cursor
        for rec in snapshot.tasks:
            # Restored tasks run on the sorted backend (universe=None):
            # the enumerated bicliques are bit-identical across
            # backends, so only modeled work units shift.
            initial_tasks.append((
                SubtreeTask(
                    left=np.asarray(rec.left, dtype=np.int32),
                    right=np.asarray(rec.right, dtype=np.int32),
                    cands=np.asarray(rec.cands, dtype=np.int32),
                    counts=np.asarray(rec.counts, dtype=np.int64),
                    needs_check=rec.needs_check,
                    universe=None,
                    lineage=rec.lineage,
                ),
                rec.retries,
            ))

    counter = LocalCounter(g)
    efficiency = dev.warp_efficiency()

    if config.scheduling == "block":
        units_per_sm = 1
        k = dev.warps_per_sm
        f = dev.block_parallel_fraction

        def duration(c: Counters) -> float:
            data = c.simt_cycles * ((1.0 - f) + f / k)
            serial = dev.node_overhead_cycles * max(c.nodes_generated, 1)
            return (data + serial) / efficiency

    else:
        units_per_sm = dev.warps_per_sm

        def duration(c: Counters) -> float:
            data = c.simt_cycles
            serial = dev.node_overhead_cycles * max(c.nodes_generated, 1)
            return (data + serial) / efficiency

    backend_tally = {"sorted": 0, "bitset": 0}
    #: next V vertex the shared atomic counter will hand out — part of
    #: the checkpointed frontier.
    root_cursor = [start_root]

    #: roots built ahead of the shared counter by the batch gatherer:
    #: ``(v_s, cycles, task | None, build_counters, backend | None)``.
    #: Everything observable — ``root_cursor``, ``master`` merge, the
    #: seq-0 emission, backend tally — still happens at *yield* time, so
    #: checkpoints and the emission ledger are independent of lookahead.
    lookahead: deque = deque()
    build_cursor = [start_root]

    def _build_next_root() -> SubtreeTask | None:
        """Build the next root task into ``lookahead`` (pull deferred).

        With a ``root_mask``, non-owned vertices are skipped outright —
        never built, never yielded, zero modeled cycles — so a shard
        pays only for the roots it owns.  The skip can exhaust the
        range without appending anything; callers tolerate an empty
        ``lookahead`` after a call.
        """
        v_s = build_cursor[0]
        if root_mask is not None:
            while v_s < g.n_v and not root_mask[v_s]:
                v_s += 1
            if v_s >= g.n_v:
                build_cursor[0] = v_s
                return None
        build_cursor[0] = v_s + 1
        c = Counters()
        rt = build_root_task(g, counter, v_s, c, backend=config.set_backend)
        cycles = duration(c)
        if rt is None:
            lookahead.append((v_s, cycles, None, c, None))
            return None
        c.maximal += 1
        task = SubtreeTask(
            left=rt.left,
            right=rt.right,
            cands=rt.cands,
            counts=rt.counts,
            needs_check=False,
            universe=rt.universe,
            lineage=(v_s,),
        )
        lookahead.append((v_s, cycles, task, c, rt.backend))
        return task

    def root_source() -> Iterator[tuple[float, SubtreeTask | None]]:
        while True:
            if not lookahead:
                if build_cursor[0] >= g.n_v:
                    return
                _build_next_root()
                if not lookahead:
                    return  # root_mask skipped the entire remaining range
            v_s, cycles, task, c, backend = lookahead.popleft()
            root_cursor[0] = v_s + 1
            master.merge(c)
            if task is None:
                yield cycles, None
                continue
            backend_tally[backend] += 1
            if keep_records:
                ledger.emit((v_s,), 0, task.left, task.right)
            else:
                emit(task.left, task.right)
            yield cycles, task

    # ------------------------------------------------------------------
    # Cross-task batched execution (DESIGN.md §10).  Compatible dense
    # tasks — queued siblings plus look-ahead roots — are *peeked*, their
    # outcomes computed in one vectorized lockstep pass, and the results
    # cached per lineage.  Emissions, counter merges, and cycles are only
    # delivered when each task's own execute() event fires, so the
    # simulated schedule, checkpoints, and fault interleavings are
    # bit-identical to batch_tasks="off".
    # ------------------------------------------------------------------
    if config.batch_tasks == "off":
        batch_limit = 0
    elif config.batch_tasks == "auto":
        batch_limit = _AUTO_BATCH
    else:
        batch_limit = int(config.batch_tasks)
    batch_cache: dict[tuple, _BatchedOutcome] = {}
    batch_stats = (
        BatchStats() if batch_limit and telemetry is not None else None
    )
    #: filled after scheduler construction (execute closes over it)
    sched_ref: list = []

    def _batch_eligible(t: SubtreeTask) -> bool:
        return t.universe is not None and not _should_split(t, config)

    def _compute_batch(seed: SubtreeTask, device_id: int) -> None:
        members = [seed]
        u = seed.universe
        dims = [
            len(u.scope),
            u.n_words,
            max(len(seed.cands), 1),
            min(len(seed.left), len(seed.cands)) + 2,
        ]

        def try_add(t: SubtreeTask) -> None:
            tu = t.universe
            smax = max(dims[0], len(tu.scope))
            wmax = max(dims[1], tu.n_words)
            cmax = max(dims[2], len(t.cands), 1)
            dmax = max(dims[3], min(len(t.left), len(t.cands)) + 2)
            kk = len(members) + 1
            if (
                kk * smax * wmax > _BATCH_CELL_CAP
                or kk * dmax * cmax > _BATCH_CELL_CAP
            ):
                return
            dims[0], dims[1], dims[2], dims[3] = smax, wmax, cmax, dmax
            members.append(t)

        dep = len(seed.lineage)
        if dep == 1:
            # Roots never sit in the queue (they are pulled straight off
            # the shared counter), so batch peers come from building
            # ahead; the observable pull stays at yield time.
            for entry in lookahead:
                if len(members) >= batch_limit:
                    break
                t = entry[2]
                if (
                    t is not None
                    and t.lineage not in batch_cache
                    and _batch_eligible(t)
                ):
                    try_add(t)
            builds = 0
            while (
                len(members) < batch_limit
                and build_cursor[0] < g.n_v
                and builds < 8 * batch_limit
            ):
                builds += 1
                t = _build_next_root()
                if t is not None and _batch_eligible(t):
                    try_add(t)
        if sched_ref and len(members) < batch_limit:
            seen = {m.lineage for m in members}

            def pred(p) -> bool:
                return (
                    isinstance(p, SubtreeTask)
                    and len(p.lineage) == dep
                    and p.lineage not in batch_cache
                    and p.lineage not in seen
                    and _batch_eligible(p)
                )

            for p in sched_ref[0].peek_pending(
                pred, batch_limit - len(members), device_id=device_id
            ):
                try_add(p)

        slots = [_BatchSlot(task=m, counters=Counters()) for m in members]
        checks = [s for s in slots if s.task.needs_check]
        if checks:
            oks = batch_gamma_matches(
                [s.task.universe for s in checks],
                [s.task.left for s in checks],
                [len(s.task.right) for s in checks],
                [s.counters for s in checks],
            )
            for s, ok in zip(checks, oks):
                if ok:
                    s.counters.maximal += 1
                    s.emissions.append((s.task.left, s.task.right))
                    s.first_seq = 0
                    s.base = duration(s.counters)
                else:
                    s.counters.non_maximal += 1
                    s.failed = True
        run_batch(
            [
                BatchMember(
                    universe=s.task.universe,
                    left=s.task.left,
                    right=s.task.right,
                    cands=s.task.cands,
                    counts=s.task.counts,
                    counters=s.counters,
                    sink=s.sink,
                )
                for s in slots
                if not s.failed
            ],
            prune=config.prune,
            stats=batch_stats,
        )
        for s in slots:
            cycles = (
                duration(s.counters)
                if s.failed
                else s.base + duration(s.counters)
            )
            batch_cache[s.task.lineage] = _BatchedOutcome(
                cycles, s.counters, s.emissions, s.first_seq
            )

    def _consume_batched(task: SubtreeTask, out: _BatchedOutcome) -> ExecOutcome:
        if executed_set is not None:
            lin = task.lineage
            suppress = lin in executed_set
            if not suppress:
                executed_set.add(lin)
        else:
            suppress = False
        if not suppress:
            if keep_records:
                lin = task.lineage
                seq = out.first_seq
                for left, right in out.emissions:
                    ledger.emit(lin, seq, left, right)
                    seq += 1
            else:
                for left, right in out.emissions:
                    emit(left, right)
        master.merge(out.counters)
        return ExecOutcome(cycles=out.cycles)

    def execute(task: SubtreeTask, _device_id: int) -> ExecOutcome:
        if batch_limit:
            out = batch_cache.pop(task.lineage, None)
            if out is None and _batch_eligible(task):
                _compute_batch(task, _device_id)
                out = batch_cache.pop(task.lineage)
            if out is not None:
                return _consume_batched(task, out)
        c = Counters()
        base = 0.0
        # A re-executed task (crash retry) re-produces its entire
        # emission sequence; suppress all of it in one membership check
        # (inlined mark_executed — this runs once per task).
        if executed_set is not None:
            lin = task.lineage
            suppress = lin in executed_set
            if not suppress:
                executed_set.add(lin)
        else:
            suppress = False
        if task.needs_check:
            ok = gamma_matches(
                g, task.left, len(task.right), c, universe=task.universe
            )
            if ok:
                c.maximal += 1
                if not suppress:
                    if keep_records:
                        ledger.emit(task.lineage, 0, task.left, task.right)
                    else:
                        emit(task.left, task.right)
            else:
                c.non_maximal += 1
                master.merge(c)
                return ExecOutcome(cycles=duration(c))
            base = duration(c)
        if _should_split(task, config):
            children: list[tuple[float, SubtreeTask]] = []
            elapsed = base
            remaining = task.cands
            remaining_counts = task.counts
            left_mask = (
                task.universe.mask_of_left_subset(task.left)
                if task.universe is not None
                else None
            )
            while len(remaining):
                gen = Counters()
                v_t = int(remaining[0])
                exp = expand_node(
                    g,
                    counter,
                    task.left,
                    v_t,
                    remaining,
                    gen,
                    universe=task.universe,
                    left_mask=left_mask,
                )
                gen.nodes_generated += 1
                child = SubtreeTask(
                    left=exp.left,
                    right=sets.union(task.right, exp.absorbed),
                    cands=exp.new_candidates,
                    counts=exp.new_counts,
                    needs_check=True,
                    universe=task.universe,
                    lineage=task.lineage + (len(children),),
                )
                elapsed += duration(gen) + dev.local_queue_cycles
                children.append((elapsed, child))
                c.merge(gen)
                if config.prune:
                    # §4.2 applies at split nodes too: siblings whose
                    # local neighborhood size is unchanged by this
                    # child's L' can only yield non-maximal nodes.
                    changed = exp.all_counts[1:] != remaining_counts[1:]
                    c.pruned += int(len(changed) - np.count_nonzero(changed))
                    remaining = remaining[1:][changed]
                    remaining_counts = remaining_counts[1:][changed]
                else:
                    remaining = remaining[1:]
                    remaining_counts = remaining_counts[1:]
            master.merge(c)
            if split_cycles is not None:
                split_cycles[0] += elapsed - base
            return ExecOutcome(cycles=elapsed, children=children)
        if suppress:
            run_task_with_node_buffer(
                g, counter, task, _discard_sink, c, prune=config.prune
            )
        elif keep_records:
            lin = task.lineage
            seq = [1]  # 0 is the task's own node biclique

            def task_sink(left: np.ndarray, right: np.ndarray) -> None:
                ledger.emit(lin, seq[0], left, right)
                seq[0] += 1

            run_task_with_node_buffer(
                g, counter, task, task_sink, c, prune=config.prune
            )
        else:
            run_task_with_node_buffer(
                g, counter, task, emit, c, prune=config.prune
            )
        master.merge(c)
        return ExecOutcome(cycles=base + duration(c))

    scheduler = PersistentThreadScheduler(
        devices=[dev] * n_gpus,
        units_per_sm=units_per_sm,
        root_source=root_source(),
        execute=execute,
        local_queue_capacity=local_queue_capacity,
        root_pull_surcharges=root_pull_surcharges,
        fault_plan=fault_plan,
        # attrgetter: C-level, called twice per task in the hot loop
        lineage_of=operator.attrgetter("lineage") if robust else None,
        max_task_retries=config.max_task_retries,
        halt_after_tasks=halt_after_tasks,
        initial_tasks=initial_tasks or None,
        collect_telemetry=telemetry is not None,
    )
    sched_ref.append(scheduler)

    writer = None
    if checkpoint_path is not None:
        writer = CheckpointWriter(checkpoint_path, every_tasks=checkpoint_every)

        def build_snapshot(now_cycles: float) -> Snapshot:
            tasks = [
                TaskRecord(
                    lineage=lineage,
                    left=[int(x) for x in payload.left],
                    right=[int(x) for x in payload.right],
                    cands=[int(x) for x in payload.cands],
                    counts=[int(x) for x in payload.counts],
                    needs_check=payload.needs_check,
                    retries=retries,
                )
                for lineage, payload, retries in scheduler.frontier()
            ]
            return Snapshot(
                graph_fingerprint=graph.fingerprint,
                config_signature=list(config.signature()),
                device_name=dev.name,
                n_gpus=n_gpus,
                root_cursor=root_cursor[0],
                n_roots=g.n_v,
                tasks=tasks,
                emissions=list(ledger.records),
                executed=sorted(ledger.executed),
                counters={
                    name: int(value)
                    for name, value in vars(master).items()
                },
                fault_plan=(
                    fault_plan.state() if fault_plan is not None else None
                ),
                elapsed_cycles=base_elapsed + now_cycles,
                tasks_executed=base_tasks_executed + scheduler.tasks_executed,
                tasks_split=base_tasks_split + scheduler.tasks_split,
            )

        def on_task_done(tasks_done: int, now_cycles: float) -> None:
            writer.maybe_write(tasks_done, lambda: build_snapshot(now_cycles))

        scheduler.on_task_done = on_task_done

    with tracer.span(
        "sim.kernel",
        scheduling=config.scheduling,
        device=dev.name,
        n_gpus=n_gpus,
        resumed=snapshot is not None,
    ) as kernel_span:
        scheduler.trace_span_id = kernel_span.span_id
        report = scheduler.run()
        if telemetry is not None:
            kernel_span.set_attr("tasks_executed", report.tasks_executed)
            kernel_span.set_attr("makespan_cycles", report.makespan_cycles)
            kernel_span.set_attr("n_maximal", counting.count)
            _register_run_telemetry(
                telemetry, tracer, report, master, dev, split_cycles[0],
                batch_stats,
            )
    if writer is not None:
        if report.halted:
            # Final frontier snapshot so a --resume picks up exactly here.
            writer.write(build_snapshot(report.makespan_cycles))
        else:
            writer.finalize_success()
    total_cycles = base_elapsed + report.makespan_cycles
    sim_seconds = dev.cycles_to_seconds(total_cycles)
    lane_util = (
        master.set_op_work / (32.0 * master.simt_cycles)
        if master.simt_cycles
        else 0.0
    )
    extras = {
        "report": report,
        "device": dev,
        "n_gpus": n_gpus,
        "per_gpu_seconds": [
            dev.cycles_to_seconds(t) for t in report.per_device_cycles
        ],
        "queue_stats": report.queue_stats,
        "warp_efficiency": lane_util,
        "units_per_sm": units_per_sm,
        "set_backend_tasks": backend_tally,
    }
    if robust:
        extras.update({
            "fault_log": report.fault_log,
            "tasks_requeued": report.tasks_requeued,
            "tasks_lost": report.tasks_lost,
            "halted": report.halted,
            "resumed": snapshot is not None,
            "checkpoint_writes": writer.writes if writer is not None else 0,
            "tasks_executed_total": (
                base_tasks_executed + report.tasks_executed
            ),
        })
    return EnumerationResult(
        n_maximal=counting.count,
        counters=master,
        sim_time=sim_seconds,
        extras=extras,
    )
