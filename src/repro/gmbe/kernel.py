"""GMBE on the simulated GPU — Alg. 4 end to end.

:func:`gmbe_gpu` runs the *actual* enumeration (every set operation is
executed for real, so the bicliques are exact) while a discrete-event
persistent-thread simulation decides *when* each piece of work runs and
*how long* it takes in modeled warp-steps.  The three scheduling schemes
of the paper are supported:

- ``"task"``  — load-aware task-centric GMBE: oversized tasks
  (``min(|L|,|C|) > bound_height`` **and** ``min(|L|,|C|)·|C| >
  bound_size``) are split one level and re-enqueued on the two-level
  queues; dequeued children pay the Alg. 4 line #16 maximality check.
- ``"warp"``  — GMBE-WARP: one whole enumeration tree per warp.
- ``"block"`` — GMBE-BLOCK: one tree per thread block; the block's
  warps cooperate on the data-parallel portion of each node.

Returned ``sim_time`` is simulated seconds on the given device(s);
``extras`` carries the scheduler report, per-GPU times, active-SM
timeline recorders, queue statistics, and the modeled warp execution
efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core import sets
from ..core.bicliques import (
    BicliqueCounter,
    BicliqueSink,
    Counters,
    EnumerationResult,
)
from ..core.expand import expand_node, gamma_matches
from ..core.localcount import LocalCounter
from ..core.runner import relabeling_sink
from ..core.tasks import build_root_task
from ..graph.bipartite import BipartiteGraph
from ..graph.preprocess import prepare
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.scheduler import ExecOutcome, PersistentThreadScheduler
from .config import DEFAULT_CONFIG, GMBEConfig
from .host import run_task_with_node_buffer

__all__ = ["SubtreeTask", "gmbe_gpu"]


@dataclass
class SubtreeTask:
    """A queued enumeration-tree task (root of one subtree).

    Field names intentionally match :class:`repro.core.tasks.RootTask`
    so :func:`run_task_with_node_buffer` accepts either.
    """

    left: np.ndarray
    right: np.ndarray
    cands: np.ndarray
    counts: np.ndarray
    #: split children must re-verify ``R == Γ(L)`` at dequeue time
    needs_check: bool = False
    #: packed-bitset universe of the owning root task (split children
    #: share their root's universe; ``left``/``cands`` stay subsets)
    universe: object | None = None

    def estimated_height(self) -> int:
        return min(len(self.left), len(self.cands))

    def estimated_size(self) -> int:
        return self.estimated_height() * len(self.cands)


def _should_split(task, config: GMBEConfig) -> bool:
    return (
        config.scheduling == "task"
        and task.estimated_height() > config.bound_height
        and task.estimated_size() > config.bound_size
    )


def gmbe_gpu(
    graph: BipartiteGraph,
    sink: BicliqueSink | None = None,
    *,
    config: GMBEConfig = DEFAULT_CONFIG,
    device: DeviceSpec = A100,
    n_gpus: int = 1,
    relabel: bool = True,
    local_queue_capacity: int = 64,
    root_pull_surcharges: list[float] | None = None,
) -> EnumerationResult:
    """Enumerate all maximal bicliques with GMBE on simulated GPUs.

    Parameters
    ----------
    graph:
        Input bipartite graph (any labeling; preprocessing per §5).
    sink:
        Optional ``sink(L, R)`` receiving every maximal biclique.
    config:
        GMBE knobs (bounds, WarpPerSM, pruning, scheduling scheme).
    device:
        Simulated GPU model; its ``warps_per_sm`` is overridden by
        ``config.warps_per_sm``.
    n_gpus:
        Device count; the root counter is shared (atomicInc_system, §5)
        while task queues stay per-device.
    root_pull_surcharges:
        Optional per-GPU extra cycles on every shared-counter pull —
        the hook :func:`repro.gmbe.cluster.gmbe_cluster` uses to model
        cross-machine atomics in the distributed extension.
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    prepared = prepare(graph, order="degree")
    g = prepared.graph
    dev = device.with_(warps_per_sm=config.warps_per_sm)
    counting = BicliqueCounter()
    inner = None if sink is None else (
        relabeling_sink(prepared, sink) if relabel else sink
    )

    def emit(left: np.ndarray, right: np.ndarray) -> None:
        counting(left, right)
        if inner is not None:
            inner(left, right)

    master = Counters()
    counter = LocalCounter(g)
    efficiency = dev.warp_efficiency()

    if config.scheduling == "block":
        units_per_sm = 1
        k = dev.warps_per_sm
        f = dev.block_parallel_fraction

        def duration(c: Counters) -> float:
            data = c.simt_cycles * ((1.0 - f) + f / k)
            serial = dev.node_overhead_cycles * max(c.nodes_generated, 1)
            return (data + serial) / efficiency

    else:
        units_per_sm = dev.warps_per_sm

        def duration(c: Counters) -> float:
            data = c.simt_cycles
            serial = dev.node_overhead_cycles * max(c.nodes_generated, 1)
            return (data + serial) / efficiency

    backend_tally = {"sorted": 0, "bitset": 0}

    def root_source() -> Iterator[tuple[float, SubtreeTask | None]]:
        for v_s in range(g.n_v):
            c = Counters()
            task = build_root_task(
                g, counter, v_s, c, backend=config.set_backend
            )
            cycles = duration(c)
            if task is None:
                master.merge(c)
                yield cycles, None
                continue
            backend_tally[task.backend] += 1
            c.maximal += 1
            master.merge(c)
            emit(task.left, task.right)
            yield cycles, SubtreeTask(
                left=task.left,
                right=task.right,
                cands=task.cands,
                counts=task.counts,
                needs_check=False,
                universe=task.universe,
            )

    def execute(task: SubtreeTask, _device_id: int) -> ExecOutcome:
        c = Counters()
        base = 0.0
        if task.needs_check:
            ok = gamma_matches(
                g, task.left, len(task.right), c, universe=task.universe
            )
            if ok:
                c.maximal += 1
                emit(task.left, task.right)
            else:
                c.non_maximal += 1
                master.merge(c)
                return ExecOutcome(cycles=duration(c))
            base = duration(c)
        if _should_split(task, config):
            children: list[tuple[float, SubtreeTask]] = []
            elapsed = base
            remaining = task.cands
            remaining_counts = task.counts
            left_mask = (
                task.universe.mask_of_left_subset(task.left)
                if task.universe is not None
                else None
            )
            while len(remaining):
                gen = Counters()
                v_t = int(remaining[0])
                exp = expand_node(
                    g,
                    counter,
                    task.left,
                    v_t,
                    remaining,
                    gen,
                    universe=task.universe,
                    left_mask=left_mask,
                )
                gen.nodes_generated += 1
                child = SubtreeTask(
                    left=exp.left,
                    right=sets.union(task.right, exp.absorbed),
                    cands=exp.new_candidates,
                    counts=exp.new_counts,
                    needs_check=True,
                    universe=task.universe,
                )
                elapsed += duration(gen) + dev.local_queue_cycles
                children.append((elapsed, child))
                c.merge(gen)
                if config.prune:
                    # §4.2 applies at split nodes too: siblings whose
                    # local neighborhood size is unchanged by this
                    # child's L' can only yield non-maximal nodes.
                    changed = exp.all_counts[1:] != remaining_counts[1:]
                    c.pruned += int(len(changed) - np.count_nonzero(changed))
                    remaining = remaining[1:][changed]
                    remaining_counts = remaining_counts[1:][changed]
                else:
                    remaining = remaining[1:]
                    remaining_counts = remaining_counts[1:]
            master.merge(c)
            return ExecOutcome(cycles=elapsed, children=children)
        run_task_with_node_buffer(
            g, counter, task, emit, c, prune=config.prune
        )
        master.merge(c)
        return ExecOutcome(cycles=base + duration(c))

    scheduler = PersistentThreadScheduler(
        devices=[dev] * n_gpus,
        units_per_sm=units_per_sm,
        root_source=root_source(),
        execute=execute,
        local_queue_capacity=local_queue_capacity,
        root_pull_surcharges=root_pull_surcharges,
    )
    report = scheduler.run()
    sim_seconds = dev.cycles_to_seconds(report.makespan_cycles)
    lane_util = (
        master.set_op_work / (32.0 * master.simt_cycles)
        if master.simt_cycles
        else 0.0
    )
    return EnumerationResult(
        n_maximal=counting.count,
        counters=master,
        sim_time=sim_seconds,
        extras={
            "report": report,
            "device": dev,
            "n_gpus": n_gpus,
            "per_gpu_seconds": [
                dev.cycles_to_seconds(t) for t in report.per_device_cycles
            ],
            "queue_stats": report.queue_stats,
            "warp_efficiency": lane_util,
            "units_per_sm": units_per_sm,
            "set_backend_tasks": backend_tally,
        },
    )
