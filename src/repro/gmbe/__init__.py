"""GMBE — the paper's contribution.

- :class:`NodeBuffer` — stack-based iteration with node reuse (§4.1);
- local-neighborhood-size pruning (§4.2), built into the buffer;
- :func:`gmbe_host` — sequential execution (correctness anchor);
- :func:`gmbe_gpu` — load-aware task-centric execution on the simulated
  GPU (§4.3, Alg. 4), including the GMBE-WARP / GMBE-BLOCK variants and
  multi-GPU scaling.
"""

from .cluster import ClusterSpec, gmbe_cluster
from .config import DEFAULT_CONFIG, GMBEConfig
from .host import gmbe_host, run_task_with_node_buffer
from .kernel import SubtreeTask, gmbe_gpu
from .node_buffer import INF_DEPTH, NodeBuffer, PushOutcome

__all__ = [
    "ClusterSpec",
    "DEFAULT_CONFIG",
    "GMBEConfig",
    "INF_DEPTH",
    "NodeBuffer",
    "PushOutcome",
    "SubtreeTask",
    "gmbe_cluster",
    "gmbe_gpu",
    "gmbe_host",
    "run_task_with_node_buffer",
]
