"""Independent certification of an enumeration output.

An artifact-evaluation tool: given a graph and a claimed set of maximal
bicliques (e.g. a ``BicliqueWriter`` output file), certify that the
claim is

- **sound** — every listed pair is a biclique and maximal;
- **duplicate-free**;
- **complete** — nothing is missing, checked against an independent
  re-enumeration (a different algorithm than the one that produced the
  claim, by default).

Exposed on the CLI as ``gmbe verify <graph> <bicliques-file>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .core import BicliqueCollector, imbea, mbea, oombea
from .core.bicliques import Biclique, verify_biclique
from .graph.bipartite import BipartiteGraph

__all__ = ["VerificationReport", "verify_enumeration", "parse_biclique_file"]

_ENUMERATORS = {"oombea": oombea, "imbea": imbea, "mbea": mbea}


@dataclass
class VerificationReport:
    """Outcome of certifying a claimed biclique set."""

    n_claimed: int
    duplicates: int = 0
    not_bicliques: list[Biclique] = field(default_factory=list)
    not_maximal: list[Biclique] = field(default_factory=list)
    missing: list[Biclique] = field(default_factory=list)
    spurious: list[Biclique] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.duplicates == 0
            and not self.not_bicliques
            and not self.not_maximal
            and not self.missing
            and not self.spurious
        )

    def summary(self) -> str:
        if self.ok:
            return f"OK: {self.n_claimed} maximal bicliques certified"
        parts = [f"FAILED ({self.n_claimed} claimed):"]
        if self.duplicates:
            parts.append(f"  {self.duplicates} duplicates")
        if self.not_bicliques:
            parts.append(f"  {len(self.not_bicliques)} are not bicliques")
        if self.not_maximal:
            parts.append(f"  {len(self.not_maximal)} are not maximal")
        if self.missing:
            parts.append(f"  {len(self.missing)} maximal bicliques missing")
        if self.spurious:
            parts.append(f"  {len(self.spurious)} not found by re-enumeration")
        return "\n".join(parts)


def parse_biclique_file(path: str | Path) -> list[Biclique]:
    """Parse a :class:`repro.core.BicliqueWriter` output file.

    Lines look like ``1,2,3 | 4,5``; blank lines and ``#`` comments are
    ignored.
    """
    out: list[Biclique] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        s = line.strip()
        if not s or s.startswith("#"):
            continue
        if "|" not in s:
            raise ValueError(f"line {lineno}: expected 'L | R', got {s!r}")
        left_s, right_s = s.split("|", 1)
        try:
            left = [int(x) for x in left_s.strip().split(",") if x]
            right = [int(x) for x in right_s.strip().split(",") if x]
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer id in {s!r}") from exc
        out.append(Biclique.make(left, right))
    return out


def verify_enumeration(
    graph: BipartiteGraph,
    claimed: Sequence[Biclique] | Iterable[Biclique],
    *,
    reference_algorithm: str = "oombea",
    deep_check: bool = True,
) -> VerificationReport:
    """Certify ``claimed`` as exactly the maximal bicliques of ``graph``.

    Parameters
    ----------
    reference_algorithm:
        Which independent enumerator to compare against (``oombea``,
        ``imbea`` or ``mbea``).
    deep_check:
        Also verify each claimed pair structurally (biclique-ness and
        maximality) — quadratic per biclique; disable for very large
        claims where the set comparison alone suffices.
    """
    if reference_algorithm not in _ENUMERATORS:
        raise ValueError(
            f"unknown reference {reference_algorithm!r}; "
            f"choose from {sorted(_ENUMERATORS)}"
        )
    claimed_list = list(claimed)
    report = VerificationReport(n_claimed=len(claimed_list))
    claimed_set = set(claimed_list)
    report.duplicates = len(claimed_list) - len(claimed_set)

    if deep_check:
        for b in claimed_set:
            is_bc, is_max = verify_biclique(graph, b.left, b.right)
            if not is_bc:
                report.not_bicliques.append(b)
            elif not is_max:
                report.not_maximal.append(b)

    collector = BicliqueCollector()
    _ENUMERATORS[reference_algorithm](graph, collector)
    truth = collector.as_set()
    report.missing = sorted(truth - claimed_set)
    report.spurious = sorted(claimed_set - truth)
    return report
