"""Versioned enumeration snapshots: format, validation, atomic I/O.

A :class:`Snapshot` captures everything a resumed run needs to finish
an interrupted enumeration bit-identically:

- identity guards: format version, graph fingerprint, config
  signature, device name, GPU count — a resume against the wrong
  graph/config/topology fails with an actionable error instead of
  silently producing a different biclique set;
- the frontier: ``root_cursor`` (next V vertex to pull from the shared
  atomic counter) and one :class:`TaskRecord` per pending subtree task
  (lineage, L/R/candidate arrays, retry count);
- the output so far: one :class:`EmissionRecord` per emitted biclique,
  keyed by ``(lineage, seq)`` — replayed into the sink on resume — plus
  the set of lineages that already executed, which seeds the ledger's
  per-task dedup so nothing is emitted twice;
- continuity state: work counters, elapsed simulated cycles, and the
  fault plan's ``(seed, cursor)`` so injected faults continue from
  where they stopped.

Files are JSON (arrays as int lists), written atomically via a temp
file + ``os.replace`` so a crash mid-write never corrupts the previous
good snapshot.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from ..store.provenance import pack_lineages, unpack_lineages

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "EmissionRecord",
    "Snapshot",
    "TaskRecord",
    "load_checkpoint",
    "save_checkpoint",
]

#: Bump on any incompatible change to the snapshot schema.
#: v2: ``executed`` (explicit lineage lists) became ``executed_paths``
#: (LCP-compressed rows, see :mod:`repro.store.provenance`).
CHECKPOINT_VERSION = 2

_KIND = "gmbe-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or incompatible with this run."""


@dataclass
class TaskRecord:
    """One pending subtree task, serialized (prepared-graph ids)."""

    lineage: tuple
    left: list
    right: list
    cands: list
    counts: list
    needs_check: bool
    retries: int = 0

    def to_dict(self) -> dict:
        return {
            "lineage": list(self.lineage),
            "left": [int(x) for x in self.left],
            "right": [int(x) for x in self.right],
            "cands": [int(x) for x in self.cands],
            "counts": [int(x) for x in self.counts],
            "needs_check": bool(self.needs_check),
            "retries": int(self.retries),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskRecord":
        try:
            return cls(
                lineage=tuple(data["lineage"]),
                left=data["left"],
                right=data["right"],
                cands=data["cands"],
                counts=data["counts"],
                needs_check=bool(data["needs_check"]),
                retries=int(data.get("retries", 0)),
            )
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed task record: {exc}") from exc


@dataclass
class EmissionRecord:
    """One already-emitted biclique with its exactly-once ledger key."""

    lineage: tuple
    seq: int
    left: list
    right: list

    def to_dict(self) -> list:
        # Compact row form: emissions dominate snapshot size.
        return [
            list(self.lineage),
            int(self.seq),
            [int(x) for x in self.left],
            [int(x) for x in self.right],
        ]

    @classmethod
    def from_row(cls, row) -> "EmissionRecord":
        try:
            lineage, seq, left, right = row
            return cls(tuple(lineage), int(seq), left, right)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed emission record: {exc}") from exc


@dataclass
class Snapshot:
    """Full resumable state of one interrupted enumeration."""

    graph_fingerprint: str
    config_signature: list
    device_name: str
    n_gpus: int
    root_cursor: int
    n_roots: int
    tasks: list = field(default_factory=list)       # list[TaskRecord]
    emissions: list = field(default_factory=list)   # list[EmissionRecord]
    #: lineages whose execute() already delivered emissions — seeds the
    #: ledger's per-task dedup on resume.  Kept separate from
    #: ``emissions`` because a root's seq-0 biclique is emitted at pull
    #: time, before its task executes.
    executed: list = field(default_factory=list)    # list[tuple]
    counters: dict = field(default_factory=dict)
    fault_plan: dict | None = None
    elapsed_cycles: float = 0.0
    tasks_executed: int = 0
    tasks_split: int = 0
    version: int = CHECKPOINT_VERSION

    def to_json(self) -> str:
        return json.dumps({
            "kind": _KIND,
            "version": self.version,
            "graph_fingerprint": self.graph_fingerprint,
            "config_signature": [[k, v] for k, v in self.config_signature],
            "device_name": self.device_name,
            "n_gpus": self.n_gpus,
            "root_cursor": self.root_cursor,
            "n_roots": self.n_roots,
            "tasks": [t.to_dict() for t in self.tasks],
            "emissions": [e.to_dict() for e in self.emissions],
            # Executed lineages are enumeration-tree paths: store them as
            # LCP-compressed rows (tree-buffer provenance), not full lists.
            "executed_paths": pack_lineages(self.executed),
            "counters": self.counters,
            "fault_plan": self.fault_plan,
            "elapsed_cycles": self.elapsed_cycles,
            "tasks_executed": self.tasks_executed,
            "tasks_split": self.tasks_split,
        })

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "Snapshot":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {source} is corrupt or truncated (not valid "
                f"JSON: {exc}); delete it and restart without --resume"
            ) from exc
        if not isinstance(data, dict) or data.get("kind") != _KIND:
            raise CheckpointError(
                f"checkpoint {source} is not a GMBE checkpoint (missing "
                f"'kind': '{_KIND}'); was it written by this tool?"
            )
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {source} has format version {version!r}, this "
                f"build reads version {CHECKPOINT_VERSION}; re-run the "
                f"enumeration from scratch to produce a fresh checkpoint"
            )
        required = (
            "graph_fingerprint", "config_signature", "device_name",
            "n_gpus", "root_cursor", "n_roots",
        )
        missing = [k for k in required if k not in data]
        if missing:
            raise CheckpointError(
                f"checkpoint {source} is incomplete (missing fields: "
                f"{', '.join(missing)}); it was likely truncated mid-write "
                f"— delete it and restart without --resume"
            )
        try:
            return cls(
                graph_fingerprint=str(data["graph_fingerprint"]),
                config_signature=[
                    (str(k), v) for k, v in data["config_signature"]
                ],
                device_name=str(data["device_name"]),
                n_gpus=int(data["n_gpus"]),
                root_cursor=int(data["root_cursor"]),
                n_roots=int(data["n_roots"]),
                tasks=[TaskRecord.from_dict(t) for t in data.get("tasks", ())],
                emissions=[
                    EmissionRecord.from_row(r)
                    for r in data.get("emissions", ())
                ],
                executed=_read_executed_paths(data),
                counters=dict(data.get("counters", {})),
                fault_plan=data.get("fault_plan"),
                elapsed_cycles=float(data.get("elapsed_cycles", 0.0)),
                tasks_executed=int(data.get("tasks_executed", 0)),
                tasks_split=int(data.get("tasks_split", 0)),
                version=int(version),
            )
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {source} has malformed fields ({exc}); delete "
                f"it and restart without --resume"
            ) from exc

    # ------------------------------------------------------------------
    def validate_against(
        self, *, graph_fingerprint: str, config_signature, device_name: str,
        n_gpus: int,
    ) -> None:
        """Guard a resume: the run must match the snapshot's identity."""
        if self.graph_fingerprint != graph_fingerprint:
            raise CheckpointError(
                "checkpoint was written for a different graph (fingerprint "
                f"{self.graph_fingerprint[:12]}… != {graph_fingerprint[:12]}…)"
                "; resuming would silently merge results of two inputs"
            )
        ours = {str(k): _plain(v) for k, v in config_signature}
        theirs = {str(k): _plain(v) for k, v in self.config_signature}
        if ours != theirs:
            diff = sorted(
                k for k in set(ours) | set(theirs)
                if ours.get(k) != theirs.get(k)
            )
            raise CheckpointError(
                "checkpoint was written under a different GMBEConfig "
                f"(differing knobs: {', '.join(diff) or 'field set'}); "
                "resume with the original config or restart from scratch"
            )
        if self.device_name != device_name or self.n_gpus != n_gpus:
            raise CheckpointError(
                f"checkpoint was written for {self.n_gpus}x "
                f"{self.device_name}, this run uses {n_gpus}x {device_name}; "
                "timing continuity would be meaningless — restart or match "
                "the original topology"
            )


def _read_executed_paths(data: dict) -> list:
    """Decode the v2 ``executed_paths`` rows into lineage tuples."""
    try:
        return unpack_lineages(data.get("executed_paths", ()))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint has malformed executed_paths rows ({exc}); delete "
            f"it and restart without --resume"
        ) from exc


def _plain(value):
    """JSON-normalize a signature value (tuples→lists, numpy→python)."""
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def save_checkpoint(path, snapshot: Snapshot) -> None:
    """Atomically and *durably* write ``snapshot`` to ``path``.

    Temp file + fsync + rename + directory fsync: the rename gives
    atomicity against a crash of *this* process, but only flushing the
    containing directory makes the new name itself survive a machine
    crash — without it a power loss after SIGKILL-under-test could
    resurface the previous (or no) checkpoint and break the
    bit-identical-resume guarantee.
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(snapshot.to_json())
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = None
    try:
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        os.fsync(dir_fd)
    except OSError:
        # Some filesystems/platforms refuse directory fsync; the data
        # fsync above already happened, so degrade silently.
        pass
    finally:
        if dir_fd is not None:
            os.close(dir_fd)


def load_checkpoint(path) -> Snapshot:
    """Read and validate a snapshot; :class:`CheckpointError` on trouble."""
    path = os.fspath(path)
    if not os.path.exists(path):
        raise CheckpointError(
            f"checkpoint {path} does not exist; run without --resume to "
            f"start fresh (a checkpoint is created as the run progresses)"
        )
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise CheckpointError(f"checkpoint {path} is unreadable: {exc}") from exc
    return Snapshot.from_json(text, source=path)
