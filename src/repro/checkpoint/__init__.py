"""Checkpoint/resume for long-running enumerations.

A long GMBE run periodically snapshots its *frontier* — the pending
root cursor, every in-flight subtree task (with its lineage and retry
count), the emission ledger, work counters, and the fault-plan cursor —
to a versioned JSON file.  A killed run restarts from the last snapshot
with ``gmbe run --checkpoint PATH --resume`` (or via
:class:`~repro.service.EnumerationBroker`'s job-level resume) and
produces the same final biclique set as an uninterrupted run, each
biclique emitted exactly once.

See DESIGN.md §9 for the checkpoint format and its invariants.
"""

from .snapshot import (
    CHECKPOINT_VERSION,
    CheckpointError,
    EmissionRecord,
    Snapshot,
    TaskRecord,
    load_checkpoint,
    save_checkpoint,
)
from .writer import CheckpointWriter

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointWriter",
    "EmissionRecord",
    "Snapshot",
    "TaskRecord",
    "load_checkpoint",
    "save_checkpoint",
]
