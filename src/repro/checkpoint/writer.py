"""Periodic checkpoint writing driven by the scheduler's task cadence.

The kernel installs :meth:`CheckpointWriter.maybe_write` as the
scheduler's ``on_task_done`` hook: every ``every_tasks`` completed
tasks it materializes a fresh :class:`~repro.checkpoint.Snapshot` (via
the builder callback the kernel supplies) and atomically replaces the
file on disk.  On successful completion :meth:`finalize_success`
removes the file — there is nothing left to resume.
"""

from __future__ import annotations

import os
from typing import Callable

from .snapshot import Snapshot, save_checkpoint

__all__ = ["CheckpointWriter"]


class CheckpointWriter:
    """Owns one checkpoint file and its write cadence."""

    def __init__(self, path, *, every_tasks: int = 256) -> None:
        if every_tasks <= 0:
            raise ValueError("every_tasks must be positive")
        self.path = os.fspath(path)
        self.every_tasks = every_tasks
        self.writes = 0
        self._last_written_at = 0

    def maybe_write(
        self, tasks_done: int, build: Callable[[], Snapshot]
    ) -> bool:
        """Write a snapshot if the cadence is due; True if written."""
        if tasks_done - self._last_written_at < self.every_tasks:
            return False
        self.write(build())
        self._last_written_at = tasks_done
        return True

    def write(self, snapshot: Snapshot) -> None:
        save_checkpoint(self.path, snapshot)
        self.writes += 1

    def finalize_success(self) -> None:
        """Remove the checkpoint after a completed run (nothing to resume)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass
