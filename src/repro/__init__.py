"""GMBE reproduction: maximal biclique enumeration with a simulated GPU.

Public API tour:

- :mod:`repro.graph` — bipartite CSR graphs, IO, preprocessing, generators;
- :mod:`repro.core` — the CPU algorithms (MBEA, iMBEA, PMBE, ooMBEA,
  ParMBE) and shared enumeration machinery;
- :mod:`repro.gmbe` — the paper's contribution: node-reuse stack
  iteration, local-neighborhood-size pruning, load-aware task scheduling;
- :mod:`repro.gpusim` — the SIMT GPU simulator substrate (devices, warps,
  memory model, persistent-thread scheduler);
- :mod:`repro.datasets` — offline synthetic analogs of the paper's 12
  datasets;
- :mod:`repro.bench` — drivers regenerating every table and figure.
"""

from .api import as_bipartite_graph, enumerate_maximal_bicliques
from .core import (
    Biclique,
    BicliqueCollector,
    BicliqueCounter,
    EnumerationResult,
    imbea,
    mbea,
    oombea,
    parmbe,
    pmbe,
)
from .graph import BipartiteGraph
from .verify import VerificationReport, verify_enumeration

__version__ = "1.0.0"

__all__ = [
    "Biclique",
    "BicliqueCollector",
    "BicliqueCounter",
    "BipartiteGraph",
    "VerificationReport",
    "EnumerationResult",
    "__version__",
    "as_bipartite_graph",
    "enumerate_maximal_bicliques",
    "imbea",
    "mbea",
    "oombea",
    "parmbe",
    "pmbe",
    "verify_enumeration",
]
