"""Tree buffer: O(history) storage of paths in a growing tree.

A *tree buffer* (Grigore & Kiefer, "Tree buffers") stores root-to-node
paths of a dynamically growing tree under three operations:

``add_child(parent, payload) -> node``
    Attach a new node under ``parent`` (or under the virtual root,
    :data:`ROOT`) carrying ``payload``; returns its id.

``deactivate(node)``
    Declare that ``node``'s path will never be asked for again.  A
    deactivated node with no live children is reclaimed immediately,
    and reclamation cascades: freeing a node may leave its (already
    deactivated) parent childless, which is then freed too — so an
    abandoned branch collapses all the way up to the deepest ancestor
    still on a live path.

``history(node) -> list[payload]``
    The payloads on the root→``node`` path, for any node not yet
    reclaimed.

The memory guarantee is the point: live nodes are bounded by the total
length of the paths still *reachable* (sum over live tips of their
depths, with shared prefixes counted once) — O(history) — not by the
number of nodes ever added.  The enumeration-tree writer in
:mod:`repro.store.encode` leans on exactly this: it keeps one live tip
(the current biclique's path) and deactivates the divergent suffix on
every append, so the buffer never holds more than one path regardless
of how many millions of results streamed through it.

This is the pure-Python amortized variant (slot free-list, cascading
reclamation on deactivate); the real-time variant in the paper bounds
the per-operation worst case, which a batch store does not need.
"""

from __future__ import annotations

__all__ = ["ROOT", "TreeBuffer"]

#: Virtual-root parent id for :meth:`TreeBuffer.add_child`.
ROOT = -1

#: Parent-slot sentinel marking a reclaimed (free-listed) slot.
_FREE = -2


class TreeBuffer:
    """Growable tree with node deactivation and path reclamation."""

    __slots__ = (
        "_parent",
        "_payload",
        "_children",
        "_active",
        "_free",
        "_n_live",
        "nodes_added",
        "nodes_reclaimed",
        "peak_live",
    )

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._payload: list = []
        #: count of not-yet-reclaimed children per slot
        self._children: list[int] = []
        self._active: list[bool] = []
        self._free: list[int] = []
        self._n_live = 0
        #: lifetime statistics — ``peak_live`` vs ``nodes_added`` is the
        #: measured compression of path storage over explicit storage.
        self.nodes_added = 0
        self.nodes_reclaimed = 0
        self.peak_live = 0

    # ------------------------------------------------------------------
    def _check(self, node: int) -> None:
        if node == ROOT:
            return
        if not 0 <= node < len(self._parent) or self._parent[node] == _FREE:
            raise ValueError(
                f"node {node} is not in the buffer (never added, or "
                f"already reclaimed after deactivation)"
            )

    def add_child(self, parent: int, payload) -> int:
        """New node under ``parent`` (:data:`ROOT` for a top-level node).

        The parent must still be live (not reclaimed); it may itself be
        deactivated — adding under it simply keeps it pinned until the
        new subtree is deactivated too.
        """
        self._check(parent)
        if self._free:
            node = self._free.pop()
            self._parent[node] = parent
            self._payload[node] = payload
            self._children[node] = 0
            self._active[node] = True
        else:
            node = len(self._parent)
            self._parent.append(parent)
            self._payload.append(payload)
            self._children.append(0)
            self._active.append(True)
        if parent != ROOT:
            self._children[parent] += 1
        self.nodes_added += 1
        self._n_live += 1
        if self._n_live > self.peak_live:
            self.peak_live = self._n_live
        return node

    def deactivate(self, node: int) -> None:
        """Mark ``node``'s path as dead; reclaim what nothing pins."""
        self._check(node)
        if node == ROOT:
            raise ValueError("cannot deactivate the virtual root")
        self._active[node] = False
        # Cascade: free childless dead nodes up the path.
        while (
            node != ROOT
            and not self._active[node]
            and self._children[node] == 0
        ):
            parent = self._parent[node]
            self._parent[node] = _FREE
            self._payload[node] = None
            self._free.append(node)
            self._n_live -= 1
            self.nodes_reclaimed += 1
            if parent != ROOT:
                self._children[parent] -= 1
            node = parent

    def history(self, node: int) -> list:
        """Payloads on the root→``node`` path (``node`` included)."""
        self._check(node)
        if node == ROOT:
            return []
        path = []
        while node != ROOT:
            path.append(self._payload[node])
            node = self._parent[node]
        path.reverse()
        return path

    # ------------------------------------------------------------------
    def is_live(self, node: int) -> bool:
        """True while ``node`` has not been reclaimed."""
        return (
            0 <= node < len(self._parent) and self._parent[node] != _FREE
        )

    @property
    def live_nodes(self) -> int:
        return self._n_live

    def __len__(self) -> int:
        return self._n_live

    def stats(self) -> dict:
        return {
            "live": self._n_live,
            "peak_live": self.peak_live,
            "added": self.nodes_added,
            "reclaimed": self.nodes_reclaimed,
        }
