"""Succinct result storage: tree buffers, delta encoding, cursors.

The enumeration tree GMBE traverses is also the shape its *output*
compresses against: consecutive maximal bicliques share long prefixes
of their (sorted) vertex sets, because they are siblings or cousins in
that tree.  This package stores results as paths:

- :mod:`~repro.store.treebuf` — a Grigore & Kiefer-style *tree buffer*
  (``add_child`` / ``deactivate`` / ``history``) keeping only the live
  root-to-tip path plus whatever history still has live readers, in
  amortized O(history) space (the API contract is inlined in
  DESIGN.md §13);
- :mod:`~repro.store.encode` — delta-encoding of each biclique against
  the live path into packed uint32 arrays with per-block framing, so
  blocks decode independently;
- :mod:`~repro.store.resultset` — :class:`StoredResultSet`, the
  compressed, length-aware, size-filter-pushdown, cursor-paginated
  result container the cache and service hand around instead of Python
  lists;
- :mod:`~repro.store.provenance` — the same path-sharing applied to
  checkpointed executed-lineage sets (:class:`LineageForest`).
"""

from .encode import (
    DEFAULT_BLOCK_RECORDS,
    Block,
    PathDeltaEncoder,
    count_records,
    decode_blocks,
)
from .provenance import LineageForest, pack_lineages, unpack_lineages
from .resultset import (
    ResultStoreWriter,
    StoredResultSet,
    materialized_nbytes,
)
from .treebuf import ROOT, TreeBuffer

__all__ = [
    "Block",
    "DEFAULT_BLOCK_RECORDS",
    "LineageForest",
    "PathDeltaEncoder",
    "ROOT",
    "ResultStoreWriter",
    "StoredResultSet",
    "TreeBuffer",
    "count_records",
    "decode_blocks",
    "materialized_nbytes",
    "pack_lineages",
    "unpack_lineages",
]
