"""Delta-encoding of biclique streams into block-framed uint32 arrays.

Wire format
-----------
A stream of records (one per biclique, order-preserving) is framed into
*blocks* of at most :data:`DEFAULT_BLOCK_RECORDS` records.  Each block
is one packed ``uint32`` numpy array of concatenated records::

    record := lcp_l  n_new_l  lcp_r  n_new_r   ── 4 header words
              left_delta[n_new_l]  right_delta[n_new_r]

- ``lcp_l`` / ``lcp_r``: how many leading vertices of the left / right
  side are shared with the *previous record* (per side, independently —
  sorted adjacent bicliques share left prefixes; DFS-adjacent emissions
  share right prefixes).  Forced to 0 for the first record of a block,
  so every block decodes with no state from its predecessors.
- deltas: the non-shared vertices, each stored as the difference from
  the previous vertex of the same side in the *same* record (the vertex
  at ``lcp-1`` is shared, hence known); the first vertex of a side
  deltas against −1.  Sides are strictly increasing, so every stored
  word is ≥ 1 and fits ``uint32``.

Per-block frame metadata (:class:`Block`) carries the starting record
ordinal plus per-side maximum lengths, which buys two things without
touching the payload: O(1) cursor seek to the containing block, and
whole-block skipping under size filters (``max_left < min_left`` means
no record in the block can pass).

The encoder's state between records is not a pair of ad-hoc "previous"
lists but a live path in a :class:`~repro.store.treebuf.TreeBuffer`:
each vertex of the current biclique is a node, the shared prefix stays,
the divergent suffix is deactivated (and immediately reclaimed — no
live reader), and the new suffix is appended with ``add_child``.  The
previous record used for delta computation is ``history(tip)``.  The
buffer therefore holds O(one path) live nodes while its lifetime
counters record how much enumeration tree streamed through — the
measured compression the ``store.*`` metrics export.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .treebuf import ROOT, TreeBuffer

__all__ = [
    "Block",
    "DEFAULT_BLOCK_RECORDS",
    "PathDeltaEncoder",
    "count_records",
    "decode_blocks",
]

#: Records per block: small enough that a cursor seek decodes little,
#: large enough that the 0-lcp block-start records are amortized away.
DEFAULT_BLOCK_RECORDS = 256

_HEADER_WORDS = 4


@dataclass(frozen=True)
class Block:
    """One self-contained frame of encoded records."""

    #: ordinal (stream-wide index) of the first record in this block
    start: int
    n_records: int
    #: per-side maxima over the block — size-filter block skipping
    max_left: int
    max_right: int
    data: np.ndarray  # uint32 payload

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


def _lcp(a: tuple, b: tuple) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


class PathDeltaEncoder:
    """Append-only encoder; ``finish()`` freezes the block list."""

    def __init__(self, block_records: int = DEFAULT_BLOCK_RECORDS) -> None:
        if block_records < 1:
            raise ValueError(
                f"block_records must be positive, got {block_records}"
            )
        self.block_records = block_records
        self.tree = TreeBuffer()
        #: node ids of the live path, tagged (side, vertex) payloads
        self._path: list[int] = []
        self._blocks: list[Block] = []
        self._words: list[int] = []
        self._block_start = 0
        self._block_records = 0
        self._max_l = 0
        self._max_r = 0
        self._n_records = 0
        self._finished = False

    # ------------------------------------------------------------------
    def _prev(self) -> tuple[tuple, tuple]:
        """The previous record, replayed off the tree buffer's path."""
        if not self._path:
            return (), ()
        pairs = self.tree.history(self._path[-1])
        left = tuple(v for side, v in pairs if side == 0)
        right = tuple(v for side, v in pairs if side == 1)
        return left, right

    def _repath(self, left: tuple, right: tuple, keep: int) -> None:
        """Replace the live path's suffix beyond ``keep`` tagged nodes."""
        for node in reversed(self._path[keep:]):
            self.tree.deactivate(node)
        del self._path[keep:]
        parent = self._path[-1] if self._path else ROOT
        for v in left[max(0, keep):] if keep < len(left) else ():
            parent = self.tree.add_child(parent, (0, v))
            self._path.append(parent)
        start_r = max(0, keep - len(left))
        for v in right[start_r:]:
            parent = self.tree.add_child(parent, (1, v))
            self._path.append(parent)

    def add(self, left: tuple, right: tuple) -> int:
        """Encode one record; returns its ordinal."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        prev_left, prev_right = self._prev()
        lcp_l = _lcp(left, prev_left)
        lcp_r = _lcp(right, prev_right)
        # The tagged tree path only shares right-side nodes below a
        # fully identical left side (a path prefix cannot skip levels).
        if lcp_l == len(left) == len(prev_left):
            keep = lcp_l + lcp_r
        else:
            keep = lcp_l
        self._repath(left, right, keep)

        if self._block_records == 0:
            lcp_l = lcp_r = 0  # block-start records are self-contained
        words = self._words
        words.append(lcp_l)
        words.append(len(left) - lcp_l)
        words.append(lcp_r)
        words.append(len(right) - lcp_r)
        base = left[lcp_l - 1] if lcp_l else -1
        for v in left[lcp_l:]:
            words.append(v - base)
            base = v
        base = right[lcp_r - 1] if lcp_r else -1
        for v in right[lcp_r:]:
            words.append(v - base)
            base = v

        if len(left) > self._max_l:
            self._max_l = len(left)
        if len(right) > self._max_r:
            self._max_r = len(right)
        ordinal = self._n_records
        self._n_records += 1
        self._block_records += 1
        if self._block_records >= self.block_records:
            self._close_block()
        return ordinal

    def _close_block(self) -> None:
        if self._block_records == 0:
            return
        self._blocks.append(
            Block(
                start=self._block_start,
                n_records=self._block_records,
                max_left=self._max_l,
                max_right=self._max_r,
                data=np.asarray(self._words, dtype=np.uint32),
            )
        )
        self._words = []
        self._block_start = self._n_records
        self._block_records = 0
        self._max_l = 0
        self._max_r = 0

    def finish(self) -> list[Block]:
        """Close the open block; further ``add`` calls are an error."""
        if not self._finished:
            self._close_block()
            # Drop the final live path — nothing will read it again.
            for node in reversed(self._path):
                self.tree.deactivate(node)
            self._path = []
            self._finished = True
        return self._blocks

    @property
    def n_records(self) -> int:
        return self._n_records


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode_blocks(
    blocks,
    *,
    min_left: int = 0,
    min_right: int = 0,
    start: int = 0,
):
    """Yield ``(ordinal, left, right)`` tuples from ``start`` onward.

    Size-filter pushdown happens at two levels: blocks whose per-side
    maxima cannot satisfy the filter are skipped without touching their
    payload, and filtered-out records inside a surviving block are
    decoded (their values seed the next record's deltas) but never
    materialized into output tuples.
    """
    for block in blocks:
        if block.start + block.n_records <= start:
            continue
        if block.max_left < min_left or block.max_right < min_right:
            continue
        data = block.data
        i = 0
        prev_l: tuple = ()
        prev_r: tuple = ()
        for k in range(block.n_records):
            lcp_l = int(data[i])
            n_l = int(data[i + 1])
            lcp_r = int(data[i + 2])
            n_r = int(data[i + 3])
            i += _HEADER_WORDS
            left = list(prev_l[:lcp_l])
            base = left[-1] if left else -1
            for w in data[i:i + n_l]:
                base += int(w)
                left.append(base)
            i += n_l
            right = list(prev_r[:lcp_r])
            base = right[-1] if right else -1
            for w in data[i:i + n_r]:
                base += int(w)
                right.append(base)
            i += n_r
            prev_l = tuple(left)
            prev_r = tuple(right)
            ordinal = block.start + k
            if (
                ordinal >= start
                and len(prev_l) >= min_left
                and len(prev_r) >= min_right
            ):
                yield ordinal, prev_l, prev_r


def count_records(blocks, *, min_left: int = 0, min_right: int = 0) -> int:
    """Number of records passing the size filter — header-only scan.

    Lengths derive from ``lcp + n_new`` alone, so counting never decodes
    a vertex value.
    """
    total = 0
    for block in blocks:
        if block.max_left < min_left or block.max_right < min_right:
            continue
        data = block.data
        i = 0
        len_l = len_r = 0
        for _ in range(block.n_records):
            lcp_l = int(data[i])
            n_l = int(data[i + 1])
            lcp_r = int(data[i + 2])
            n_r = int(data[i + 3])
            len_l = lcp_l + n_l
            len_r = lcp_r + n_r
            i += _HEADER_WORDS + n_l + n_r
            if len_l >= min_left and len_r >= min_right:
                total += 1
    return total
