"""``StoredResultSet``: the compressed, cursor-paginated result container.

The service layers built so far pass ``tuple[Biclique, ...]`` around —
O(output) resident memory per job.  A :class:`StoredResultSet` keeps the
same logical contents as delta-encoded blocks (see
:mod:`repro.store.encode`) and serves them three ways:

- streaming iteration (``for b in store``) — decodes block by block,
  never holding more than one materialized biclique plus the running
  per-side prefixes;
- size-filter pushdown (:meth:`filtered`) — a zero-copy view sharing
  the underlying blocks, skipping whole blocks whose per-side maxima
  cannot pass;
- stable cursor pagination (:meth:`page`) — the cursor is the string of
  the next record's stream-wide ordinal, so it survives pickling, limit
  changes between calls, and filter composition, and seeking is a
  block-metadata scan rather than a decode of everything before it.

Instances hold no telemetry references (they must pickle cleanly across
the service's process boundaries); ``page()`` discovers the ambient
:class:`~repro.telemetry.hub.Telemetry` at call time to bump the
``store.pages.*`` counters.
"""

from __future__ import annotations

import numpy as np

from ..core.bicliques import Biclique
from .encode import (
    DEFAULT_BLOCK_RECORDS,
    PathDeltaEncoder,
    count_records,
    decode_blocks,
)

__all__ = ["ResultStoreWriter", "StoredResultSet", "materialized_nbytes"]

#: The cache's cost model for materialized results (kept in sync with
#: ``repro.service.cache``): a Biclique object + two tuples + per-vertex
#: ints.  Used to report the compression the store buys.
_BYTES_PER_VERTEX = 8
_BYTES_PER_BICLIQUE = 96


def materialized_nbytes(bicliques) -> int:
    """Modeled resident bytes of ``bicliques`` as plain Python objects.

    Same per-object/per-vertex constants as the service cache's budget
    model, so "encoded vs materialized" ratios line up with what the
    cache would actually have charged for the tuple form.
    """
    total = 0
    for b in bicliques:
        total += _BYTES_PER_BICLIQUE + _BYTES_PER_VERTEX * (
            len(b.left) + len(b.right)
        )
    return total


class StoredResultSet:
    """Immutable, ordered, compressed set of bicliques.

    Build with :meth:`from_bicliques` or through a
    :class:`ResultStoreWriter`; the record order is exactly the append
    order (the service stores sorted results, so iteration is sorted).
    """

    def __init__(
        self,
        blocks,
        n_records: int,
        *,
        min_left: int = 0,
        min_right: int = 0,
    ) -> None:
        self._blocks = tuple(blocks)
        #: records in the *underlying* stream, ignoring filters
        self._n_records = int(n_records)
        self.min_left = int(min_left)
        self.min_right = int(min_right)
        self._len: int | None = (
            self._n_records if not (min_left or min_right) else None
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def from_bicliques(
        cls, bicliques, *, block_records: int = DEFAULT_BLOCK_RECORDS
    ) -> "StoredResultSet":
        # Route through the writer so every build — API, broker, shard
        # merge — reports the same ``store.*`` metrics.
        writer = ResultStoreWriter(block_records=block_records)
        for b in bicliques:
            writer.append(b.left, b.right)
        return writer.finish()

    # -- sizing ---------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Encoded payload bytes — what the cache budget charges."""
        return sum(b.nbytes for b in self._blocks)

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    def __len__(self) -> int:
        if self._len is None:
            self._len = count_records(
                self._blocks,
                min_left=self.min_left,
                min_right=self.min_right,
            )
        return self._len

    def __bool__(self) -> bool:
        # len() may scan headers; emptiness of the unfiltered stream is
        # free and the filtered case needs the count anyway.
        return len(self) > 0

    # -- reading --------------------------------------------------------
    def records(self, *, start: int = 0):
        """Yield ``(ordinal, left, right)`` for records passing the
        filter, beginning at stream ordinal ``start``."""
        return decode_blocks(
            self._blocks,
            min_left=self.min_left,
            min_right=self.min_right,
            start=start,
        )

    def __iter__(self):
        for _, left, right in self.records():
            # left/right come back sorted and deduplicated by
            # construction, so skip Biclique.make's re-sort.
            yield Biclique(left, right)

    def as_tuple(self) -> tuple:
        """Materialize everything — the escape hatch, not the default."""
        return tuple(self)

    def filtered(self, min_left: int = 0, min_right: int = 0) -> "StoredResultSet":
        """A view with a (composed) size filter; shares the blocks."""
        return StoredResultSet(
            self._blocks,
            self._n_records,
            min_left=max(self.min_left, int(min_left)),
            min_right=max(self.min_right, int(min_right)),
        )

    def page(self, cursor: str | None = None, limit: int = 100):
        """``(items, next_cursor)`` — stable cursor pagination.

        The cursor is opaque to callers but simply the decimal ordinal
        of the next underlying record, which makes it *stable*: pages
        never skip or duplicate records across varying ``limit`` values,
        filter views, or pickled round-trips of the store.  ``None``
        means "from the start"; a returned ``next_cursor`` of ``None``
        means the stream is exhausted.
        """
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit}")
        start = _parse_cursor(cursor)
        items = []
        next_cursor = None
        for ordinal, left, right in self.records(start=start):
            if len(items) >= limit:
                next_cursor = str(ordinal)
                break
            items.append(Biclique(left, right))
        _note_page(len(items))
        return items, next_cursor

    def pages(self, limit: int = 100):
        """Iterate all pages (convenience over repeated :meth:`page`)."""
        cursor: str | None = None
        while True:
            items, cursor = self.page(cursor, limit)
            if items:
                yield items
            if cursor is None:
                return

    # -- misc -----------------------------------------------------------
    def __repr__(self) -> str:
        filt = ""
        if self.min_left or self.min_right:
            filt = f", min_left={self.min_left}, min_right={self.min_right}"
        return (
            f"StoredResultSet(records={self._n_records}, "
            f"blocks={self.n_blocks}, nbytes={self.nbytes}{filt})"
        )


def _parse_cursor(cursor: str | None) -> int:
    if cursor is None or cursor == "":
        return 0
    try:
        start = int(cursor)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid cursor {cursor!r}: cursors are opaque tokens returned "
            f"by a previous page() call — do not construct them"
        ) from None
    if start < 0:
        raise ValueError(f"invalid cursor {cursor!r}: negative ordinal")
    return start


def _note_page(n_items: int) -> None:
    """Bump ``store.pages.*`` on the ambient telemetry, if any."""
    from ..telemetry.hub import current_telemetry

    telemetry = current_telemetry()
    if telemetry is None or not telemetry.enabled:
        return
    reg = telemetry.registry
    reg.counter(
        "store.pages.served", description="cursor pages served"
    ).inc()
    reg.counter(
        "store.pages.items", description="bicliques returned via pages"
    ).inc(n_items)


class ResultStoreWriter:
    """Streaming builder for a :class:`StoredResultSet`.

    Implements the :class:`~repro.core.bicliques.BicliqueSink` protocol
    (``writer(left, right)`` with sorted numpy arrays), so any
    enumerator — the GMBE kernel's emission ledger, the shard merge, a
    CPU baseline — can write straight into the store with no
    intermediate list.
    """

    def __init__(
        self,
        *,
        block_records: int = DEFAULT_BLOCK_RECORDS,
        telemetry=None,
    ) -> None:
        self._enc = PathDeltaEncoder(block_records)
        self._telemetry = telemetry

    def append(self, left, right) -> None:
        """Add one biclique given any sorted int sequences."""
        if isinstance(left, np.ndarray):
            left = tuple(int(x) for x in left.tolist())
        else:
            left = tuple(int(x) for x in left)
        if isinstance(right, np.ndarray):
            right = tuple(int(x) for x in right.tolist())
        else:
            right = tuple(int(x) for x in right)
        self._enc.add(left, right)

    # BicliqueSink protocol
    __call__ = append

    @property
    def count(self) -> int:
        return self._enc.n_records

    def finish(self) -> StoredResultSet:
        """Freeze into a :class:`StoredResultSet` and report metrics."""
        blocks = self._enc.finish()
        store = StoredResultSet(blocks, self._enc.n_records)
        self._note_store(store)
        return store

    def _note_store(self, store: StoredResultSet) -> None:
        from ..telemetry.hub import current_telemetry

        telemetry = self._telemetry
        if telemetry is None:
            telemetry = current_telemetry()
        if telemetry is None or not telemetry.enabled:
            return
        reg = telemetry.registry
        reg.counter(
            "store.results.built", description="result stores finished"
        ).inc()
        reg.counter(
            "store.results.records", description="records written to stores"
        ).inc(len(store))
        reg.counter(
            "store.results.encoded_bytes",
            description="encoded payload bytes across finished stores",
        ).inc(store.nbytes)
        reg.counter(
            "store.results.blocks", description="encoded blocks written"
        ).inc(store.n_blocks)
        stats = self._enc.tree.stats()
        reg.counter(
            "store.treebuf.nodes_added",
            description="tree-buffer nodes allocated while encoding",
        ).inc(stats["added"])
        reg.counter(
            "store.treebuf.nodes_reclaimed",
            description="tree-buffer nodes reclaimed by deactivation",
        ).inc(stats["reclaimed"])
        reg.gauge(
            "store.treebuf.peak_live",
            description="peak live tree-buffer nodes (O(history) bound)",
        ).set(stats["peak_live"])
