"""Compact executed-lineage storage for checkpoint provenance.

The checkpoint snapshot must remember which subtree tasks *already*
executed, so the resumed emission ledger can suppress their replays.
Lineages are root-to-task paths in the enumeration tree — exactly the
shape tree buffers compress — so instead of an explicit list of full
paths the v2 wire format stores them as LCP-compressed rows:

``pack_lineages`` sorts the lineages and writes each as
``[lcp, *suffix]`` where ``lcp`` is the longest common prefix with the
previous row.  Sibling tasks share all but their last component, so on
real enumerations most rows collapse to ``[depth-1, last]``.  The rows
are plain JSON int lists — no framing needed, the set is read whole.

:class:`LineageForest` is the in-memory dual: a trie over lineage
components with marked nodes, used where the *set* interface matters
(membership seeding of the ledger) while sharing prefixes instead of
storing every path as its own tuple.
"""

from __future__ import annotations

__all__ = ["LineageForest", "pack_lineages", "unpack_lineages"]


def pack_lineages(lineages) -> list:
    """Encode an iterable of int-tuple lineages as LCP rows.

    Output order is sorted (which maximizes shared prefixes); callers
    treating ``executed`` as a set lose nothing.
    """
    rows = []
    prev: tuple = ()
    for lin in sorted(tuple(int(x) for x in l) for l in lineages):
        n = min(len(lin), len(prev))
        lcp = 0
        while lcp < n and lin[lcp] == prev[lcp]:
            lcp += 1
        rows.append([lcp, *lin[lcp:]])
        prev = lin
    return rows


def unpack_lineages(rows) -> list:
    """Decode :func:`pack_lineages` rows back to a list of tuples."""
    out = []
    prev: tuple = ()
    for row in rows:
        if not row or not isinstance(row[0], int) or row[0] < 0:
            raise ValueError(f"malformed lineage row {row!r}: expected [lcp, *suffix]")
        lcp = row[0]
        if lcp > len(prev):
            raise ValueError(
                f"malformed lineage row {row!r}: lcp {lcp} exceeds previous "
                f"lineage length {len(prev)}"
            )
        lin = prev[:lcp] + tuple(int(x) for x in row[1:])
        out.append(lin)
        prev = lin
    return out


class LineageForest:
    """A marked trie over lineage tuples — set semantics, shared prefixes.

    ``add`` marks a path, ``in`` tests membership of a *marked* path
    (interior nodes created only as prefixes do not count), iteration
    yields the marked lineages in sorted order.
    """

    __slots__ = ("_root", "_n")

    #: key under which a node stores its "this path is a member" mark;
    #: impossible as a lineage component (components are ints).
    _MARK = None

    def __init__(self, lineages=()) -> None:
        self._root: dict = {}
        self._n = 0
        for lin in lineages:
            self.add(lin)

    def add(self, lineage) -> None:
        node = self._root
        for comp in lineage:
            node = node.setdefault(int(comp), {})
        if self._MARK not in node:
            node[self._MARK] = True
            self._n += 1

    def __contains__(self, lineage) -> bool:
        node = self._root
        for comp in lineage:
            node = node.get(int(comp))
            if node is None:
                return False
        return self._MARK in node

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        def walk(node, prefix):
            if self._MARK in node:
                yield prefix
            for comp in sorted(k for k in node if k is not self._MARK):
                yield from walk(node[comp], prefix + (comp,))

        return walk(self._root, ())

    def update(self, lineages) -> None:
        for lin in lineages:
            self.add(lin)

    def to_rows(self) -> list:
        """The :func:`pack_lineages` wire form of this forest."""
        return pack_lineages(self)

    @classmethod
    def from_rows(cls, rows) -> "LineageForest":
        return cls(unpack_lineages(rows))
