"""Persistent-thread scheduler simulation.

Implements the execution model of Alg. 4 as a discrete-event simulation:
a fixed set of *units* (warps, or whole blocks for the block-centric
variant) repeatedly acquire work — first from their device's two-level
task queue, then from the shared ``processing_v`` atomic counter — until
both sources are exhausted.  Executing a task may spawn child tasks
(the load-aware split), which become available to other units at the
simulated moment their creation finished.

The scheduler is policy-free about *what* a task is: the GMBE kernel
supplies two callbacks, one producing root tasks from the atomic
counter and one executing/splitting a task.  All durations are in
modeled warp-step cycles; devices convert to seconds afterwards.

Fault tolerance (DESIGN.md §9).  When a :class:`~repro.gpusim.faults.
FaultPlan` is attached, the scheduler consults it at its execute and
enqueue boundaries and recovers lost work through a **lineage
registry**: every payload carries a stable lineage id (extracted by the
``lineage_of`` callback), each registered task is tracked from enqueue
to completion, and a failed attempt re-enqueues the task on a surviving
SM via :meth:`TwoLevelTaskQueue.requeue`, bounded by
``max_task_retries`` failures per lineage.  Tasks whose enqueue was
silently dropped are re-homed by a recovery sweep when the machine
would otherwise go idle — the simulation analog of Alg. 4's re-enqueue
path driven by the host instead of the warp.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator

from .device import DeviceSpec
from .faults import FaultEvent, FaultLog
from .queues import TwoLevelTaskQueue
from .timeline import BusyRecorder

__all__ = [
    "ExecOutcome",
    "LineageEntry",
    "SimUnit",
    "SimReport",
    "PersistentThreadScheduler",
]


@dataclass
class ExecOutcome:
    """What executing one task produced.

    ``children`` are ``(cycles_offset, payload)`` pairs: the child became
    enqueueable ``cycles_offset`` cycles after the task started (its
    generation pass finished then).
    """

    cycles: float
    children: list[tuple[float, Any]] = field(default_factory=list)


@dataclass
class SimUnit:
    """One schedulable execution unit (a warp, or a block)."""

    unit_id: int
    device_id: int
    sm: int
    #: resident slot within the SM (0..units_per_sm-1); together with
    #: ``sm`` it forms the device-local key busy intervals are recorded
    #: under, so timeline grouping by SM works on any device count.
    slot: int = 0
    free_at: float = 0.0

    @property
    def record_key(self) -> int:
        return self.sm * 10_000 + self.slot


#: Lifecycle states of a lineage-registry entry.  There is no "running"
#: state: execution is synchronous within one heap event, so a task's
#: entry is popped at dequeue and re-inserted only on failure.
_QUEUED, _DROPPED, _LOST = "queued", "dropped", "lost"


@dataclass
class LineageEntry:
    """Registry record of one pending task (lineage-tracked mode)."""

    payload: Any
    retries: int = 0
    state: str = _QUEUED


@dataclass
class SimReport:
    """Aggregate outcome of a kernel simulation (cycle units)."""

    makespan_cycles: float
    per_device_cycles: list[float]
    recorders: list[BusyRecorder]
    queue_stats: list
    tasks_executed: int
    tasks_split: int
    #: injected-fault record (``None`` when no FaultPlan was attached)
    fault_log: FaultLog | None = None
    #: fault-driven re-enqueues (retries + crash displacements)
    tasks_requeued: int = 0
    #: lineages abandoned after exceeding ``max_task_retries``
    tasks_lost: int = 0
    #: True when the run stopped early (``halt_after_tasks``)
    halted: bool = False
    #: per-phase cycle attribution (``None`` unless ``collect_telemetry``)
    phase_cycles: dict | None = None
    #: ``(time, device_id, queue_depth)`` sampled at each task
    #: completion (empty unless ``collect_telemetry``)
    queue_depth_samples: list = field(default_factory=list)
    #: ``(time, device_id, n_children)`` per load-aware split (empty
    #: unless ``collect_telemetry``)
    split_events: list = field(default_factory=list)


class PersistentThreadScheduler:
    """Discrete-event persistent-thread execution across devices.

    Parameters
    ----------
    devices:
        One :class:`DeviceSpec` per simulated GPU (all identical for the
        paper's multi-GPU runs, but heterogeneity is allowed).
    units_per_sm:
        Schedulable units per SM (``warps_per_sm`` for warp/task
        scheduling, 1 for block-centric).
    root_source:
        Iterator of ``(cycles, payload | None)``: one pull of the shared
        atomic counter.  ``None`` payloads are deduplicated/empty tasks
        whose construction cost is still charged to the pulling unit.
    execute:
        ``execute(payload, device_id) -> ExecOutcome``.
    local_queue_capacity:
        Capacity of each SM-local queue before spilling to global.
    fault_plan:
        Optional :class:`~repro.gpusim.faults.FaultPlan` (or replay
        plan) consulted at execute/enqueue boundaries.  Requires
        ``lineage_of``.
    lineage_of:
        Callback extracting a stable, hashable lineage id from a
        payload; enables the lineage registry (recovery + frontier
        snapshots) even without a fault plan.
    max_task_retries:
        Failure budget per lineage; a task failing more often is
        abandoned (counted in ``SimReport.tasks_lost``).
    on_task_done:
        Optional ``callback(tasks_executed, now_cycles)`` after every
        successful task completion — the checkpoint cadence hook.
    halt_after_tasks:
        Stop the simulation once this many tasks completed (kill-switch
        used by checkpoint tests and ``--halt-after-tasks``).
    initial_tasks:
        ``(payload, retries)`` pairs restored from a checkpoint; they
        are registered and re-enqueued (round-robin across devices)
        before the first unit wakes.
    collect_telemetry:
        Accumulate per-phase cycle attribution, queue-depth samples and
        split events into the :class:`SimReport` (one extra branch per
        completed task; everything is skipped when False — the no-op
        guarantee ``benchmarks/bench_telemetry.py`` gates).
    """

    def __init__(
        self,
        devices: list[DeviceSpec],
        units_per_sm: int,
        root_source: Iterator[tuple[float, Any]],
        execute: Callable[[Any, int], ExecOutcome],
        *,
        local_queue_capacity: int = 64,
        root_pull_surcharges: list[float] | None = None,
        fault_plan=None,
        lineage_of: Callable[[Any], Hashable] | None = None,
        max_task_retries: int = 3,
        on_task_done: Callable[[int, float], None] | None = None,
        halt_after_tasks: int | None = None,
        initial_tasks: list[tuple[Any, int]] | None = None,
        collect_telemetry: bool = False,
    ) -> None:
        if not devices:
            raise ValueError("need at least one device")
        if root_pull_surcharges is not None and len(root_pull_surcharges) != len(devices):
            raise ValueError("one root-pull surcharge per device required")
        if fault_plan is not None and lineage_of is None:
            raise ValueError(
                "fault injection requires lineage tracking: pass lineage_of"
            )
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")
        self._devices = devices
        self._root_source = root_source
        self._execute = execute
        #: extra cycles a device pays per shared-counter pull — models the
        #: network round-trip of a *system-wide* atomicInc when devices
        #: live on different machines (the paper's distributed extension).
        self._root_surcharges = root_pull_surcharges or [0.0] * len(devices)
        self._units: list[SimUnit] = []
        self._unit_sm_width = units_per_sm
        # Interleave units across SMs and devices (slot-major order): all
        # persistent warps start pulling the shared atomic counter at the
        # same instant, so work must spread over every SM of every device
        # rather than filling SM 0 first.
        max_sms = max(dev.n_sms for dev in devices)
        for slot in range(units_per_sm):
            for sm in range(max_sms):
                for dev_id, dev in enumerate(devices):
                    if sm < dev.n_sms:
                        self._units.append(
                            SimUnit(
                                unit_id=len(self._units),
                                device_id=dev_id,
                                sm=sm,
                                slot=slot,
                            )
                        )
        self._queues = [
            TwoLevelTaskQueue(dev.n_sms, local_capacity=local_queue_capacity)
            for dev in devices
        ]
        self._recorders = [BusyRecorder() for _ in devices]
        self._roots_done = False
        self.tasks_executed = 0
        self.tasks_split = 0
        self.tasks_requeued = 0
        self.tasks_lost = 0
        # --- robustness machinery -------------------------------------
        self._plan = fault_plan
        self._lineage_of = lineage_of
        self._max_retries = max_task_retries
        self.on_task_done = on_task_done
        self._halt_after = halt_after_tasks
        self._registry: dict[Hashable, LineageEntry] | None = (
            {} if lineage_of is not None else None
        )
        # --- telemetry attribution (None = fully bypassed) -------------
        self._phase_cycles: dict[str, float] | None = (
            {"queue_acquire": 0.0, "execute": 0.0, "watchdog": 0.0}
            if collect_telemetry
            else None
        )
        self._depth_samples: list[tuple[float, int]] = []
        self._split_events: list[tuple[float, int]] = []
        #: id of the telemetry span this run belongs to; stamped onto
        #: every FaultEvent so faults correlate back to their job
        self.trace_span_id: str | None = None
        self._dead: list[set[int]] = [set() for _ in devices]
        self._fault_log = FaultLog(
            plan_state=fault_plan.state() if fault_plan is not None else None
        ) if fault_plan is not None else None
        for i, (payload, retries) in enumerate(initial_tasks or ()):
            entry = self._register(payload, state=_QUEUED)
            if entry is not None:
                entry.retries = retries
            self._queues[i % len(devices)].requeue(0.0, payload)

    # ------------------------------------------------------------------
    # Lineage registry helpers
    # ------------------------------------------------------------------
    def _register(self, payload: Any, *, state: str) -> LineageEntry | None:
        if self._registry is None:
            return None
        entry = self._registry.get(self._lineage_of(payload))
        if entry is None:
            entry = LineageEntry(payload=payload, state=state)
            self._registry[self._lineage_of(payload)] = entry
        else:
            entry.payload = payload
            entry.state = state
        return entry

    def _entry_of(self, payload: Any) -> LineageEntry | None:
        if self._registry is None:
            return None
        return self._registry.get(self._lineage_of(payload))

    def peek_pending(
        self, predicate, limit: int, *, device_id: int | None = None
    ) -> list[Any]:
        """Queued payloads matching ``predicate``, up to ``limit``,
        without dequeueing them (``device_id``'s queues are scanned
        first).

        Read-only by construction: no queue statistics move, no items
        change position, and the payloads remain owned by their queues.
        The batch-aware execute path uses this to precompute outcomes
        for compatible sibling tasks; each task is still popped at its
        own dequeue event, so timing, queue stats, and fault
        interleavings are identical with or without lookahead.
        """
        out: list[Any] = []
        if limit <= 0:
            return out
        order = list(range(len(self._queues)))
        if device_id is not None and 0 <= device_id < len(order):
            order.remove(device_id)
            order.insert(0, device_id)
        for qi in order:
            for payload in self._queues[qi].peek_all():
                if predicate(payload):
                    out.append(payload)
                    if len(out) >= limit:
                        return out
        return out

    def frontier(self) -> list[tuple[Hashable, Any, int]]:
        """Pending work: ``(lineage, payload, retries)`` per live entry.

        Valid between simulation steps (notably inside ``on_task_done``
        and after a halted run): no task is mid-execution then, so the
        registry's queued/dropped entries plus the un-pulled roots are
        exactly the remaining work.
        """
        if self._registry is None:
            return []
        return [
            (lineage, e.payload, e.retries)
            for lineage, e in self._registry.items()
            if e.state in (_QUEUED, _DROPPED)
        ]

    # ------------------------------------------------------------------
    # Fault helpers
    # ------------------------------------------------------------------
    def _surviving_sms(self) -> int:
        return sum(
            dev.n_sms - len(self._dead[i])
            for i, dev in enumerate(self._devices)
        )

    def _requeue_target(self, device_id: int) -> TwoLevelTaskQueue:
        """The queue of ``device_id`` if it has a live SM, else the
        first device that does (cross-device re-home after total loss)."""
        if len(self._dead[device_id]) < self._devices[device_id].n_sms:
            return self._queues[device_id]
        for i, dev in enumerate(self._devices):
            if len(self._dead[i]) < dev.n_sms:
                return self._queues[i]
        return self._queues[device_id]  # unreachable: last SM never dies

    def _log_fault(
        self, kind: str, site: str, time: float, unit: SimUnit | None,
        payload: Any, **detail,
    ) -> None:
        if self._fault_log is None:
            return
        lineage = (
            self._lineage_of(payload)
            if payload is not None and self._lineage_of is not None
            else None
        )
        self._fault_log.append(FaultEvent(
            cursor=self._plan.cursor if self._plan is not None else -1,
            kind=kind,
            site=site,
            time=time,
            device=unit.device_id if unit is not None else -1,
            sm=unit.sm if unit is not None else -1,
            unit=unit.unit_id if unit is not None else -1,
            lineage=lineage,
            span_id=self.trace_span_id,
            detail=detail,
        ))

    def _requeue_failed(
        self, payload: Any, device_id: int, avail_time: float,
        entry: LineageEntry | None,
    ) -> None:
        """Charge one failure to the payload's lineage and re-enqueue it
        (or abandon it past the retry budget).

        ``entry`` is the registry entry the dequeue popped — ``None`` on
        a fresh root's first failure.  Either way it is (re-)inserted so
        the retry count survives across attempts.
        """
        assert self._registry is not None  # faults imply lineage tracking
        if entry is None:
            entry = LineageEntry(payload=payload, state=_QUEUED)
        self._registry[self._lineage_of(payload)] = entry
        entry.retries += 1
        if entry.retries > self._max_retries:
            entry.state = _LOST
            self.tasks_lost += 1
            self._log_fault(
                "task_lost", "recovery", avail_time, None, payload,
                retries=entry.retries,
            )
            return
        entry.state = _QUEUED
        self._requeue_target(device_id).requeue(avail_time, payload)
        self.tasks_requeued += 1

    def _displace(self, payload: Any, device_id: int, avail_time: float) -> None:
        """Re-home a task drained from a crashed SM's local queue.

        Displacement is not a failure of the task itself, so its retry
        budget is untouched.
        """
        entry = self._entry_of(payload)
        if entry is not None:
            entry.state = _QUEUED
        self._requeue_target(device_id).requeue(avail_time, payload)
        self.tasks_requeued += 1

    def _recover_orphans(self, device_id: int, now: float) -> bool:
        """Re-enqueue dropped tasks; True if any were recovered."""
        if self._registry is None:
            return False
        recovered = False
        for entry in self._registry.values():
            if entry.state == _DROPPED:
                self._log_fault(
                    "requeue", "recovery", now, None, entry.payload,
                    retries=entry.retries + 1,
                )
                self._requeue_failed(entry.payload, device_id, now, entry)
                recovered = True
        return recovered

    # ------------------------------------------------------------------
    def _pull_root(self) -> tuple[float, Any]:
        """One atomic-counter pull; loops past deduplicated vertices.

        Returns ``(cycles, payload)`` where payload is ``None`` once the
        counter is exhausted (cycles may still be non-zero: cost of the
        final unsuccessful pulls).
        """
        total = 0.0
        while True:
            try:
                cycles, payload = next(self._root_source)
            except StopIteration:
                self._roots_done = True
                return total, None
            total += cycles
            if payload is not None:
                return total, payload

    def run(self) -> SimReport:
        """Simulate until all units retire; returns the report."""
        heap: list[tuple[float, int]] = [(0.0, u.unit_id) for u in self._units]
        heapq.heapify(heap)
        halted = False
        while True:
            halted = self._run_heap(heap)
            if halted:
                break
            # Recovery sweep: tasks can be stranded on a device whose
            # units all retired before a fault re-homed work there.
            # Wake one unit on a surviving SM, migrate every stranded
            # queued payload to its device, and re-enter the loop.
            pending = self.frontier()
            if not pending:
                break
            unit = next(
                u for u in self._units
                if u.sm not in self._dead[u.device_id]
            )
            target = self._queues[unit.device_id]
            for i, q in enumerate(self._queues):
                if q is target:
                    continue
                for payload in q.drain_all():
                    target.requeue(unit.free_at, payload)
            self._recover_orphans(unit.device_id, unit.free_at)
            heapq.heappush(heap, (unit.free_at, unit.unit_id))
        per_device = [rec.makespan() for rec in self._recorders]
        return SimReport(
            makespan_cycles=max(per_device, default=0.0),
            per_device_cycles=per_device,
            recorders=self._recorders,
            queue_stats=[q.stats for q in self._queues],
            tasks_executed=self.tasks_executed,
            tasks_split=self.tasks_split,
            fault_log=self._fault_log,
            tasks_requeued=self.tasks_requeued,
            tasks_lost=self.tasks_lost,
            halted=halted,
            phase_cycles=(
                dict(self._phase_cycles)
                if self._phase_cycles is not None
                else None
            ),
            queue_depth_samples=self._depth_samples,
            split_events=self._split_events,
        )

    def _run_heap(self, heap: list[tuple[float, int]]) -> bool:
        """Drain the event heap; returns True if halted early.

        The registry bookkeeping is inlined (rather than via
        ``_register``/``_entry_of``) because it runs once per task: the
        robust-mode overhead budget is 5% of the whole kernel (see
        ``benchmarks/bench_faults.py``).
        """
        registry = self._registry
        lineage_of = self._lineage_of
        plan = self._plan
        # Hoisted: one truthiness check per task when telemetry is off.
        phases = self._phase_cycles
        depth_samples = self._depth_samples
        split_events = self._split_events
        while heap:
            now, unit_id = heapq.heappop(heap)
            unit = self._units[unit_id]
            if unit.sm in self._dead[unit.device_id]:
                continue  # the SM died while this unit was scheduled
            dev = self._devices[unit.device_id]
            queue = self._queues[unit.device_id]
            recorder = self._recorders[unit.device_id]

            start = now
            acquire_cycles = 0.0
            got = queue.pop_ready(unit.sm, now)
            payload = None
            if got is not None:
                payload, level = got
                acquire_cycles += (
                    dev.local_queue_cycles
                    if level == "local"
                    else dev.global_queue_cycles
                )
            elif not self._roots_done:
                root_cycles, payload = self._pull_root()
                acquire_cycles += root_cycles + self._root_surcharges[unit.device_id]
                if payload is None and root_cycles > 0:
                    # charge the wasted pulls, then retry the queues
                    recorder.record(unit.record_key, start, start + acquire_cycles)
                    unit.free_at = start + acquire_cycles
                    heapq.heappush(heap, (unit.free_at, unit_id))
                    continue
            if payload is None:
                waiting = queue.pop_earliest(unit.sm)
                if waiting is None:
                    # Before retiring, recover any silently dropped
                    # tasks onto this device and try again.
                    if self._recover_orphans(unit.device_id, now):
                        heapq.heappush(heap, (now, unit_id))
                        continue
                    continue  # retire this unit
                payload, avail, level = waiting
                acquire_cycles += (
                    dev.local_queue_cycles
                    if level == "local"
                    else dev.global_queue_cycles
                )
                start = max(now, avail)

            # Claim the task: pop its registry entry (present for queued
            # children / requeued work, absent for fresh roots).  It is
            # re-inserted only on failure, so the fault-free path costs
            # one dict op and no LineageEntry allocation.  Between heap
            # events no task is mid-execution (execution is synchronous
            # per event), so the registry never needs a RUNNING state.
            entry = None
            if registry is not None:
                entry = registry.pop(lineage_of(payload), None)

            decision = plan.at_execute() if plan is not None else None
            if decision is not None and decision.kind == "warp_hang":
                # Wedged before useful work; the watchdog reclaims the
                # unit and the task moves to a surviving SM.
                end = start + acquire_cycles + self._plan.watchdog_cycles
                recorder.record(unit.record_key, start, end)
                if phases is not None:
                    phases["queue_acquire"] += acquire_cycles
                    phases["watchdog"] += self._plan.watchdog_cycles
                self._log_fault(
                    "warp_hang", "execute", end, unit, payload,
                    fraction=decision.fraction,
                    watchdog_cycles=self._plan.watchdog_cycles,
                )
                self._requeue_failed(payload, unit.device_id, end, entry)
                unit.free_at = end
                heapq.heappush(heap, (end, unit_id))
                continue

            outcome = self._execute(payload, unit.device_id)

            if (
                decision is not None
                and decision.kind == "sm_crash"
                and self._surviving_sms() > 1
            ):
                # The SM dies partway through the task: its partial
                # emissions are deduplicated by the kernel's lineage
                # ledger, its children are lost (regenerated on retry),
                # and its local queue migrates to the global queue.
                frac = 0.25 + 0.5 * decision.fraction
                end = start + acquire_cycles + outcome.cycles * frac
                recorder.record(unit.record_key, start, end)
                self._dead[unit.device_id].add(unit.sm)
                drained = queue.drain_sm(unit.sm)
                self._log_fault(
                    "sm_crash", "execute", end, unit, payload,
                    fraction=decision.fraction, drained=len(drained),
                )
                self._requeue_failed(payload, unit.device_id, end, entry)
                for dp in drained:
                    self._displace(dp, unit.device_id, end)
                continue  # the unit dies with its SM

            cycles = outcome.cycles
            if decision is not None and decision.kind == "mem_pressure":
                # Transient pressure spike: the work survives but runs
                # pressure_factor times slower.
                cycles *= plan.pressure_factor
                self._log_fault(
                    "mem_pressure", "execute",
                    start + acquire_cycles + cycles, unit, payload,
                    fraction=decision.fraction,
                    pressure_factor=plan.pressure_factor,
                )

            self.tasks_executed += 1
            if outcome.children:
                self.tasks_split += 1
            end = start + acquire_cycles + cycles
            recorder.record(unit.record_key, start, end)
            if phases is not None:
                phases["queue_acquire"] += acquire_cycles
                phases["execute"] += cycles
                depth_samples.append((end, unit.device_id, len(queue)))
                if outcome.children:
                    split_events.append(
                        (end, unit.device_id, len(outcome.children))
                    )
            for offset, child in outcome.children:
                avail_time = start + acquire_cycles + offset
                if registry is not None:
                    # children carry fresh lineages (a retried parent's
                    # prior children were never pushed), so this is a
                    # plain insert, never an update
                    centry = LineageEntry(payload=child, state=_QUEUED)
                    registry[lineage_of(child)] = centry
                else:
                    centry = None
                drop = plan.at_push() if plan is not None else None
                if drop is not None:
                    if centry is not None:
                        centry.state = _DROPPED
                    self._log_fault(
                        "queue_drop", "push", avail_time, unit, child,
                        fraction=drop.fraction,
                    )
                    continue
                queue.push(unit.sm, avail_time, child)
            if self.on_task_done is not None:
                self.on_task_done(self.tasks_executed, end)
            unit.free_at = end
            heapq.heappush(heap, (end, unit_id))
            if (
                self._halt_after is not None
                and self.tasks_executed >= self._halt_after
            ):
                return True
        return False
