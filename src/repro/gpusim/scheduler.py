"""Persistent-thread scheduler simulation.

Implements the execution model of Alg. 4 as a discrete-event simulation:
a fixed set of *units* (warps, or whole blocks for the block-centric
variant) repeatedly acquire work — first from their device's two-level
task queue, then from the shared ``processing_v`` atomic counter — until
both sources are exhausted.  Executing a task may spawn child tasks
(the load-aware split), which become available to other units at the
simulated moment their creation finished.

The scheduler is policy-free about *what* a task is: the GMBE kernel
supplies two callbacks, one producing root tasks from the atomic
counter and one executing/splitting a task.  All durations are in
modeled warp-step cycles; devices convert to seconds afterwards.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .device import DeviceSpec
from .queues import TwoLevelTaskQueue
from .timeline import BusyRecorder

__all__ = ["ExecOutcome", "SimUnit", "SimReport", "PersistentThreadScheduler"]


@dataclass
class ExecOutcome:
    """What executing one task produced.

    ``children`` are ``(cycles_offset, payload)`` pairs: the child became
    enqueueable ``cycles_offset`` cycles after the task started (its
    generation pass finished then).
    """

    cycles: float
    children: list[tuple[float, Any]] = field(default_factory=list)


@dataclass
class SimUnit:
    """One schedulable execution unit (a warp, or a block)."""

    unit_id: int
    device_id: int
    sm: int
    #: resident slot within the SM (0..units_per_sm-1); together with
    #: ``sm`` it forms the device-local key busy intervals are recorded
    #: under, so timeline grouping by SM works on any device count.
    slot: int = 0
    free_at: float = 0.0

    @property
    def record_key(self) -> int:
        return self.sm * 10_000 + self.slot


@dataclass
class SimReport:
    """Aggregate outcome of a kernel simulation (cycle units)."""

    makespan_cycles: float
    per_device_cycles: list[float]
    recorders: list[BusyRecorder]
    queue_stats: list
    tasks_executed: int
    tasks_split: int


class PersistentThreadScheduler:
    """Discrete-event persistent-thread execution across devices.

    Parameters
    ----------
    devices:
        One :class:`DeviceSpec` per simulated GPU (all identical for the
        paper's multi-GPU runs, but heterogeneity is allowed).
    units_per_sm:
        Schedulable units per SM (``warps_per_sm`` for warp/task
        scheduling, 1 for block-centric).
    root_source:
        Iterator of ``(cycles, payload | None)``: one pull of the shared
        atomic counter.  ``None`` payloads are deduplicated/empty tasks
        whose construction cost is still charged to the pulling unit.
    execute:
        ``execute(payload, device_id) -> ExecOutcome``.
    local_queue_capacity:
        Capacity of each SM-local queue before spilling to global.
    """

    def __init__(
        self,
        devices: list[DeviceSpec],
        units_per_sm: int,
        root_source: Iterator[tuple[float, Any]],
        execute: Callable[[Any, int], ExecOutcome],
        *,
        local_queue_capacity: int = 64,
        root_pull_surcharges: list[float] | None = None,
    ) -> None:
        if not devices:
            raise ValueError("need at least one device")
        if root_pull_surcharges is not None and len(root_pull_surcharges) != len(devices):
            raise ValueError("one root-pull surcharge per device required")
        self._devices = devices
        self._root_source = root_source
        self._execute = execute
        #: extra cycles a device pays per shared-counter pull — models the
        #: network round-trip of a *system-wide* atomicInc when devices
        #: live on different machines (the paper's distributed extension).
        self._root_surcharges = root_pull_surcharges or [0.0] * len(devices)
        self._units: list[SimUnit] = []
        self._unit_sm_width = units_per_sm
        # Interleave units across SMs and devices (slot-major order): all
        # persistent warps start pulling the shared atomic counter at the
        # same instant, so work must spread over every SM of every device
        # rather than filling SM 0 first.
        max_sms = max(dev.n_sms for dev in devices)
        for slot in range(units_per_sm):
            for sm in range(max_sms):
                for dev_id, dev in enumerate(devices):
                    if sm < dev.n_sms:
                        self._units.append(
                            SimUnit(
                                unit_id=len(self._units),
                                device_id=dev_id,
                                sm=sm,
                                slot=slot,
                            )
                        )
        self._queues = [
            TwoLevelTaskQueue(dev.n_sms, local_capacity=local_queue_capacity)
            for dev in devices
        ]
        self._recorders = [BusyRecorder() for _ in devices]
        self._roots_done = False
        self.tasks_executed = 0
        self.tasks_split = 0

    # ------------------------------------------------------------------
    def _pull_root(self) -> tuple[float, Any]:
        """One atomic-counter pull; loops past deduplicated vertices.

        Returns ``(cycles, payload)`` where payload is ``None`` once the
        counter is exhausted (cycles may still be non-zero: cost of the
        final unsuccessful pulls).
        """
        total = 0.0
        while True:
            try:
                cycles, payload = next(self._root_source)
            except StopIteration:
                self._roots_done = True
                return total, None
            total += cycles
            if payload is not None:
                return total, payload

    def run(self) -> SimReport:
        """Simulate until all units retire; returns the report."""
        heap: list[tuple[float, int]] = [(0.0, u.unit_id) for u in self._units]
        heapq.heapify(heap)
        while heap:
            now, unit_id = heapq.heappop(heap)
            unit = self._units[unit_id]
            dev = self._devices[unit.device_id]
            queue = self._queues[unit.device_id]
            recorder = self._recorders[unit.device_id]

            start = now
            acquire_cycles = 0.0
            got = queue.pop_ready(unit.sm, now)
            payload = None
            if got is not None:
                payload, level = got
                acquire_cycles += (
                    dev.local_queue_cycles
                    if level == "local"
                    else dev.global_queue_cycles
                )
            elif not self._roots_done:
                root_cycles, payload = self._pull_root()
                acquire_cycles += root_cycles + self._root_surcharges[unit.device_id]
                if payload is None and root_cycles > 0:
                    # charge the wasted pulls, then retry the queues
                    recorder.record(unit.record_key, start, start + acquire_cycles)
                    unit.free_at = start + acquire_cycles
                    heapq.heappush(heap, (unit.free_at, unit_id))
                    continue
            if payload is None:
                waiting = queue.pop_earliest(unit.sm)
                if waiting is None:
                    continue  # retire this unit
                payload, avail, level = waiting
                acquire_cycles += (
                    dev.local_queue_cycles
                    if level == "local"
                    else dev.global_queue_cycles
                )
                start = max(now, avail)

            outcome = self._execute(payload, unit.device_id)
            self.tasks_executed += 1
            if outcome.children:
                self.tasks_split += 1
            end = start + acquire_cycles + outcome.cycles
            recorder.record(unit.record_key, start, end)
            for offset, child in outcome.children:
                avail_time = start + acquire_cycles + offset
                level = queue.push(unit.sm, avail_time, child)
            unit.free_at = end
            heapq.heappush(heap, (end, unit_id))
        per_device = [rec.makespan() for rec in self._recorders]
        return SimReport(
            makespan_cycles=max(per_device, default=0.0),
            per_device_cycles=per_device,
            recorders=self._recorders,
            queue_stats=[q.stats for q in self._queues],
            tasks_executed=self.tasks_executed,
            tasks_split=self.tasks_split,
        )
