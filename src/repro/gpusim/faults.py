"""Deterministic fault injection for the persistent-thread scheduler.

Real GMBE deployments on shared clusters treat worker failure as normal:
SMs get preempted, warps wedge on memory stalls, lock-free queue pushes
lose the CAS race, and memory-pressure spikes stretch kernels.  This
module models that fault surface *deterministically* so the recovery
machinery (task lineage, bounded requeue, exactly-once emission,
checkpoint/resume) can be tested bit-for-bit:

- :class:`FaultPlan` is a seeded decision source consulted by
  :class:`~repro.gpusim.scheduler.PersistentThreadScheduler` at its
  execute and enqueue boundaries.  Every consult advances a cursor and
  draws exactly **one** uniform variate, so a plan's state is fully
  described by ``(seed, cursor)`` — the property checkpoint/resume
  relies on to continue a faulty run mid-stream.
- :class:`FaultLog` records every injected fault (kind, simulated time,
  unit/SM, task lineage, plan cursor).  A log can be serialized and
  handed back to :func:`replay_plan`, which re-fires exactly the logged
  faults at the same consult cursors — the ``gmbe faults replay``
  debugging workflow.

Fault taxonomy (see DESIGN.md §9):

``sm_crash``
    The executing SM dies mid-task and stays dead.  The task's partial
    work is discarded (its emissions are deduplicated by the kernel's
    lineage ledger), the SM-local queue contents migrate to the global
    queue, and the task is re-enqueued on a surviving SM.
``warp_hang``
    The unit wedges before doing useful work; a watchdog reclaims it
    after ``watchdog_cycles`` and the task is re-enqueued.
``queue_drop``
    An enqueue is silently lost (a lost CAS).  The lineage registry
    still holds the task; the driver's recovery sweep re-enqueues it.
``mem_pressure``
    A transient memory-pressure spike stretches one task's execution by
    ``pressure_factor``; no work is lost.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "FaultDecision",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "ReplayFaultPlan",
    "replay_plan",
]

#: Injectable fault kinds, in decision-threshold order.
FAULT_KINDS = ("sm_crash", "warp_hang", "queue_drop", "mem_pressure")


@dataclass(frozen=True)
class FaultDecision:
    """One positive consult outcome.

    ``fraction`` is a deterministic value in ``[0, 1)`` derived from the
    same uniform draw that selected the kind; the scheduler uses it for
    sub-decisions (how far into a task an SM crash lands) so one consult
    never needs a second draw.
    """

    kind: str
    cursor: int
    fraction: float = 0.0


@dataclass
class FaultEvent:
    """One injected fault, as recorded in the :class:`FaultLog`."""

    cursor: int
    kind: str
    site: str  # "execute" | "push" | "recovery"
    time: float
    device: int = -1
    sm: int = -1
    unit: int = -1
    lineage: object = None
    #: id of the telemetry span the owning kernel ran under (``None``
    #: when tracing is off) — the job→task→fault correlation key
    span_id: str | None = None
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "cursor": self.cursor,
            "kind": self.kind,
            "site": self.site,
            "time": self.time,
            "device": self.device,
            "sm": self.sm,
            "unit": self.unit,
            "lineage": list(self.lineage) if self.lineage is not None else None,
            "span_id": self.span_id,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        lineage = data.get("lineage")
        return cls(
            cursor=int(data["cursor"]),
            kind=str(data["kind"]),
            site=str(data.get("site", "execute")),
            time=float(data.get("time", 0.0)),
            device=int(data.get("device", -1)),
            sm=int(data.get("sm", -1)),
            unit=int(data.get("unit", -1)),
            lineage=tuple(lineage) if lineage is not None else None,
            span_id=data.get("span_id"),
            detail=dict(data.get("detail", {})),
        )


class FaultLog:
    """Ordered record of injected faults plus the plan that caused them."""

    def __init__(self, plan_state: dict | None = None) -> None:
        self.events: list[FaultEvent] = []
        self.plan_state = dict(plan_state or {})

    def append(self, event: FaultEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts(self) -> dict:
        """Event tally by kind (the FaultLog summary in SimReport)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(
            {
                "kind": "gmbe-fault-log",
                "plan": self.plan_state,
                "events": [ev.to_dict() for ev in self.events],
            },
            **kwargs,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultLog":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault log is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("kind") != "gmbe-fault-log":
            raise ValueError(
                "not a fault log (missing 'kind': 'gmbe-fault-log'); "
                "expected a file written by FaultLog.to_json / --fault-log"
            )
        log = cls(plan_state=data.get("plan"))
        for ev in data.get("events", ()):
            log.append(FaultEvent.from_dict(ev))
        return log

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultLog":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class FaultPlan:
    """Seeded, cursor-addressable fault decision source.

    Parameters are per-consult probabilities.  The execute-site kinds
    (``sm_crash``, ``warp_hang``, ``mem_pressure``) partition one
    uniform draw, so their probabilities must sum to at most 1;
    ``queue_drop`` applies at the push site with its own draw.

    ``max_faults`` bounds the total number of positive decisions — the
    knob tests use to guarantee no lineage can exceed its retry budget.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        p_sm_crash: float = 0.0,
        p_warp_hang: float = 0.0,
        p_queue_drop: float = 0.0,
        p_mem_pressure: float = 0.0,
        pressure_factor: float = 4.0,
        watchdog_cycles: float = 512.0,
        max_faults: int | None = None,
    ) -> None:
        probs = {
            "p_sm_crash": p_sm_crash,
            "p_warp_hang": p_warp_hang,
            "p_queue_drop": p_queue_drop,
            "p_mem_pressure": p_mem_pressure,
        }
        for name, p in probs.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if p_sm_crash + p_warp_hang + p_mem_pressure > 1.0:
            raise ValueError(
                "execute-site probabilities (sm_crash + warp_hang + "
                "mem_pressure) must sum to at most 1"
            )
        if pressure_factor < 1.0:
            raise ValueError("pressure_factor must be >= 1")
        if watchdog_cycles < 0:
            raise ValueError("watchdog_cycles must be non-negative")
        if max_faults is not None and max_faults < 0:
            raise ValueError("max_faults must be non-negative")
        self.seed = seed
        self.p_sm_crash = p_sm_crash
        self.p_warp_hang = p_warp_hang
        self.p_queue_drop = p_queue_drop
        self.p_mem_pressure = p_mem_pressure
        self.pressure_factor = pressure_factor
        self.watchdog_cycles = watchdog_cycles
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        #: bound method, cached: at_execute/at_push run once per
        #: task/enqueue in the scheduler's hot loop
        self._random = self._rng.random
        #: execute-site decision table, positive-probability kinds only
        #: (empty for an armed-but-idle zero-probability plan)
        self._exec_table = []
        lo = 0.0
        for kind, p in (
            ("sm_crash", p_sm_crash),
            ("warp_hang", p_warp_hang),
            ("mem_pressure", p_mem_pressure),
        ):
            if p > 0.0:
                self._exec_table.append((kind, lo, lo + p, p))
            lo += p
        self.cursor = 0
        self.faults_fired = 0

    # ------------------------------------------------------------------
    def _draw(self) -> float:
        self.cursor += 1
        return self._random()

    def _exhausted(self) -> bool:
        return self.max_faults is not None and self.faults_fired >= self.max_faults

    def at_execute(self) -> FaultDecision | None:
        """Consult at the execute boundary (one draw, always)."""
        self.cursor += 1
        u = self._random()
        if not self._exec_table or self._exhausted():
            return None
        for kind, lo, hi, p in self._exec_table:
            if lo <= u < hi:
                self.faults_fired += 1
                return FaultDecision(
                    kind=kind, cursor=self.cursor, fraction=(u - lo) / p
                )
        return None

    def at_push(self) -> FaultDecision | None:
        """Consult at the enqueue boundary (one draw, always)."""
        self.cursor += 1
        u = self._random()
        if self.p_queue_drop > 0.0 and u < self.p_queue_drop:
            if self._exhausted():
                return None
            self.faults_fired += 1
            return FaultDecision(
                kind="queue_drop",
                cursor=self.cursor,
                fraction=u / self.p_queue_drop,
            )
        return None

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-able full state; see :meth:`from_state`."""
        return {
            "type": "FaultPlan",
            "seed": self.seed,
            "cursor": self.cursor,
            "faults_fired": self.faults_fired,
            "p_sm_crash": self.p_sm_crash,
            "p_warp_hang": self.p_warp_hang,
            "p_queue_drop": self.p_queue_drop,
            "p_mem_pressure": self.p_mem_pressure,
            "pressure_factor": self.pressure_factor,
            "watchdog_cycles": self.watchdog_cycles,
            "max_faults": self.max_faults,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FaultPlan":
        """Rebuild a plan mid-stream (checkpoint resume).

        The RNG is restored by replaying ``cursor`` draws — valid because
        every consult draws exactly once.
        """
        plan = cls(
            int(state["seed"]),
            p_sm_crash=float(state.get("p_sm_crash", 0.0)),
            p_warp_hang=float(state.get("p_warp_hang", 0.0)),
            p_queue_drop=float(state.get("p_queue_drop", 0.0)),
            p_mem_pressure=float(state.get("p_mem_pressure", 0.0)),
            pressure_factor=float(state.get("pressure_factor", 4.0)),
            watchdog_cycles=float(state.get("watchdog_cycles", 512.0)),
            max_faults=state.get("max_faults"),
        )
        plan.fast_forward(int(state.get("cursor", 0)))
        plan.faults_fired = int(state.get("faults_fired", 0))
        return plan

    def fast_forward(self, cursor: int) -> None:
        """Advance a fresh plan to ``cursor`` consults without effects."""
        if cursor < self.cursor:
            raise ValueError(
                f"cannot rewind fault plan (at {self.cursor}, asked {cursor})"
            )
        while self.cursor < cursor:
            self._draw()


class ReplayFaultPlan:
    """Fires exactly the faults of a recorded :class:`FaultLog`.

    Decisions are keyed by consult cursor: because the simulation is
    deterministic, consult ``k`` of the replay run is the same boundary
    as consult ``k`` of the recorded run, so the same task fails in the
    same way at the same simulated moment.
    """

    def __init__(self, log: FaultLog) -> None:
        self._by_cursor: dict[int, FaultEvent] = {}
        for ev in log.events:
            if ev.kind in FAULT_KINDS:
                self._by_cursor[ev.cursor] = ev
        state = log.plan_state or {}
        self.seed = state.get("seed")
        self.pressure_factor = float(state.get("pressure_factor", 4.0))
        self.watchdog_cycles = float(state.get("watchdog_cycles", 512.0))
        self.cursor = 0
        self.faults_fired = 0

    def _decide(self, site: str) -> FaultDecision | None:
        self.cursor += 1
        ev = self._by_cursor.get(self.cursor)
        if ev is None:
            return None
        self.faults_fired += 1
        return FaultDecision(
            kind=ev.kind,
            cursor=self.cursor,
            fraction=float(ev.detail.get("fraction", 0.0)),
        )

    def at_execute(self) -> FaultDecision | None:
        return self._decide("execute")

    def at_push(self) -> FaultDecision | None:
        return self._decide("push")

    def state(self) -> dict:
        return {"type": "ReplayFaultPlan", "cursor": self.cursor}


def replay_plan(log: FaultLog) -> ReplayFaultPlan:
    """Build the plan that re-fires exactly the faults of ``log``."""
    return ReplayFaultPlan(log)
