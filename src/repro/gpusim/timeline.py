"""Busy-interval bookkeeping and active-SM timelines (Figs. 4 and 9).

The scheduler records one ``(start, end)`` interval per executed task per
warp.  This module folds those into the paper's diagnostic curve: *number
of SMs with at least one busy warp, as a function of simulated time*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BusyRecorder", "active_sm_curve", "active_units_curve"]


@dataclass
class BusyRecorder:
    """Accumulates per-unit busy intervals during a simulation."""

    #: unit id -> list of (start, end) busy intervals
    intervals: dict[int, list[tuple[float, float]]] = field(default_factory=dict)

    def record(self, unit: int, start: float, end: float) -> None:
        if end < start:
            raise ValueError("interval ends before it starts")
        self.intervals.setdefault(unit, []).append((start, end))

    def unit_end(self, unit: int) -> float:
        spans = self.intervals.get(unit, [])
        return spans[-1][1] if spans else 0.0

    def makespan(self) -> float:
        return max(
            (spans[-1][1] for spans in self.intervals.values() if spans),
            default=0.0,
        )


def _merge_intervals(spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    if not spans:
        return []
    spans = sorted(spans)
    merged = [spans[0]]
    for s, e in spans[1:]:
        ls, le = merged[-1]
        if s <= le:
            merged[-1] = (ls, max(le, e))
        else:
            merged.append((s, e))
    return merged


def active_units_curve(
    recorder: BusyRecorder,
    unit_to_group,
    *,
    n_samples: int = 200,
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled curve of active groups (e.g. SMs) over time.

    ``unit_to_group`` maps a unit id to its group id; a group is active
    at ``t`` while any of its units has a busy interval covering ``t``.
    Returns ``(times, active_counts)``.
    """
    group_spans: dict[int, list[tuple[float, float]]] = {}
    for unit, spans in recorder.intervals.items():
        group_spans.setdefault(unit_to_group(unit), []).extend(spans)
    horizon = recorder.makespan()
    times = np.linspace(0.0, horizon, n_samples) if horizon > 0 else np.zeros(1)
    counts = np.zeros(len(times), dtype=np.int64)
    for spans in group_spans.values():
        for s, e in _merge_intervals(spans):
            counts += (times >= s) & (times <= e)
    return times, counts


def active_sm_curve(
    recorder: BusyRecorder, warps_per_sm: int = 0, *, n_samples: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 9's curve: active SMs over time, with warps grouped per SM.

    The scheduler records each warp under the key ``sm * 10_000 + slot``
    (see :class:`repro.gpusim.scheduler.SimUnit`), so grouping divides
    the key back down; ``warps_per_sm`` is accepted for API symmetry but
    unused.
    """
    del warps_per_sm
    return active_units_curve(
        recorder, lambda key: key // 10_000, n_samples=n_samples
    )
