"""Chrome-trace export of a simulated kernel run.

Writes the scheduler's busy intervals in the Trace Event Format that
``chrome://tracing`` / Perfetto render: one process per (device, SM),
one thread row per resident warp slot, one complete ``X`` event per
executed task.  Handy for eyeballing the load-balance pathologies the
paper's Figs. 4/9 aggregate.
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..core.bicliques import EnumerationResult

__all__ = ["chrome_trace_events", "write_chrome_trace"]


def chrome_trace_events(result: EnumerationResult) -> list[dict[str, Any]]:
    """Trace events (microsecond timestamps) for a :func:`gmbe_gpu` run."""
    extras = result.extras
    if "report" not in extras or "device" not in extras:
        raise ValueError("chrome_trace_events needs a result from gmbe_gpu")
    report = extras["report"]
    device = extras["device"]
    to_us = 1e6 / device.clock_hz
    events: list[dict[str, Any]] = []
    for dev_id, recorder in enumerate(report.recorders):
        for key, spans in recorder.intervals.items():
            sm, slot = divmod(key, 10_000)
            pid = dev_id * 1000 + sm
            for i, (start, end) in enumerate(spans):
                events.append(
                    {
                        "name": f"task@{sm}.{slot}#{i}",
                        "cat": "gmbe",
                        "ph": "X",
                        "ts": start * to_us,
                        "dur": max((end - start) * to_us, 1e-3),
                        "pid": pid,
                        "tid": slot,
                    }
                )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": dev_id * 1000,
                "args": {"name": f"{device.name}[{dev_id}]"},
            }
        )
    return events


def write_chrome_trace(
    result: EnumerationResult, path: str | os.PathLike[str]
) -> int:
    """Write the trace JSON; returns the number of events written."""
    events = chrome_trace_events(result)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return len(events)
