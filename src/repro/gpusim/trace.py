"""Chrome-trace export of a simulated kernel run.

Writes the scheduler's busy intervals in the Trace Event Format that
``chrome://tracing`` / Perfetto render: one process per (device, SM),
one thread row per resident warp slot, one complete ``X`` event per
executed task.  Handy for eyeballing the load-balance pathologies the
paper's Figs. 4/9 aggregate.

On top of the busy intervals, runs that carry the extra telemetry are
annotated in place:

- instant (``ph: "i"``) events for every injected fault, recovery
  requeue, and load-aware task split, pinned to the (device, SM) row
  where they happened;
- counter (``ph: "C"``) events tracking each device's task-queue depth
  over simulated time — the visual form of the Fig.-9 load-balance
  argument.

Fault annotations need a fault-injected run (``fault_plan=``); queue
depth and split instants need telemetry collection (``telemetry=`` on
:func:`~repro.gmbe.kernel.gmbe_gpu`).  Both degrade to nothing — never
an error — when the run didn't record them.
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..core.bicliques import EnumerationResult
from .extras import require_sim_extras

__all__ = ["chrome_trace_events", "write_chrome_trace"]


def _pid(device: int, sm: int) -> int:
    """(device, SM) → trace process id; negative ids pin to row 0."""
    return max(device, 0) * 1000 + max(sm, 0)


def chrome_trace_events(result: EnumerationResult) -> list[dict[str, Any]]:
    """Trace events (microsecond timestamps) for a :func:`gmbe_gpu` run."""
    report, device = require_sim_extras(result, "chrome_trace_events")
    to_us = 1e6 / device.clock_hz
    events: list[dict[str, Any]] = []
    for dev_id, recorder in enumerate(report.recorders):
        for key, spans in recorder.intervals.items():
            sm, slot = divmod(key, 10_000)
            pid = dev_id * 1000 + sm
            for i, (start, end) in enumerate(spans):
                events.append(
                    {
                        "name": f"task@{sm}.{slot}#{i}",
                        "cat": "gmbe",
                        "ph": "X",
                        "ts": start * to_us,
                        "dur": max((end - start) * to_us, 1e-3),
                        "pid": pid,
                        "tid": slot,
                    }
                )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": dev_id * 1000,
                "args": {"name": f"{device.name}[{dev_id}]"},
            }
        )
    # ------------------------------------------------------------------
    # Annotations (all optional; empty collections add nothing).
    # ------------------------------------------------------------------
    fault_log = getattr(report, "fault_log", None)
    if fault_log is not None:
        for ev in fault_log.events:
            events.append(
                {
                    "name": f"fault:{ev.kind}",
                    "cat": "fault",
                    "ph": "i",
                    # process scope: the marker spans the (device, SM)
                    # row it landed on; recovery events have no unit
                    "s": "p",
                    "ts": ev.time * to_us,
                    "pid": _pid(ev.device, ev.sm),
                    "tid": 0,
                    "args": {
                        "site": ev.site,
                        "lineage": (
                            list(ev.lineage)
                            if ev.lineage is not None
                            else None
                        ),
                        "span_id": ev.span_id,
                        **ev.detail,
                    },
                }
            )
    for time_cycles, dev_id, n_children in report.split_events:
        events.append(
            {
                "name": "task_split",
                "cat": "sched",
                "ph": "i",
                "s": "p",
                "ts": time_cycles * to_us,
                "pid": dev_id * 1000,
                "tid": 0,
                "args": {"children": n_children},
            }
        )
    for time_cycles, dev_id, depth in report.queue_depth_samples:
        events.append(
            {
                "name": "queue_depth",
                "cat": "sched",
                "ph": "C",
                "ts": time_cycles * to_us,
                "pid": dev_id * 1000,
                "args": {"tasks": depth},
            }
        )
    return events


def write_chrome_trace(
    result: EnumerationResult, path: str | os.PathLike[str]
) -> int:
    """Write the trace JSON; returns the number of events written."""
    events = chrome_trace_events(result)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return len(events)
