"""Shared validation of :func:`repro.gmbe.gmbe_gpu` result extras.

Every consumer of a simulated run's ``extras`` (the chrome-trace
exporter, the Nsight-style profiler) needs the same two keys and used to
raise its own slightly different, unhelpful error.  This helper raises
one consistent, actionable message naming the caller, the missing keys,
and where a valid result comes from.
"""

from __future__ import annotations

__all__ = ["require_sim_extras"]

#: ``extras`` keys every simulated-run consumer relies on.
_REQUIRED_KEYS = ("report", "device")


def require_sim_extras(result, caller: str) -> tuple:
    """Return ``(report, device)`` from ``result.extras`` or raise.

    ``caller`` is the public function name used in the error message.
    Raises :class:`ValueError` when ``result`` was not produced by
    :func:`repro.gmbe.gmbe_gpu` (e.g. a host-side enumeration, whose
    extras carry no simulator report).
    """
    extras = getattr(result, "extras", None) or {}
    missing = [key for key in _REQUIRED_KEYS if key not in extras]
    if missing:
        raise ValueError(
            f"{caller} needs a result produced by repro.gmbe.gmbe_gpu: "
            f"result.extras is missing {', '.join(repr(k) for k in missing)}"
            " (host-side enumerations carry no simulator report)"
        )
    return extras["report"], extras["device"]
