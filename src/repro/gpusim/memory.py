"""GPU memory-demand model (paper §3.1 vs §4.1; Fig. 7).

Enumeration in the simulator is functionally identical with or without
node reuse — what differs is how much device memory the real kernel
would have to pre-allocate.  This module computes both layouts from the
graph statistics so the Fig. 7 benchmark can compare them against each
device's capacity:

- **naive (GMBE-w/o_REUSE)**: each concurrent subtree procedure keeps
  every active node live, ``Δ(V) · (Δ(V) + Δ2(V))`` words (§3.1), one
  procedure per SM (that is the most the naive layout can afford);
- **node reuse (GMBE)**: one ``node_buf`` of ``3·Δ(V) + 2·Δ2(V)`` words
  per resident warp (§4.1).

Both include the CSR graph itself, which the host transfers once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.stats import GraphStats
from .device import DeviceSpec

__all__ = ["MemoryModel", "MemoryDemand"]

_WORD = 4  # sizeof(int) on the device, as in the paper's arithmetic


@dataclass(frozen=True)
class MemoryDemand:
    """Bytes a kernel launch would need on a device."""

    graph_bytes: int
    per_procedure_bytes: int
    n_procedures: int

    @property
    def total_bytes(self) -> int:
        return self.graph_bytes + self.per_procedure_bytes * self.n_procedures

    def fits(self, device: DeviceSpec) -> bool:
        return self.total_bytes <= device.global_mem_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / 1024**3


class MemoryModel:
    """Computes Fig. 7's two memory layouts for a dataset."""

    def __init__(self, stats: GraphStats) -> None:
        self._stats = stats

    def graph_bytes(self) -> int:
        """CSR in both directions: indptr + indices per side."""
        s = self._stats
        return _WORD * (2 * (s.n_u + 1) + 2 * (s.n_v + 1) + 4 * s.n_edges)

    def node_buffer_bytes(self) -> int:
        """One reused ``node_buf``: ``(3·Δ(V) + 2·Δ2(V))`` words."""
        return _WORD * self._stats.node_buffer_words()

    def naive_subtree_bytes(self) -> int:
        """One pre-allocated subtree: ``Δ(V)·(Δ(V)+Δ2(V))`` words."""
        return _WORD * self._stats.naive_tree_words()

    def demand_with_reuse(
        self, device: DeviceSpec, *, per: str = "sm"
    ) -> MemoryDemand:
        """GMBE's demand: one reused ``node_buf`` per concurrent procedure.

        ``per="sm"`` allocates one buffer per SM — the accounting behind
        the paper's Fig. 7 (its 49×–4,819× savings and the §3.1 397 GB
        figure both assume 108 procedures on the A100).  ``per="warp"``
        allocates one per resident warp (WarpPerSM × SMs), the amount the
        §4.3 persistent-thread kernel actually needs; it is ~WarpPerSM×
        larger and still fits comfortably (§4.1's '10k procedures').
        """
        if per == "sm":
            n = device.n_sms
        elif per == "warp":
            n = device.n_warps
        else:
            raise ValueError(f"unknown per={per!r}")
        return MemoryDemand(
            graph_bytes=self.graph_bytes(),
            per_procedure_bytes=self.node_buffer_bytes(),
            n_procedures=n,
        )

    def demand_without_reuse(self, device: DeviceSpec) -> MemoryDemand:
        """Naive demand: one full subtree allocation per SM (§3.1)."""
        return MemoryDemand(
            graph_bytes=self.graph_bytes(),
            per_procedure_bytes=self.naive_subtree_bytes(),
            n_procedures=device.n_sms,
        )

    def max_concurrent_procedures(self, device: DeviceSpec) -> int:
        """How many node-reuse procedures fit in the device's memory —
        the 'over 10k procedures on BookCrossing' claim of §4.1."""
        free = device.global_mem_bytes - self.graph_bytes()
        per = self.node_buffer_bytes()
        return max(0, free // per) if per > 0 else 0
