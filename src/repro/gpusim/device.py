"""GPU device models.

A :class:`DeviceSpec` captures what the simulator needs from a GPU:
SM count, resident warps per SM (the PT model's *WarpPerSM*), memory
capacity, and a clock that converts modeled warp-steps into simulated
seconds.  Presets mirror the three boards of the paper's Fig. 12 plus
the 8×V100 machine of Fig. 13.

The per-warp *efficiency derate* models the occupancy trade-off of
Fig. 11: register/shared-memory pressure grows with resident warps, so
per-warp throughput falls once WarpPerSM exceeds the sweet spot.  The
derate curve is a coarse fit to the paper's observation that 16 warps/SM
is best on most datasets while 32 can win on enumeration-heavy ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "A100", "V100", "RTX2080TI", "DEVICE_PRESETS"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one simulated GPU."""

    name: str
    n_sms: int
    global_mem_bytes: int
    clock_hz: float
    #: resident warps per SM under the persistent-thread model
    warps_per_sm: int = 16
    #: peak global-memory bandwidth (bytes/second); per-board datasheet
    mem_bandwidth: float = 1.0e12
    #: cycles to dequeue/enqueue on the block-local (shared-memory) queue
    local_queue_cycles: int = 8
    #: cycles to dequeue/enqueue on the global-memory queue
    global_queue_cycles: int = 64
    #: fixed per-enumeration-node instruction overhead, in warp-steps
    node_overhead_cycles: int = 24
    #: fraction of a block-wide op that parallelizes across its warps.
    #: MBE node processing is mostly warp-granular (small sorted-set ops,
    #: stack bookkeeping, the serial closure chain), so only the candidate
    #: classification pass spreads across a block's warps — the reason the
    #: paper finds block-centric scheduling insufficient (§6.3).
    block_parallel_fraction: float = 0.45

    def __post_init__(self) -> None:
        if self.n_sms <= 0 or self.warps_per_sm <= 0:
            raise ValueError("n_sms and warps_per_sm must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if not 0.0 <= self.block_parallel_fraction <= 1.0:
            raise ValueError("block_parallel_fraction must be in [0, 1]")

    @property
    def n_warps(self) -> int:
        """Total resident warps across the device."""
        return self.n_sms * self.warps_per_sm

    def warp_efficiency(self) -> float:
        """Per-warp throughput derate at the current occupancy.

        1.0 up to 16 resident warps per SM, then a gentle decline as
        register pressure forces spills (Fig. 11's trade-off).
        """
        if self.warps_per_sm <= 16:
            return 1.0
        return max(0.45, 1.0 - 0.022 * (self.warps_per_sm - 16))

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert warp-steps into simulated seconds on this device."""
        return cycles / self.clock_hz

    def with_(self, **changes) -> "DeviceSpec":
        """Functional update, e.g. ``A100.with_(warps_per_sm=32)``."""
        return replace(self, **changes)


#: NVIDIA A100: 108 SMs, 40 GB, 1.555 TB/s — the paper's default platform.
A100 = DeviceSpec(
    name="A100", n_sms=108, global_mem_bytes=40 * 1024**3, clock_hz=1.41e9,
    mem_bandwidth=1.555e12,
)

#: NVIDIA V100: 80 SMs, 32 GB, 0.9 TB/s.
V100 = DeviceSpec(
    name="V100", n_sms=80, global_mem_bytes=32 * 1024**3, clock_hz=1.38e9,
    mem_bandwidth=0.9e12,
)

#: NVIDIA GeForce RTX 2080 Ti: 68 SMs, 11 GB, 616 GB/s.
RTX2080TI = DeviceSpec(
    name="2080Ti", n_sms=68, global_mem_bytes=11 * 1024**3, clock_hz=1.35e9,
    mem_bandwidth=0.616e12,
)

DEVICE_PRESETS = {d.name: d for d in (A100, V100, RTX2080TI)}
