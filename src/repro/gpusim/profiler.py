"""Nsight-Compute-style profile of a simulated kernel run.

The paper profiles GMBE with NVIDIA Nsight Compute and reports ~64%
average warp execution efficiency and ~12% memory utilization across
the datasets (§6.2), attributing both to the irregularity of MBE.  The
simulator exposes the same headline counters, derived from the modeled
run rather than hardware counters:

- **warp execution efficiency** — useful lanes over issued lane-slots:
  ``set_op_work / (32 · simt_cycles)``; short sorted-set rows waste
  lanes exactly the way divergent threads do.
- **memory utilization** — bytes the enumeration actually touched over
  what the device could have streamed in the same simulated time.
- **achieved occupancy** — busy warp-time over resident warp-time.
- **SM efficiency** — time-average of the active-SM fraction (the
  quantity Figs. 4/9 plot).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bicliques import EnumerationResult
from .extras import require_sim_extras
from .timeline import BusyRecorder, active_sm_curve

__all__ = ["KernelProfile", "profile_run"]

_WORD = 4


@dataclass(frozen=True)
class KernelProfile:
    """Headline kernel metrics for one simulated GMBE run."""

    device: str
    sim_seconds: float
    warp_execution_efficiency: float
    memory_utilization: float
    achieved_occupancy: float
    sm_efficiency: float
    tasks_executed: int
    tasks_split: int
    queue_ops: int

    def report(self) -> str:
        """Human-readable block, Nsight-section style."""
        return "\n".join(
            [
                f"Kernel profile on {self.device}",
                f"  Duration                 {self.sim_seconds * 1e6:10.2f} us",
                f"  Warp execution efficiency{self.warp_execution_efficiency:10.1%}",
                f"  Memory utilization       {self.memory_utilization:10.1%}",
                f"  Achieved occupancy       {self.achieved_occupancy:10.1%}",
                f"  SM efficiency            {self.sm_efficiency:10.1%}",
                f"  Tasks executed           {self.tasks_executed:10d}",
                f"  Tasks split              {self.tasks_split:10d}",
                f"  Queue operations         {self.queue_ops:10d}",
            ]
        )


def _busy_time(recorder: BusyRecorder) -> float:
    return sum(
        e - s for spans in recorder.intervals.values() for s, e in spans
    )


def profile_run(result: EnumerationResult) -> KernelProfile:
    """Build a :class:`KernelProfile` from a :func:`gmbe_gpu` result."""
    report, device = require_sim_extras(result, "profile_run")
    units_per_sm = result.extras.get("units_per_sm", device.warps_per_sm)
    c = result.counters

    lane_eff = c.set_op_work / (32.0 * c.simt_cycles) if c.simt_cycles else 0.0

    makespan = report.makespan_cycles
    sim_seconds = device.cycles_to_seconds(makespan)
    bytes_touched = c.set_op_work * _WORD
    n_devices = len(report.recorders)
    capacity = device.mem_bandwidth * sim_seconds * n_devices
    mem_util = min(1.0, bytes_touched / capacity) if capacity > 0 else 0.0

    busy = sum(_busy_time(rec) for rec in report.recorders)
    resident = makespan * device.n_sms * units_per_sm * n_devices
    occupancy = min(1.0, busy / resident) if resident > 0 else 0.0

    sm_fracs = []
    for rec in report.recorders:
        _, counts = active_sm_curve(rec, n_samples=200)
        sm_fracs.append(float(np.mean(counts)) / device.n_sms)
    sm_eff = float(np.mean(sm_fracs)) if sm_fracs else 0.0

    queue_ops = sum(q.total_ops for q in report.queue_stats)
    return KernelProfile(
        device=device.name,
        sim_seconds=sim_seconds,
        warp_execution_efficiency=lane_eff,
        memory_utilization=mem_util,
        achieved_occupancy=occupancy,
        sm_efficiency=min(1.0, sm_eff),
        tasks_executed=report.tasks_executed,
        tasks_split=report.tasks_split,
        queue_ops=queue_ops,
    )
