"""SIMT GPU simulator substrate: device specs, warp-step cost accounting,
the memory-demand model, two-level task queues, the persistent-thread
scheduler, and active-SM timelines."""

from .device import A100, DEVICE_PRESETS, RTX2080TI, V100, DeviceSpec
from .faults import (
    FAULT_KINDS,
    FaultDecision,
    FaultEvent,
    FaultLog,
    FaultPlan,
    ReplayFaultPlan,
    replay_plan,
)
from .extras import require_sim_extras
from .memory import MemoryDemand, MemoryModel
from .profiler import KernelProfile, profile_run
from .trace import chrome_trace_events, write_chrome_trace
from .queues import QueueStats, TwoLevelTaskQueue
from .scheduler import (
    ExecOutcome,
    LineageEntry,
    PersistentThreadScheduler,
    SimReport,
)
from .timeline import BusyRecorder, active_sm_curve, active_units_curve

__all__ = [
    "A100",
    "BusyRecorder",
    "DEVICE_PRESETS",
    "DeviceSpec",
    "ExecOutcome",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "KernelProfile",
    "LineageEntry",
    "ReplayFaultPlan",
    "replay_plan",
    "MemoryDemand",
    "MemoryModel",
    "PersistentThreadScheduler",
    "QueueStats",
    "RTX2080TI",
    "SimReport",
    "TwoLevelTaskQueue",
    "V100",
    "active_sm_curve",
    "active_units_curve",
    "chrome_trace_events",
    "profile_run",
    "require_sim_extras",
    "write_chrome_trace",
]
