"""Two-level lock-free task-queue model (paper §5 *Lock-free task queue*).

The real GMBE keeps one task queue per thread block in shared memory and
a global queue in device memory, managed lock-free with ``atomicCAS``.
The simulator reproduces the *behavioral* contract — SM-local FIFO
preferred, spill to the global queue when the local one is full, idle
warps steal from the global queue — and the *cost* contract: local
operations are cheaper than global ones, and every operation is charged
to the warp performing it.

Items are ``(avail_time, seq, payload)``; an item only becomes visible
to consumers at its ``avail_time`` (when the producing warp finished
creating it).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

__all__ = ["QueueStats", "TwoLevelTaskQueue"]


@dataclass
class QueueStats:
    """Operation counts, for the queue-overhead part of the cost model.

    ``requeues`` counts recovery re-enqueues (failed-task retries,
    crash-drained migrations, checkpoint restores) *separately* from
    fresh pushes: folding them into ``local/global_enqueues`` would
    inflate the Fig.-9-style load-balance statistics, which model only
    first-time task traffic.
    """

    local_enqueues: int = 0
    local_dequeues: int = 0
    global_enqueues: int = 0
    global_dequeues: int = 0
    spills: int = 0
    requeues: int = 0

    @property
    def total_ops(self) -> int:
        return (
            self.local_enqueues
            + self.local_dequeues
            + self.global_enqueues
            + self.global_dequeues
        )


class TwoLevelTaskQueue:
    """Per-SM local queues plus one global queue, time-aware.

    ``local_capacity`` bounds each SM queue (shared memory is small);
    inserts beyond capacity spill to the global queue, which is
    unbounded (device memory).
    """

    def __init__(self, n_sms: int, *, local_capacity: int = 64) -> None:
        if local_capacity < 0:
            raise ValueError("local_capacity must be non-negative")
        self._local: list[list[tuple[float, int, Any]]] = [[] for _ in range(n_sms)]
        self._global: list[tuple[float, int, Any]] = []
        self._capacity = local_capacity
        self._seq = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return sum(len(q) for q in self._local) + len(self._global)

    # ------------------------------------------------------------------
    def push(self, sm: int, avail_time: float, payload: Any) -> str:
        """Enqueue from a warp on ``sm``; returns ``"local"`` or
        ``"global"`` (the level that accepted the task)."""
        self._seq += 1
        item = (avail_time, self._seq, payload)
        local = self._local[sm]
        if len(local) < self._capacity:
            heapq.heappush(local, item)
            self.stats.local_enqueues += 1
            return "local"
        heapq.heappush(self._global, item)
        self.stats.global_enqueues += 1
        self.stats.spills += 1
        return "global"

    def requeue(self, avail_time: float, payload: Any) -> None:
        """Recovery re-enqueue onto the global queue.

        Used when a task must move off a failed unit/SM (or is restored
        from a checkpoint): any surviving SM can steal from the global
        queue.  Counted under ``stats.requeues`` only, never as a fresh
        push (see :class:`QueueStats`).
        """
        self._seq += 1
        heapq.heappush(self._global, (avail_time, self._seq, payload))
        self.stats.requeues += 1

    def drain_sm(self, sm: int) -> list[Any]:
        """Remove and return every payload in one SM's local queue.

        Called when that SM crashes: its shared-memory queue contents
        are gone from the device's perspective, and the driver's lineage
        registry re-homes them via :meth:`requeue`.
        """
        drained = [payload for _, _, payload in self._local[sm]]
        self._local[sm].clear()
        return drained

    def drain_all(self) -> list[Any]:
        """Remove and return every queued payload (local + global).

        The end-of-run recovery sweep uses this to migrate stranded
        tasks from a device whose consumers have all retired.
        """
        out: list[Any] = []
        for q in self._local:
            out.extend(payload for _, _, payload in q)
            q.clear()
        out.extend(payload for _, _, payload in self._global)
        self._global.clear()
        return out

    def peek_all(self):
        """Yield every queued payload (locals then global) *without*
        removing anything and without charging queue operations.

        This is the batched-execution lookahead (DESIGN.md §10): the
        kernel inspects compatible sibling tasks to precompute their
        outcomes, but the tasks stay queued and are still popped —
        and charged — at their own dequeue events, so the simulated
        schedule is untouched.
        """
        for q in self._local:
            for _, _, payload in q:
                yield payload
        for _, _, payload in self._global:
            yield payload

    def pop_ready(self, sm: int, now: float) -> tuple[Any, str] | None:
        """Dequeue a task already available at ``now``; local first."""
        local = self._local[sm]
        if local and local[0][0] <= now:
            _, _, payload = heapq.heappop(local)
            self.stats.local_dequeues += 1
            return payload, "local"
        if self._global and self._global[0][0] <= now:
            _, _, payload = heapq.heappop(self._global)
            self.stats.global_dequeues += 1
            return payload, "global"
        return None

    def pop_earliest(self, sm: int) -> tuple[Any, float, str] | None:
        """Dequeue the earliest-available task regardless of time.

        Used when a warp has nothing else to do and must wait; returns
        ``(payload, avail_time, level)``.
        """
        local = self._local[sm]
        best: str | None = None
        if local and (not self._global or local[0][0] <= self._global[0][0]):
            best = "local"
        elif self._global:
            best = "global"
        if best is None:
            # Steal from a sibling SM's local queue as a last resort (the
            # proxy warp migrating tasks through the global queue).
            candidates = [
                (q[0][0], i) for i, q in enumerate(self._local) if q
            ]
            if not candidates:
                return None
            _, owner = min(candidates)
            avail, _, payload = heapq.heappop(self._local[owner])
            self.stats.global_dequeues += 1
            self.stats.spills += 1
            return payload, avail, "global"
        if best == "local":
            avail, _, payload = heapq.heappop(local)
            self.stats.local_dequeues += 1
            return payload, avail, "local"
        avail, _, payload = heapq.heappop(self._global)
        self.stats.global_dequeues += 1
        return payload, avail, "global"
