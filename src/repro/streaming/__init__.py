"""Streaming substrate: dynamic bipartite graphs and incremental
maintenance of the maximal biclique set under edge updates."""

from .dynamic_graph import DynamicBipartiteGraph
from .maintainer import BicliqueMaintainer

__all__ = ["BicliqueMaintainer", "DynamicBipartiteGraph"]
