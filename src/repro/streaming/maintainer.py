"""Incremental maintenance of the maximal biclique set under edge updates.

The paper's related work (§7) cites efficient maintenance for maximal
bicliques in bipartite graph streams (Ma et al., WWW J. 2022).  This
module implements a clean *locality* algorithm built on two facts, both
proved in the method docstrings' terms:

1. a maximal biclique containing neither endpoint of the updated edge
   is entirely unaffected — its edges don't change, and any new
   extension vertex would need adjacency to the whole biclique through
   the updated edge's endpoints, which it cannot gain;
2. every *new* maximal biclique (and every invalidated one) contains an
   endpoint of the updated edge — for insertions both endpoints, for
   deletions at least one.

So each update (a) drops the maintained bicliques containing either
endpoint and (b) re-enumerates the two *local* neighborhoods — the
induced subgraph ``({u} ∪ N2(u)) × N(u)`` contains every maximal
biclique through ``u``, and maximality there coincides with global
maximality for those bicliques.  Cost is proportional to the endpoint
neighborhoods, not the graph.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core import oombea
from ..core.bicliques import Biclique, BicliqueCollector
from ..graph.bipartite import BipartiteGraph
from .dynamic_graph import DynamicBipartiteGraph

__all__ = ["BicliqueMaintainer"]


class BicliqueMaintainer:
    """Maintains the full set of maximal bicliques across edge updates.

    Parameters
    ----------
    graph:
        Optional initial graph; its maximal bicliques are enumerated
        once at construction (via ooMBEA).

    Attributes
    ----------
    bicliques:
        The maintained set, always exactly the maximal bicliques of the
        current graph (both sides non-empty).
    """

    def __init__(self, graph: BipartiteGraph | None = None) -> None:
        if graph is not None:
            self.graph = DynamicBipartiteGraph.from_graph(graph)
            collector = BicliqueCollector()
            oombea(graph, collector)
            initial = collector.as_set()
        else:
            self.graph = DynamicBipartiteGraph()
            initial = set()
        self._bicliques: dict[Biclique, None] = {}
        self._by_u: dict[int, set[Biclique]] = {}
        self._by_v: dict[int, set[Biclique]] = {}
        for b in initial:
            self._index(b)
        #: update statistics: how much local work each update did
        self.stats = {"updates": 0, "dropped": 0, "added": 0}

    # ------------------------------------------------------------------
    @property
    def bicliques(self) -> set[Biclique]:
        return set(self._bicliques)

    def __len__(self) -> int:
        return len(self._bicliques)

    def __contains__(self, b: Biclique) -> bool:
        return b in self._bicliques

    # ------------------------------------------------------------------
    def _index(self, b: Biclique) -> None:
        if b in self._bicliques:
            return
        self._bicliques[b] = None
        for u in b.left:
            self._by_u.setdefault(u, set()).add(b)
        for v in b.right:
            self._by_v.setdefault(v, set()).add(b)

    def _unindex(self, b: Biclique) -> None:
        if b not in self._bicliques:
            return
        del self._bicliques[b]
        for u in b.left:
            self._by_u.get(u, set()).discard(b)
        for v in b.right:
            self._by_v.get(v, set()).discard(b)

    def _local_maximal_through_u(self, u: int) -> set[Biclique]:
        """All maximal bicliques of the current graph with ``u ∈ L``."""
        n_u = self.graph.neighbors_u(u)
        if not n_u:
            return set()
        us = self.graph.two_hop_u(u) | {u}
        sub, u_ids, v_ids = self.graph.induced_subgraph(us, n_u)
        collector = BicliqueCollector()
        oombea(sub, collector)
        u_pos = int(np.searchsorted(u_ids, u))
        out = set()
        for b in collector.bicliques:
            if u_pos in b.left:
                out.add(
                    Biclique.make(u_ids[list(b.left)], v_ids[list(b.right)])
                )
        return out

    def _local_maximal_through_v(self, v: int) -> set[Biclique]:
        """All maximal bicliques of the current graph with ``v ∈ R``."""
        n_v = self.graph.neighbors_v(v)
        if not n_v:
            return set()
        vs = self.graph.two_hop_v(v) | {v}
        sub, u_ids, v_ids = self.graph.induced_subgraph(n_v, vs)
        collector = BicliqueCollector()
        oombea(sub, collector)
        v_pos = int(np.searchsorted(v_ids, v))
        out = set()
        for b in collector.bicliques:
            if v_pos in b.right:
                out.add(
                    Biclique.make(u_ids[list(b.left)], v_ids[list(b.right)])
                )
        return out

    def _update_around(self, u: int, v: int) -> None:
        """Drop-and-reenumerate the locality of the updated edge."""
        stale = set(self._by_u.get(u, ())) | set(self._by_v.get(v, ()))
        for b in stale:
            self._unindex(b)
        fresh = self._local_maximal_through_u(u) | self._local_maximal_through_v(v)
        for b in fresh:
            self._index(b)
        self.stats["updates"] += 1
        self.stats["dropped"] += len(stale)
        self.stats["added"] += len(fresh)

    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)`` and repair the maintained set.

        Returns False (and changes nothing) if the edge already existed.
        """
        if not self.graph.insert_edge(u, v):
            return False
        self._update_around(u, v)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete edge ``(u, v)`` and repair the maintained set."""
        if not self.graph.delete_edge(u, v):
            return False
        self._update_around(u, v)
        return True

    def apply(self, updates: Iterable[tuple[str, int, int]]) -> None:
        """Apply a stream of ``("+"|"-", u, v)`` updates in order."""
        for op, u, v in updates:
            if op == "+":
                self.insert_edge(u, v)
            elif op == "-":
                self.delete_edge(u, v)
            else:
                raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    def recompute(self) -> set[Biclique]:
        """From-scratch enumeration of the current graph (for audits)."""
        collector = BicliqueCollector()
        oombea(self.graph.snapshot(), collector)
        return collector.as_set()
