"""Mutable bipartite graph for streaming updates.

The CSR :class:`repro.graph.BipartiteGraph` is immutable by design (the
enumeration kernels rely on frozen sorted arrays).  Streams need cheap
edge insertion/deletion, so the maintainer works on this adjacency-set
representation and *snapshots* induced subgraphs into CSR form only for
the local re-enumerations.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..graph.bipartite import BipartiteGraph

__all__ = ["DynamicBipartiteGraph"]


class DynamicBipartiteGraph:
    """Adjacency-set bipartite graph supporting edge updates."""

    def __init__(self, n_u: int = 0, n_v: int = 0) -> None:
        self._adj_u: list[set[int]] = [set() for _ in range(n_u)]
        self._adj_v: list[set[int]] = [set() for _ in range(n_v)]
        self._listeners: list[Callable[[str, int, int], None]] = []

    # ------------------------------------------------------------------
    # Update listeners (cache invalidation, audit logs, ...)
    # ------------------------------------------------------------------
    def add_update_listener(self, fn: Callable[[str, int, int], None]) -> None:
        """Call ``fn(op, u, v)`` after every successful edge mutation.

        ``op`` is ``"insert"`` or ``"delete"``.  No-op mutations (inserting
        an existing edge, deleting an absent one) do not fire.  The
        service-layer result cache subscribes here so stale entries for a
        mutated graph are dropped eagerly.
        """
        self._listeners.append(fn)

    def remove_update_listener(self, fn: Callable[[str, int, int], None]) -> None:
        """Detach a listener previously registered; missing fn is a no-op."""
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    def _notify(self, op: str, u: int, v: int) -> None:
        for fn in tuple(self._listeners):
            fn(op, u, v)

    @staticmethod
    def from_graph(graph: BipartiteGraph) -> "DynamicBipartiteGraph":
        g = DynamicBipartiteGraph(graph.n_u, graph.n_v)
        for u, v in graph.edges():
            g._adj_u[u].add(v)
            g._adj_v[v].add(u)
        return g

    # ------------------------------------------------------------------
    @property
    def n_u(self) -> int:
        return len(self._adj_u)

    @property
    def n_v(self) -> int:
        return len(self._adj_v)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self._adj_u)

    def neighbors_u(self, u: int) -> set[int]:
        return self._adj_u[u]

    def neighbors_v(self, v: int) -> set[int]:
        return self._adj_v[v]

    def has_edge(self, u: int, v: int) -> bool:
        return 0 <= u < self.n_u and v in self._adj_u[u]

    # ------------------------------------------------------------------
    def ensure_vertices(self, u: int, v: int) -> None:
        """Grow the vertex ranges to include ``u`` and ``v``."""
        while len(self._adj_u) <= u:
            self._adj_u.append(set())
        while len(self._adj_v) <= v:
            self._adj_v.append(set())

    def insert_edge(self, u: int, v: int) -> bool:
        """Add edge; returns False if it already existed."""
        if u < 0 or v < 0:
            raise ValueError("vertex ids must be non-negative")
        self.ensure_vertices(u, v)
        if v in self._adj_u[u]:
            return False
        self._adj_u[u].add(v)
        self._adj_v[v].add(u)
        self._notify("insert", u, v)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Remove edge; returns False if it was absent."""
        if not self.has_edge(u, v):
            return False
        self._adj_u[u].discard(v)
        self._adj_v[v].discard(u)
        self._notify("delete", u, v)
        return True

    # ------------------------------------------------------------------
    def two_hop_u(self, u: int) -> set[int]:
        """U-vertices sharing a V-neighbor with ``u`` (excluding ``u``)."""
        out: set[int] = set()
        for v in self._adj_u[u]:
            out |= self._adj_v[v]
        out.discard(u)
        return out

    def two_hop_v(self, v: int) -> set[int]:
        out: set[int] = set()
        for u in self._adj_v[v]:
            out |= self._adj_u[u]
        out.discard(v)
        return out

    def snapshot(self) -> BipartiteGraph:
        """Freeze the whole graph into CSR form."""
        edges = [
            (u, v) for u, nbrs in enumerate(self._adj_u) for v in nbrs
        ]
        return BipartiteGraph.from_edges(self.n_u, self.n_v, edges)

    def induced_subgraph(
        self, us: Iterable[int], vs: Iterable[int]
    ) -> tuple[BipartiteGraph, np.ndarray, np.ndarray]:
        """CSR snapshot of the subgraph induced by ``us`` × ``vs``.

        Returns ``(graph, u_ids, v_ids)`` where ``u_ids[i]`` is the
        original id of the subgraph's U-vertex ``i`` (ditto ``v_ids``).
        """
        u_ids = np.array(sorted(set(us)), dtype=np.int64)
        v_ids = np.array(sorted(set(vs)), dtype=np.int64)
        v_pos = {int(v): i for i, v in enumerate(v_ids)}
        edges = []
        for i, u in enumerate(u_ids):
            for v in self._adj_u[int(u)]:
                j = v_pos.get(v)
                if j is not None:
                    edges.append((i, j))
        sub = BipartiteGraph.from_edges(len(u_ids), len(v_ids), edges)
        return sub, u_ids, v_ids
