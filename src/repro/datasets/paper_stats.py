"""The paper's published Table 1 statistics, verbatim.

Fig. 7 (memory demand) and the §3.1/§4.1 arithmetic are *analytical* —
they depend only on |U|, |V|, |E|, Δ and Δ2 — so with the published
statistics the memory experiment reproduces the paper's real numbers
exactly, independent of the scaled-down analogs used for enumeration.
"""

from __future__ import annotations

from ..graph.stats import GraphStats

__all__ = ["PAPER_TABLE1", "PAPER_MAX_BICLIQUES"]

#: Table 1 of the paper: name -> (|U|, |V|, |E|, Δ(U), Δ2(U), Δ(V), Δ2(V)).
_ROWS: dict[str, tuple[int, int, int, int, int, int, int]] = {
    "Mti": (16528, 7601, 71154, 640, 5817, 146, 3217),
    "WA": (265934, 264148, 925873, 168, 635, 546, 903),
    "TM": (901130, 34461, 1366466, 17, 18516, 2671, 2838),
    "AM": (383640, 127823, 1470404, 646, 3956, 294, 7798),
    "WC": (1853493, 182947, 3795796, 54, 47190, 11593, 4629),
    "YG": (94238, 30087, 293360, 1035, 37513, 7591, 7356),
    "SO": (545195, 96680, 1301942, 4917, 146089, 6119, 31636),
    "Pa": (5624219, 1953085, 12282059, 287, 7519, 1386, 2119),
    "IM": (896302, 303617, 3782463, 1590, 15451, 1334, 15233),
    "EE": (225409, 74661, 420046, 930, 135045, 7631, 23844),
    "BX": (340523, 105278, 1149739, 2502, 151645, 13601, 53915),
    "GH": (120867, 59519, 440237, 3675, 29649, 884, 15994),
}

PAPER_TABLE1: dict[str, GraphStats] = {
    code: GraphStats(code, *row) for code, row in _ROWS.items()
}

#: Table 1's 'Max. bicliques' column.
PAPER_MAX_BICLIQUES: dict[str, int] = {
    "Mti": 140266,
    "WA": 461274,
    "TM": 517943,
    "AM": 1075444,
    "WC": 1677522,
    "YG": 1826587,
    "SO": 3320824,
    "Pa": 4899032,
    "IM": 5160061,
    "EE": 12306755,
    "BX": 54458953,
    "GH": 55346398,
}
