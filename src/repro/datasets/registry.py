"""Synthetic analogs of the paper's 12 datasets (Table 1).

The real datasets come from KONECT/SNAP and are not redistributable
offline; these analogs are seeded generators tuned so that the *shape*
the experiments depend on carries over:

- the ascending maximal-biclique-count order of Table 1
  (Mti < WA < TM < AM < WC < YG < SO < Pa < IM < EE < BX < GH);
- power-law degree skew (hub vertices dominate Δ and Δ2);
- the split between modest datasets and the biclique-dense *large*
  ones (SO and beyond, per the paper's ">2M bicliques" cutoff scaled
  down) where load imbalance and pruning dominate.

Every analog is roughly 1/100–1/1000 of the original's vertex count so
that the *entire* benchmark suite runs on a laptop-class CPU in
minutes.  ``load(name, scale=...)`` shrinks or grows an analog for
quick tests vs longer studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph.bipartite import BipartiteGraph
from ..graph.generators import (
    add_dense_block,
    block_overlap_bipartite,
    power_law_bipartite,
)

__all__ = ["DatasetSpec", "DATASETS", "DATASET_ORDER", "LARGE_DATASETS", "load"]


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic analog: paper name, short code, builder, notes."""

    code: str
    paper_name: str
    #: builder(scale) -> BipartiteGraph
    build: Callable[[float], BipartiteGraph]
    #: mirrors the paper's '>2M maximal bicliques' large-dataset flag
    large: bool = False


def _pl(code, n_u, n_v, m, eu, ev, seed):
    def build(scale: float = 1.0) -> BipartiteGraph:
        return power_law_bipartite(
            max(8, int(n_u * scale)),
            max(4, int(n_v * scale)),
            max(8, int(m * scale)),
            exponent_u=eu,
            exponent_v=ev,
            seed=seed,
            name=code,
        )

    return build


def _bo(code, n_u, n_v, comms, mu, mv, p, seed, hub=None):
    def build(scale: float = 1.0) -> BipartiteGraph:
        graph = block_overlap_bipartite(
            max(8, int(n_u * scale)),
            max(4, int(n_v * scale)),
            max(2, int(comms * scale)),
            memberships_u=mu,
            memberships_v=mv,
            intra_p=p,
            seed=seed,
            name=code,
        )
        if hub is not None:
            a, b, hub_p = hub
            graph = add_dense_block(
                graph,
                max(4, int(a * scale)),
                max(2, int(b * scale)),
                hub_p,
                seed=seed + 1000,
            )
        return graph

    return build


#: Table 1 order — ascending maximal-biclique count.
DATASET_ORDER = [
    "Mti", "WA", "TM", "AM", "WC", "YG", "SO", "Pa", "IM", "EE", "BX", "GH",
]

#: Calibrated so maximal-biclique counts ascend per Table 1's order
#: (measured at scale=1.0: Mti 1.5k, WA 3.3k, TM 4.8k, AM 5.6k, WC 6.4k,
#: YG 7.4k, SO 9.5k, Pa 14.5k, IM 15.7k, EE 25.2k, BX 46.4k, GH 56.3k).
#: The large overlap datasets carry one moderately-dense *hub block*
#: (see :func:`repro.graph.generators.add_dense_block`): the skewed
#: giant enumeration trees that make the paper's load-aware scheduling
#: matter (Figs. 4, 8, 9).
DATASETS: dict[str, DatasetSpec] = {
    # --- modest datasets: sparse power-law, few bicliques --------------
    "Mti": DatasetSpec("Mti", "MovieLens", _pl("Mti", 1600, 760, 4200, 2.6, 2.4, 11)),
    "WA": DatasetSpec("WA", "Amazon", _pl("WA", 5200, 5100, 3600, 3.4, 3.4, 12)),
    "TM": DatasetSpec("TM", "Teams", _pl("TM", 9000, 340, 15500, 3.0, 2.2, 13)),
    "AM": DatasetSpec("AM", "ActorMovies", _pl("AM", 3800, 1280, 10500, 2.7, 2.5, 14)),
    "WC": DatasetSpec("WC", "Wikipedia", _pl("WC", 9200, 900, 17000, 2.9, 2.1, 15)),
    "YG": DatasetSpec("YG", "YouTube", _bo("YG", 950, 300, 30, 1.6, 1.3, 0.23, 16)),
    # --- large datasets: community overlap + hub block, biclique-rich --
    "SO": DatasetSpec("SO", "StackOverflow", _bo("SO", 2700, 480, 60, 1.6, 1.3, 0.205, 17, hub=(40, 20, 0.30)), large=True),
    "Pa": DatasetSpec("Pa", "DBLP", _pl("Pa", 14000, 4800, 31000, 2.6, 2.4, 18), large=True),
    "IM": DatasetSpec("IM", "IMDB", _bo("IM", 3500, 1200, 110, 1.5, 1.3, 0.18, 19, hub=(50, 25, 0.30)), large=True),
    "EE": DatasetSpec("EE", "EuAll", _bo("EE", 2300, 750, 55, 1.6, 1.4, 0.17, 20, hub=(80, 40, 0.32)), large=True),
    "BX": DatasetSpec("BX", "BookCrossing", _bo("BX", 3400, 1050, 65, 1.6, 1.4, 0.155, 21, hub=(95, 48, 0.32)), large=True),
    "GH": DatasetSpec("GH", "Github", _bo("GH", 1200, 590, 26, 1.6, 1.4, 0.17, 22, hub=(100, 50, 0.32)), large=True),
}

LARGE_DATASETS = [c for c in DATASET_ORDER if DATASETS[c].large]

_CACHE: dict[tuple[str, float], BipartiteGraph] = {}


def load(code: str, *, scale: float = 1.0, cache: bool = True) -> BipartiteGraph:
    """Build (and memoize) the analog dataset ``code`` at ``scale``."""
    if code not in DATASETS:
        raise KeyError(
            f"unknown dataset {code!r}; choose from {DATASET_ORDER}"
        )
    key = (code, scale)
    if cache and key in _CACHE:
        return _CACHE[key]
    graph = DATASETS[code].build(scale)
    if cache:
        _CACHE[key] = graph
    return graph
