"""Offline synthetic analogs of the paper's 12 evaluation datasets."""

from .paper_stats import PAPER_MAX_BICLIQUES, PAPER_TABLE1
from .registry import (
    DATASET_ORDER,
    DATASETS,
    LARGE_DATASETS,
    DatasetSpec,
    load,
)

__all__ = [
    "DATASETS",
    "DATASET_ORDER",
    "DatasetSpec",
    "LARGE_DATASETS",
    "PAPER_MAX_BICLIQUES",
    "PAPER_TABLE1",
    "load",
]
