"""The :class:`Telemetry` facade and ambient propagation.

One ``Telemetry`` object bundles the three moving parts — a
:class:`~repro.telemetry.metrics.MetricsRegistry`, a
:class:`~repro.telemetry.tracing.Tracer` over a set of sinks — behind a
single ``enabled`` switch.  Layers receive (or discover) the *same*
object, which is what makes the registry unified and the spans
correlated.

Discovery is the ambient mechanism: the broker stashes its telemetry in
a :mod:`contextvars` variable before handing a job to the worker pool
(shipping a copied :class:`contextvars.Context` across the thread hop),
and :func:`repro.gmbe.kernel.gmbe_gpu` picks it up via
:func:`current_telemetry` when no explicit ``telemetry=`` was passed.
Code that never touches telemetry pays one contextvar read per
*enumeration call* — never per task.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from .metrics import MetricsRegistry
from .sinks import RingSink
from .tracing import NULL_TRACER, Tracer

__all__ = [
    "Telemetry",
    "current_telemetry",
    "run_with_telemetry",
    "use_telemetry",
]

_AMBIENT: ContextVar["Telemetry | None"] = ContextVar(
    "repro_telemetry", default=None
)


def current_telemetry() -> "Telemetry | None":
    """The ambient telemetry of this logical context, if any."""
    return _AMBIENT.get()


@contextmanager
def use_telemetry(telemetry: "Telemetry | None"):
    """Make ``telemetry`` ambient for the duration of a ``with`` block."""
    token = _AMBIENT.set(telemetry)
    try:
        yield telemetry
    finally:
        _AMBIENT.reset(token)


def run_with_telemetry(telemetry, fn, /, *args, **kwargs):
    """Call ``fn(*args, **kwargs)`` with ``telemetry`` ambient.

    The broker runs this *inside a copied context* on a worker thread:
    the copy carries the current span (so kernel spans nest under the
    retry attempt) and this call plants the telemetry object for
    :func:`current_telemetry` discovery.
    """
    token = _AMBIENT.set(telemetry)
    try:
        return fn(*args, **kwargs)
    finally:
        _AMBIENT.reset(token)


class Telemetry:
    """Registry + tracer + sinks behind one switch.

    Parameters
    ----------
    enabled:
        ``False`` builds a fully inert object: the tracer is the shared
        :data:`~repro.telemetry.tracing.NULL_TRACER` and instrumented
        code paths reduce to one ``is_enabled`` check.  The registry
        still exists (exports are empty, not errors).
    sinks:
        Sink objects (``emit``/``flush``/``close``).  Default: one
        :class:`~repro.telemetry.sinks.RingSink` so ``Telemetry()`` is
        immediately useful for snapshots and tests.
    registry:
        Share an existing registry instead of creating one (e.g. the
        registry a :class:`~repro.service.metrics.ServiceMetrics`
        already populates).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        sinks=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        if sinks is None:
            sinks = [RingSink()] if enabled else []
        self.sinks = list(sinks)
        self.tracer = Tracer(self.sinks) if enabled else NULL_TRACER

    # ------------------------------------------------------------------
    @property
    def ring(self) -> RingSink | None:
        """The first :class:`RingSink`, if any (snapshot convenience)."""
        for sink in self.sinks:
            if isinstance(sink, RingSink):
                return sink
        return None

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def ingest(self, records) -> None:
        """Emit already-formed records (e.g. re-parented worker spans)
        straight to this telemetry's sinks.  No-op when disabled."""
        if not self.enabled:
            return
        for record in records:
            for sink in self.sinks:
                sink.emit(record)

    def snapshot(self) -> dict:
        """JSON-serializable state: metrics plus recent trace records."""
        ring = self.ring
        if ring is not None and self.enabled:
            # Self-describing truncation: a capped ring that overflowed
            # says so in the same snapshot that carries its records.
            self.registry.gauge(
                "telemetry.ring.dropped",
                description="records overwritten by the bounded ring sink",
            ).set(ring.dropped)
        return {
            "enabled": self.enabled,
            "metrics": self.registry.snapshot(),
            "records": ring.records() if ring is not None else [],
        }

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
