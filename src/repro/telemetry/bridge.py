"""Adapters that register existing stat objects into a MetricsRegistry.

The simulator and service already keep rich per-run statistics
(:class:`~repro.core.bicliques.Counters`,
:class:`~repro.gpusim.scheduler.SimReport`,
:class:`~repro.gpusim.queues.QueueStats`,
:class:`~repro.gpusim.faults.FaultLog`).  These helpers fold them into
the unified registry under stable dotted names, so one
``to_prometheus_text()`` / ``to_json()`` covers every layer.

Counter-like quantities *add* (several runs against one registry
accumulate, the natural service semantics); point-in-time quantities
(makespan, efficiency) *set* gauges describing the most recent run.
"""

from __future__ import annotations

__all__ = [
    "register_counters",
    "register_fault_log",
    "register_queue_stats",
    "register_sim_report",
]

#: Counters fields exported as telemetry counters (all of them — the
#: dataclass is flat ints).
_COUNTER_FIELDS = (
    "nodes_generated",
    "maximal",
    "non_maximal",
    "pruned",
    "set_op_work",
    "simt_cycles",
)

_QUEUE_FIELDS = (
    "local_enqueues",
    "local_dequeues",
    "global_enqueues",
    "global_dequeues",
    "spills",
    "requeues",
)


def register_counters(registry, counters, *, prefix: str = "sim.work") -> None:
    """Fold one enumeration's :class:`Counters` into the registry."""
    for name in _COUNTER_FIELDS:
        registry.counter(f"{prefix}.{name}").add(int(getattr(counters, name)))
    registry.gauge(f"{prefix}.peak_stack_depth").set(
        int(counters.peak_stack_depth)
    )


def register_queue_stats(
    registry, queue_stats, *, prefix: str = "sim.queue"
) -> None:
    """Fold per-device :class:`QueueStats` (a list or one) into counters."""
    stats = queue_stats if isinstance(queue_stats, (list, tuple)) else [queue_stats]
    for name in _QUEUE_FIELDS:
        total = sum(int(getattr(q, name)) for q in stats)
        registry.counter(f"{prefix}.{name}").add(total)


def register_fault_log(registry, fault_log, *, prefix: str = "sim.faults") -> None:
    """Fold a :class:`FaultLog` tally into per-kind counters."""
    if fault_log is None:
        return
    for kind, n in fault_log.counts().items():
        registry.counter(f"{prefix}.{kind}").add(n)
    registry.counter(f"{prefix}.total").add(len(fault_log))


def register_sim_report(registry, report, *, prefix: str = "sim") -> None:
    """Fold a :class:`SimReport` (tasks, queues, faults) into the registry."""
    registry.counter(f"{prefix}.tasks.executed").add(report.tasks_executed)
    registry.counter(f"{prefix}.tasks.split").add(report.tasks_split)
    registry.counter(f"{prefix}.tasks.requeued").add(report.tasks_requeued)
    registry.counter(f"{prefix}.tasks.lost").add(report.tasks_lost)
    registry.gauge(f"{prefix}.makespan_cycles").set(report.makespan_cycles)
    register_queue_stats(registry, report.queue_stats, prefix=f"{prefix}.queue")
    register_fault_log(registry, report.fault_log, prefix=f"{prefix}.faults")
