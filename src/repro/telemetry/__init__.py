"""Unified telemetry: metrics registry, tracing spans, pluggable sinks.

The observability layer the ROADMAP's production service needs and the
paper's diagnosis methodology (§6.2 profiles, Figs. 4/8/9, Table 2)
motivates: one :class:`MetricsRegistry` of stable dotted names with
Prometheus/JSON exporters, one :class:`Tracer` whose spans carry
``job_id`` from the service front door down into the simulated kernel,
and sinks (ring / JSONL / callback) the broker flushes periodically.

Fully bypassed when disabled: hot paths take a single ``is_enabled``
(or ``telemetry is None``) check — gated by
``benchmarks/bench_telemetry.py``.  See ``docs/observability.md``.
"""

from .bridge import (
    register_counters,
    register_fault_log,
    register_queue_stats,
    register_sim_report,
)
from .flight import (
    FlightRecorder,
    build_span_tree,
    format_flight_record,
    load_flight_record,
    write_flight_record,
)
from .hub import Telemetry, current_telemetry, run_with_telemetry, use_telemetry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .remote import (
    TelemetrySnapshot,
    TraceContext,
    WorkerTelemetry,
    reparent_records,
)
from .sinks import CallbackSink, JSONLSink, RingSink
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, current_span

__all__ = [
    "CallbackSink",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RingSink",
    "Span",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceContext",
    "Tracer",
    "WorkerTelemetry",
    "build_span_tree",
    "current_span",
    "current_telemetry",
    "format_flight_record",
    "load_flight_record",
    "register_counters",
    "register_fault_log",
    "register_queue_stats",
    "register_sim_report",
    "reparent_records",
    "run_with_telemetry",
    "use_telemetry",
    "write_flight_record",
]
