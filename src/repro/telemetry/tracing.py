"""Span-based tracing with cross-layer context propagation.

A :class:`Span` is one timed operation (``broker.dispatch``,
``cache.lookup``, ``retry.attempt``, ``sim.kernel``); spans nest via a
:mod:`contextvars` variable, so the *current* span follows the logical
flow of control — across ``await`` boundaries inside the broker loop
and, because the broker ships a copied :class:`contextvars.Context`
into its worker pool, across the thread hop into the enumeration
kernel.  Every span carries the originating job's ``job_id`` (inherited
from its parent unless given explicitly), which is what lets one
``grep`` correlate a broker job with the scheduler tasks, fault events,
and retry attempts it produced.

Finished spans and instant events are emitted to the tracer's sinks as
plain dicts (see :mod:`repro.telemetry.sinks`).

When tracing is disabled, use :data:`NULL_TRACER`: its ``span()`` hands
back one shared no-op context manager and its ``is_enabled`` is
``False``, so hot paths pay a single attribute check and nothing else.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_span",
]

#: The span enclosing the current logical operation (task-local).
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None
)


def current_span() -> "Span | None":
    """The innermost active span of this logical context, if any."""
    return _CURRENT_SPAN.get()


@dataclass
class Span:
    """One timed, correlated operation."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None = None
    #: broker job correlation id; inherited from the parent span
    job_id: int | None = None
    start_s: float = 0.0
    end_s: float | None = None
    status: str = "ok"
    error: str | None = None
    attrs: dict = field(default_factory=dict)

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    @property
    def duration_s(self) -> float:
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "job_id": self.job_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Factory for spans and instant events, fanning out to sinks."""

    is_enabled = True

    def __init__(self, sinks=(), *, clock=time.perf_counter) -> None:
        self.sinks = list(sinks)
        self._clock = clock
        self._ids = itertools.count(1)
        #: finished-span tally by name (cheap always-on summary)
        self.span_counts: dict[str, int] = {}
        #: stamped onto spans/events that have no parent to inherit a
        #: job id from — a worker-local tracer sets this from the
        #: inbound TraceContext so every record correlates by job.
        self.default_job_id = None

    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def _new_span(
        self, name: str, parent: Span | None, job_id, attrs: dict
    ) -> Span:
        span_id = f"s{next(self._ids)}"
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            if job_id is None:
                job_id = parent.job_id
        else:
            trace_id = f"t{span_id}"
            parent_id = None
        if job_id is None:
            job_id = self.default_job_id
        return Span(
            name=name,
            span_id=span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            job_id=job_id,
            start_s=self._clock(),
            attrs=attrs,
        )

    @contextmanager
    def span(self, name: str, *, job_id=None, parent: Span | None = None,
             **attrs):
        """Open a span around a ``with`` block.

        The span becomes the *current* span for the block (children
        created inside — even on other threads, if the context is
        shipped along — nest under it).  An exception escaping the block
        marks the span ``status="error"`` and re-raises.
        """
        if parent is None:
            parent = _CURRENT_SPAN.get()
        span = self._new_span(name, parent, job_id, attrs)
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _CURRENT_SPAN.reset(token)
            span.end_s = self._clock()
            self.span_counts[name] = self.span_counts.get(name, 0) + 1
            self._emit(span.to_dict())

    def begin_span(self, name: str, *, job_id=None,
                   parent: Span | None = None, **attrs) -> Span:
        """Open a *detached* span: returned, never made current.

        For operations whose begin and end are observed from an event
        loop rather than a ``with`` block — e.g. the shard coordinator
        opens one span per dispatched attempt and finishes it whenever
        that future resolves, out of order.  Pair with
        :meth:`finish_span`; children do not implicitly nest under it.
        """
        if parent is None:
            parent = _CURRENT_SPAN.get()
        return self._new_span(name, parent, job_id, attrs)

    def finish_span(self, span: Span, *, status: str | None = None,
                    error: str | None = None) -> None:
        """Close and emit a span from :meth:`begin_span`."""
        if status is not None:
            span.status = status
        if error is not None:
            span.error = error
        span.end_s = self._clock()
        self.span_counts[span.name] = self.span_counts.get(span.name, 0) + 1
        self._emit(span.to_dict())

    def event(self, name: str, *, job_id=None, time_s=None, **attrs) -> None:
        """Emit one instant event, correlated with the current span."""
        parent = _CURRENT_SPAN.get()
        if parent is not None and job_id is None:
            job_id = parent.job_id
        if job_id is None:
            job_id = self.default_job_id
        self._emit({
            "type": "event",
            "name": name,
            "time_s": self._clock() if time_s is None else time_s,
            "span_id": parent.span_id if parent is not None else None,
            "trace_id": parent.trace_id if parent is not None else None,
            "job_id": job_id,
            "attrs": attrs,
        })


class _NullSpan:
    """Inert span: every mutator is a no-op."""

    __slots__ = ()

    name = ""
    span_id = None
    trace_id = None
    job_id = None
    status = "ok"

    def set_attr(self, key: str, value) -> None:
        pass


class _NullSpanCM:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CM = _NullSpanCM()


class NullTracer:
    """Zero-cost tracer: ``is_enabled`` is False, ``span()`` returns a
    shared no-op context manager, ``event()`` does nothing."""

    is_enabled = False
    sinks: list = []
    span_counts: dict = {}
    default_job_id = None

    def span(self, name: str, **kwargs) -> _NullSpanCM:
        return _NULL_SPAN_CM

    def begin_span(self, name: str, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def finish_span(self, span, **kwargs) -> None:
        pass

    def event(self, name: str, **kwargs) -> None:
        pass


#: Shared no-op tracer for every disabled path.
NULL_TRACER = NullTracer()
