"""Cross-process telemetry: worker-side capture and trace re-parenting.

A live :class:`~repro.telemetry.hub.Telemetry` cannot cross a process
boundary — it holds locks, sinks, and contextvars.  What *can* cross is
plain data, and this module defines the two picklable shapes plus the
worker-side harness that produces them:

:class:`TraceContext`
    The coordinator's correlation ids (``trace_id``, parent
    ``span_id``, ``job_id``), shipped *into* the worker with the task
    so every record the worker produces can later be stitched under
    the right span.

:class:`TelemetrySnapshot`
    What a worker ships *back*: drained span/event records plus a
    cumulative registry dump, stamped with pid/shard/attempt and a
    monotonic ``seq``.  Snapshots flow over two channels — piggybacked
    on heartbeats (incremental, so a SIGKILLed worker still leaves its
    last buffered records) and attached to the final
    :class:`~repro.sharding.runner.ShardResult`.

:class:`WorkerTelemetry`
    A worker-local buffering :class:`Telemetry` (ring sink + registry,
    nothing shared with the parent) whose :meth:`~WorkerTelemetry.flush`
    is safe to call from the heartbeat thread while the task thread
    records.

:func:`reparent_records`
    The merge-side half: rewrites a worker's local span ids into a
    collision-free namespace, grafts its root spans under the
    coordinator's per-attempt span, and stamps the parent's
    ``trace_id``/``job_id`` — after which the records are
    indistinguishable from locally-traced ones.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

from .hub import Telemetry
from .sinks import RingSink
from .tracing import Span, current_span

__all__ = [
    "TelemetrySnapshot",
    "TraceContext",
    "WorkerTelemetry",
    "merge_metric_dumps",
    "reparent_records",
]


@dataclass(frozen=True)
class TraceContext:
    """Picklable correlation ids that travel parent → worker."""

    trace_id: str | None = None
    parent_span_id: str | None = None
    job_id: int | None = None

    @classmethod
    def from_span(cls, span: Span | None, *, job_id=None) -> "TraceContext":
        """Capture a span's ids (the ambient span when ``span`` is None)."""
        if span is None:
            span = current_span()
        if span is None:
            return cls(job_id=job_id)
        return cls(
            trace_id=span.trace_id,
            parent_span_id=span.span_id,
            job_id=span.job_id if job_id is None else job_id,
        )


@dataclass
class TelemetrySnapshot:
    """Picklable worker telemetry: drained records + registry dump.

    ``records`` are *incremental* — each flush drains the worker's ring,
    so concatenating snapshots in ``seq`` order reconstructs the full
    stream.  ``metrics`` is *cumulative* — the registry dump at flush
    time; a merger must fold only the latest dump per attempt.
    """

    pid: int
    shard_id: int | None = None
    attempt: int = 1
    seq: int = 0
    #: True for the end-of-task flush riding on the ShardResult (as
    #: opposed to an incremental heartbeat flush).
    final: bool = False
    records: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    #: ring overwrites so far — nonzero means ``records`` has holes.
    dropped: int = 0

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "shard_id": self.shard_id,
            "attempt": self.attempt,
            "seq": self.seq,
            "final": self.final,
            "records": list(self.records),
            "metrics": dict(self.metrics),
            "dropped": self.dropped,
        }


class WorkerTelemetry:
    """Worker-local buffering telemetry for one shard attempt.

    Owns a private ring + registry; the task thread records into them
    through ``self.telemetry`` exactly like any in-process run, and the
    heartbeat thread calls :meth:`flush` to drain what accumulated.  The
    inbound :class:`TraceContext` only seeds ``default_job_id`` here —
    span *re-parenting* happens on the coordinator side, where the
    per-attempt parent span lives.
    """

    def __init__(
        self,
        context: TraceContext | None = None,
        *,
        shard_id: int | None = None,
        attempt: int = 1,
        capacity: int = 2048,
    ) -> None:
        self.context = context
        self.shard_id = shard_id
        self.attempt = attempt
        self._ring = RingSink(capacity)
        self.telemetry = Telemetry(sinks=[self._ring])
        if context is not None and context.job_id is not None:
            self.telemetry.tracer.default_job_id = context.job_id
        self._seq = itertools.count()

    def flush(self, *, final: bool = False) -> TelemetrySnapshot:
        """Drain buffered records into a picklable snapshot.

        Called from the heartbeat thread between beats and from the task
        thread at completion; both paths use pop-based draining and a
        locked registry dump, so they never corrupt a concurrent emit.
        """
        return TelemetrySnapshot(
            pid=os.getpid(),
            shard_id=self.shard_id,
            attempt=self.attempt,
            seq=next(self._seq),
            final=final,
            records=self._ring.drain(),
            metrics=self.telemetry.registry.dump(),
            dropped=self._ring.dropped,
        )


def reparent_records(
    records,
    *,
    trace_id: str | None,
    parent_span_id: str | None,
    job_id=None,
    prefix: str = "",
) -> list[dict]:
    """Rewrite worker-local records into the parent's trace.

    - every span/event id gets ``prefix`` (e.g. ``"s3a2:"`` for shard 3
      attempt 2) so ids from different workers — which all count from
      ``s1`` — cannot collide;
    - spans without a local parent are grafted under ``parent_span_id``
      (the coordinator's ``shard.run``/``shard.retry`` span);
    - events that fired outside any worker span are attributed to
      ``parent_span_id`` directly;
    - ``trace_id`` is overwritten and a missing ``job_id`` filled in.

    Returns new dicts; the input records are not mutated.
    """
    out: list[dict] = []
    for record in records:
        r = dict(record)
        if r.get("span_id"):
            r["span_id"] = prefix + r["span_id"]
        elif r.get("type") == "event":
            r["span_id"] = parent_span_id
        if r.get("parent_id"):
            r["parent_id"] = prefix + r["parent_id"]
        elif r.get("type") == "span":
            r["parent_id"] = parent_span_id
        r["trace_id"] = trace_id
        if job_id is not None and r.get("job_id") is None:
            r["job_id"] = job_id
        out.append(r)
    return out


def merge_metric_dumps(registry, dumps) -> None:
    """Fold registry dumps into ``registry`` in the given order.

    Thin alias over :meth:`MetricsRegistry.merge` that makes the
    determinism contract explicit: callers sort ``dumps`` by
    (shard, attempt) first, so counters/histograms/gauges land the same
    way regardless of worker completion order.
    """
    for dump in dumps:
        if dump:
            registry.merge(dump)
