"""Unified metrics registry: counters, gauges, windowed histograms.

One process-wide (or broker-wide) :class:`MetricsRegistry` replaces the
four disconnected counter piles this repo accumulated — service counters,
simulator ``Counters``, ``QueueStats``, ``FaultLog`` tallies — with a
single namespace of **stable dotted names** (``service.jobs.submitted``,
``sim.phase.set_op_cycles``, …) and two export formats:

- :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (dots become underscores, histograms export as
  summaries with nearest-rank quantiles), ready for a scrape endpoint
  or a textfile collector;
- :meth:`MetricsRegistry.to_json` — the JSONL/debug form, one nested
  dict keyed by the dotted names.

Instruments are get-or-create: ``registry.counter("a.b")`` returns the
same :class:`Counter` every time, so independent layers can contribute
to one name without coordination.  Asking for an existing name with a
different instrument type is a :class:`ValueError` — silent type
clashes are how metrics rot.

The instruments are deliberately plain Python (an attribute increment,
a deque append): cheap enough to be always-on, exactly like the GPU
profiler they complement.
"""

from __future__ import annotations

import json
import math
import re
import threading
from collections import deque

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Dotted metric names: lowercase segments joined by dots; segments may
#: contain digits and underscores but must start with a letter.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")

#: Quantiles exported for histograms (matches the old ServiceMetrics
#: snapshot fields p50/p95/p99).
_QUANTILES = (("0.5", 50), ("0.95", 95), ("0.99", 99))


class Counter:
    """Monotonic-by-convention numeric instrument.

    ``value`` is writable (the :class:`~repro.service.metrics.
    ServiceMetrics` compatibility shim assigns through it); telemetry
    producers should stick to :meth:`inc`/:meth:`add`.
    """

    __slots__ = ("name", "value", "description")

    kind = "counter"

    def __init__(self, name: str, description: str | None = None) -> None:
        self.name = name
        self.value: float = 0
        self.description = description

    def inc(self, n: float = 1) -> None:
        self.value += n

    def add(self, n: float) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def snapshot(self):
        return self.value

    def dump(self):
        return self.value

    def merge_dump(self, data) -> None:
        """Fold another counter's :meth:`dump` into this one (adds)."""
        self.value += data


class Gauge:
    """Point-in-time numeric instrument (queue size, in-flight jobs)."""

    __slots__ = ("name", "value", "description")

    kind = "gauge"

    def __init__(self, name: str, description: str | None = None) -> None:
        self.name = name
        self.value: float = 0
        self.description = description

    def set(self, v: float) -> None:
        self.value = v

    def reset(self) -> None:
        self.value = 0

    def snapshot(self):
        return self.value

    def dump(self):
        return self.value

    def merge_dump(self, data) -> None:
        """Fold another gauge's :meth:`dump` into this one (last write)."""
        self.value = data


class Histogram:
    """Windowed sample recorder with percentile queries.

    Keeps the most recent ``window`` observations (a bounded deque, so a
    long-lived service never grows without bound) plus running count/sum
    over the full lifetime.  Percentiles use the nearest-rank method on
    the current window.
    """

    kind = "histogram"

    def __init__(
        self,
        window: int = 4096,
        name: str = "",
        description: str | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.description = description
        self._window = window
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        self._samples.append(value)
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the current window (0 if empty)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self._samples.clear()
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def dump(self) -> dict:
        """Mergeable raw form: lifetime aggregates + the sample window."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "samples": _safe_list(self._samples),
        }

    def merge_dump(self, data: dict) -> None:
        """Fold another histogram's :meth:`dump` into this one.

        Lifetime count/total/max combine exactly; the merged window
        replays the other side's samples, so percentiles over the union
        are approximate when the combined windows overflow.
        """
        for value in data.get("samples", ()):
            self._samples.append(value)
        self.count += data.get("count", 0)
        self.total += data.get("total", 0.0)
        other_max = data.get("max", 0.0)
        if other_max > self.max:
            self.max = other_max


def _safe_list(values: deque) -> list:
    """Copy a deque that another thread may be appending to.

    Worker-side snapshot dumps run on the heartbeat thread while the
    task thread keeps recording; ``list(deque)`` raises ``RuntimeError``
    if the deque mutates mid-iteration, so retry a few times and fall
    back to empty rather than ever failing a flush.
    """
    for _ in range(4):
        try:
            return list(values)
        except RuntimeError:
            continue
    return []


def prometheus_name(dotted: str) -> str:
    """Dotted metric name → Prometheus metric name (dots become ``_``)."""
    return dotted.replace(".", "_")


def _format_value(v: float) -> str:
    # Prometheus wants plain decimal/scientific floats; ints stay ints.
    if isinstance(v, bool):
        return str(int(v))
    if isinstance(v, int):
        return str(v)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(float(v))


class MetricsRegistry:
    """Get-or-create namespace of named instruments.

    Creation is guarded by a lock (layers register from the broker loop
    *and* worker threads); the instruments themselves rely on the GIL
    for their single-attribute updates, same as every counter this repo
    already keeps.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, kind: str,
                       description: str | None = None):
        inst = self._instruments.get(name)
        if inst is None:
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"invalid metric name {name!r}: expected lowercase "
                    "dotted segments like 'service.jobs.submitted'"
                )
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = factory()
                    self._instruments[name] = inst
                    return inst
        if inst.kind != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{inst.kind}, not a {kind}"
            )
        if description is not None and inst.description is None:
            inst.description = description
        return inst

    def counter(self, name: str, description: str | None = None) -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, description), "counter", description
        )

    def gauge(self, name: str, description: str | None = None) -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, description), "gauge", description
        )

    def histogram(
        self,
        name: str,
        window: int = 4096,
        description: str | None = None,
    ) -> Histogram:
        return self._get_or_create(
            name,
            lambda: Histogram(window=window, name=name,
                              description=description),
            "histogram",
            description,
        )

    # ------------------------------------------------------------------
    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        """Zero every instrument in place (test isolation).

        Instrument *objects* survive — references held by layers (e.g.
        ``ServiceMetrics.latency_ms``) stay valid.
        """
        for inst in self._instruments.values():
            inst.reset()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Dotted-name → value (numbers for counters/gauges, dicts for
        histograms); JSON-serializable."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(self.snapshot(), **kwargs)

    # ------------------------------------------------------------------
    # Cross-process transport
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """Picklable, mergeable form of every instrument.

        ``{name: {"kind": ..., "data": ...}}`` — what a worker process
        ships back over the heartbeat/result pipe.  Safe to call from a
        thread other than the recording one (see :func:`_safe_list`).
        """
        with self._lock:
            items = list(self._instruments.items())
        return {
            name: {"kind": inst.kind, "data": inst.dump()}
            for name, inst in items
        }

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, histograms merge (count/total/max exact, window
        replayed), gauges take the incoming value — so folding worker
        registries in a fixed order is deterministic regardless of
        which worker finished first.  Type clashes raise ``ValueError``
        like any other registration.
        """
        factories = {
            "counter": self.counter,
            "gauge": self.gauge,
            "histogram": self.histogram,
        }
        for name in sorted(dump):
            entry = dump[name]
            factory = factories.get(entry.get("kind"))
            if factory is None:
                continue
            factory(name).merge_dump(entry["data"])

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Counters and gauges export one sample each; histograms export as
        summaries — ``<name>{quantile="0.5"}`` samples over the current
        window plus ``_count``/``_sum``/``_max``.  Instruments created
        with a ``description`` get a ``# HELP`` line ahead of their
        ``# TYPE``.
        """
        lines: list[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            pname = prometheus_name(name)
            if inst.description:
                help_text = " ".join(str(inst.description).split())
                lines.append(f"# HELP {pname} {help_text}")
            if inst.kind == "counter":
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {_format_value(inst.value)}")
            elif inst.kind == "gauge":
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_format_value(inst.value)}")
            else:  # histogram -> summary
                lines.append(f"# TYPE {pname} summary")
                for label, p in _QUANTILES:
                    lines.append(
                        f'{pname}{{quantile="{label}"}} '
                        f"{_format_value(inst.percentile(p))}"
                    )
                lines.append(f"{pname}_sum {_format_value(inst.total)}")
                lines.append(f"{pname}_count {_format_value(inst.count)}")
                lines.append(f"# TYPE {pname}_max gauge")
                lines.append(f"{pname}_max {_format_value(inst.max)}")
        return "\n".join(lines) + "\n" if lines else ""
