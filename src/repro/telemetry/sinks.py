"""Pluggable telemetry sinks.

Sinks receive the plain-dict records the :class:`~repro.telemetry.
tracing.Tracer` emits (finished spans and instant events).  The contract
is tiny — ``emit(record)`` plus optional ``flush()``/``close()`` — so a
test can use a list-backed ring, a service can stream JSONL to disk via
the broker's periodic flusher, and an integration can forward records
anywhere with a callback.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Callable

__all__ = ["CallbackSink", "JSONLSink", "RingSink"]


class RingSink:
    """In-memory ring of the most recent ``capacity`` records.

    A full ring overwrites its oldest record on ``emit``; ``dropped``
    counts those overwrites so a truncated snapshot or flight record is
    self-describing (``emitted == len + drained + dropped``).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    def emit(self, record: dict) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)
        self.emitted += 1

    def records(self) -> list[dict]:
        """Snapshot of the retained records, oldest first."""
        return list(self._records)

    def spans(self, name: str | None = None) -> list[dict]:
        """Retained span records, optionally filtered by span name."""
        return [
            r for r in self._records
            if r.get("type") == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: str | None = None) -> list[dict]:
        """Retained instant-event records, optionally filtered by name."""
        return [
            r for r in self._records
            if r.get("type") == "event" and (name is None or r["name"] == name)
        ]

    def drain(self) -> list[dict]:
        """Atomically remove and return the retained records, oldest first.

        Pops one record at a time (never iterates the deque), so a
        heartbeat thread can drain while the task thread keeps emitting —
        the cross-process incremental-flush path depends on this.
        """
        out: list[dict] = []
        while True:
            try:
                out.append(self._records.popleft())
            except IndexError:
                return out

    def clear(self) -> None:
        self._records.clear()

    def flush(self) -> None:  # part of the sink contract; nothing buffered
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._records)


class JSONLSink:
    """Buffered JSON-lines file sink.

    Records accumulate in memory until :meth:`flush` (the broker's
    periodic flusher, or :meth:`close`) appends them to ``path`` — one
    JSON object per line, append-only, so several runs can share a file
    and a crashed process loses at most one flush interval of records.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._pending: list[dict] = []
        self.written = 0

    def emit(self, record: dict) -> None:
        self._pending.append(record)

    def flush(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in pending:
                fh.write(json.dumps(record, default=str) + "\n")
        self.written += len(pending)

    def close(self) -> None:
        self.flush()

    def __len__(self) -> int:
        return len(self._pending)


class CallbackSink:
    """Forward every record to ``fn(record)`` (metrics pipelines, tests).

    A raising callback is the *caller's* bug, but telemetry must never
    take down the traced code path: exceptions are swallowed after
    incrementing ``errors``.
    """

    def __init__(self, fn: Callable[[dict], None]) -> None:
        self._fn = fn
        self.errors = 0

    def emit(self, record: dict) -> None:
        try:
            self._fn(record)
        except Exception:
            self.errors += 1

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass
