"""The degraded-run flight recorder: a bounded per-job black box.

A production sharded run that goes wrong (worker SIGKILLed, shard
quarantined, pool broken, breaker opened) is exactly the run whose
telemetry matters most — and exactly the run whose telemetry is at risk
of dying with the process.  The :class:`FlightRecorder` accumulates a
*bounded* record of one job while it runs — re-parented worker
records, supervisor verdicts, the attempt/restart ledger — and
:func:`write_flight_record` dumps it to ``flight-{job}.json`` when the
coordinator or broker declares the run degraded.

Everything here is plain dicts and lists: the record is JSON on disk,
inspectable with ``gmbe flight show <path>`` or any text tool.
"""

from __future__ import annotations

import json
import os
import re
import time
from collections import deque

__all__ = [
    "FLIGHT_VERSION",
    "FlightRecorder",
    "build_span_tree",
    "format_flight_record",
    "load_flight_record",
    "write_flight_record",
]

FLIGHT_VERSION = 1

_SAFE_JOB_RE = re.compile(r"[^A-Za-z0-9_.-]+")


class FlightRecorder:
    """Accumulates one job's black box while the job runs.

    Every buffer is bounded (deques with ``maxlen``), so a pathological
    run — thousands of restarts, a chatty worker — costs O(limits)
    memory, never O(run length).  The recorder is fed from the
    coordinator thread and the pool's monitor thread; each method is a
    single append or dict write, safe under the GIL.
    """

    def __init__(
        self,
        *,
        job_id=None,
        trace_id: str | None = None,
        max_records_per_worker: int = 64,
        max_spans: int = 256,
        max_verdicts: int = 128,
    ) -> None:
        self.job_id = job_id
        self.trace_id = trace_id
        self._max_records_per_worker = max_records_per_worker
        #: coordinator-side records (job/attempt spans), bounded
        self._spans: deque[dict] = deque(maxlen=max_spans)
        #: supervisor verdicts and restart notes from the pool
        self._verdicts: deque[dict] = deque(maxlen=max_verdicts)
        #: "s{shard}a{attempt}" -> worker meta + last-N records
        self._workers: dict[str, dict] = {}
        #: shard -> [{attempt, status, error, pid}, ...]
        self._attempts: dict[int, list[dict]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _worker_key(shard_id, attempt) -> str:
        return f"s{shard_id}a{attempt}"

    def note_pool_event(self, kind: str, info: dict) -> None:
        """Record a supervisor event (spawn/death/restart/retire/...)."""
        entry = {"kind": kind}
        entry.update(info)
        self._verdicts.append(entry)

    def note_attempt(self, shard_id: int, attempt: int, *, status: str,
                     error: str | None = None, pid=None) -> None:
        """Append to the per-shard attempt ledger."""
        self._attempts.setdefault(int(shard_id), []).append({
            "attempt": attempt,
            "status": status,
            "error": error,
            "pid": pid,
        })

    def add_snapshot(self, snapshot, records=None) -> None:
        """Fold a worker's :class:`TelemetrySnapshot` into its black box.

        ``records`` lets the caller supply the *re-parented* copies so
        the flight record and the live trace tell one story; otherwise
        the snapshot's raw records are kept.
        """
        key = self._worker_key(snapshot.shard_id, snapshot.attempt)
        entry = self._workers.get(key)
        if entry is None:
            entry = self._workers[key] = {
                "pid": snapshot.pid,
                "shard_id": snapshot.shard_id,
                "attempt": snapshot.attempt,
                "flushes": 0,
                "final": False,
                "dropped": 0,
                "records": deque(maxlen=self._max_records_per_worker),
                "metrics": {},
            }
        entry["pid"] = snapshot.pid
        entry["flushes"] += 1
        entry["final"] = entry["final"] or snapshot.final
        entry["dropped"] = snapshot.dropped
        for record in (snapshot.records if records is None else records):
            entry["records"].append(record)
        if snapshot.metrics:
            # cumulative dump — keep only the most recent one
            entry["metrics"] = snapshot.metrics

    def add_record(self, record: dict) -> None:
        """Keep a coordinator-side record (attempt span, job event)."""
        self._spans.append(record)

    # ------------------------------------------------------------------
    def build(self, reason: str, **extra) -> dict:
        """Assemble the JSON-serializable flight record."""
        workers = {}
        all_records = list(self._spans)
        for key in sorted(self._workers):
            entry = self._workers[key]
            records = list(entry["records"])
            all_records.extend(records)
            workers[key] = {
                "pid": entry["pid"],
                "shard_id": entry["shard_id"],
                "attempt": entry["attempt"],
                "flushes": entry["flushes"],
                "final_flush_seen": entry["final"],
                "dropped": entry["dropped"],
                "records": records,
                "metrics": entry["metrics"],
            }
        record = {
            "flight_version": FLIGHT_VERSION,
            "reason": reason,
            "job_id": self.job_id,
            "trace_id": self.trace_id,
            "written_unix_s": time.time(),
            "attempts": {str(k): v for k, v in sorted(self._attempts.items())},
            "supervisor": {"events": list(self._verdicts)},
            "workers": workers,
            "span_tree": build_span_tree(all_records),
        }
        record.update(extra)
        return record


def build_span_tree(records) -> list[dict]:
    """Nest flat span records into parent → children trees.

    Events attach to their span's ``"events"`` list; events whose span
    was never emitted (e.g. it died with the worker) surface in a
    synthetic top-level ``"(orphan events)"`` node rather than being
    lost.  Returns the list of root spans, children sorted by start
    time.
    """
    spans: dict[str, dict] = {}
    events: list[dict] = []
    for r in records:
        if r.get("type") == "span" and r.get("span_id"):
            node = dict(r)
            node["children"] = []
            node["events"] = []
            spans[node["span_id"]] = node
        elif r.get("type") == "event":
            events.append(r)

    roots: list[dict] = []
    for node in spans.values():
        parent = spans.get(node.get("parent_id") or "")
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)

    orphans: list[dict] = []
    for ev in events:
        span = spans.get(ev.get("span_id") or "")
        if span is not None:
            span["events"].append(ev)
        else:
            orphans.append(ev)
    if orphans:
        roots.append({
            "type": "span",
            "name": "(orphan events)",
            "span_id": None,
            "start_s": min(e.get("time_s", 0.0) for e in orphans),
            "children": [],
            "events": orphans,
        })

    def _sort(nodes: list[dict]) -> None:
        nodes.sort(key=lambda n: (n.get("start_s") or 0.0, n.get("name", "")))
        for n in nodes:
            n["events"].sort(key=lambda e: e.get("time_s") or 0.0)
            _sort(n["children"])

    _sort(roots)
    return roots


def write_flight_record(directory, record: dict) -> str:
    """Dump ``record`` to ``{directory}/flight-{job}.json`` and return
    the path.  The directory is created if missing; an existing record
    for the same job is overwritten (latest failure wins)."""
    job = record.get("job_id")
    if job is None:
        job = record.get("trace_id") or "run"
    name = _SAFE_JOB_RE.sub("_", str(job)) or "run"
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"flight-{name}.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, default=str)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_flight_record(path) -> dict:
    with open(os.fspath(path), encoding="utf-8") as fh:
        record = json.load(fh)
    if not isinstance(record, dict) or "flight_version" not in record:
        raise ValueError(f"{path} is not a flight record")
    return record


def _format_span(node: dict, indent: int, lines: list[str],
                 max_events: int) -> None:
    dur = node.get("duration_s")
    dur_txt = f" {dur * 1000:.1f}ms" if isinstance(dur, (int, float)) else ""
    status = node.get("status", "ok")
    mark = "" if status == "ok" else f" [{status}: {node.get('error')}]"
    attrs = node.get("attrs") or {}
    attr_txt = ""
    if attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        attr_txt = f" ({inner})"
    lines.append(f"{'  ' * indent}{node.get('name')}{dur_txt}{mark}{attr_txt}")
    events = node.get("events") or []
    shown = events if max_events < 0 else events[-max_events:]
    if len(events) > len(shown):
        lines.append(f"{'  ' * (indent + 1)}… {len(events) - len(shown)} "
                     "earlier events")
    for ev in shown:
        ev_attrs = ev.get("attrs") or {}
        inner = ", ".join(f"{k}={v}" for k, v in sorted(ev_attrs.items()))
        suffix = f" ({inner})" if inner else ""
        lines.append(f"{'  ' * (indent + 1)}* {ev.get('name')}{suffix}")
    for child in node.get("children") or []:
        _format_span(child, indent + 1, lines, max_events)


def format_flight_record(record: dict, *, max_events: int = 8) -> str:
    """Human-readable rendering for ``gmbe flight show``."""
    lines = [
        f"flight record v{record.get('flight_version')} — "
        f"reason: {record.get('reason')}",
        f"job: {record.get('job_id')}  trace: {record.get('trace_id')}",
    ]
    attempts = record.get("attempts") or {}
    if attempts:
        lines.append("")
        lines.append("attempt ledger:")
        for shard in sorted(attempts, key=lambda s: int(s)):
            for a in attempts[shard]:
                err = f" — {a['error']}" if a.get("error") else ""
                lines.append(
                    f"  shard {shard} attempt {a['attempt']}: "
                    f"{a['status']} (pid {a.get('pid')}){err}"
                )
    verdicts = (record.get("supervisor") or {}).get("events") or []
    if verdicts:
        lines.append("")
        lines.append(f"supervisor events ({len(verdicts)}):")
        for v in verdicts[-max_events:] if max_events >= 0 else verdicts:
            extra = {k: v[k] for k in v if k != "kind"}
            inner = ", ".join(f"{k}={val}" for k, val in sorted(extra.items()))
            lines.append(f"  {v.get('kind')}" + (f" ({inner})" if inner else ""))
    workers = record.get("workers") or {}
    if workers:
        lines.append("")
        lines.append("workers:")
        for key in sorted(workers):
            w = workers[key]
            lines.append(
                f"  {key}: pid {w.get('pid')}, {w.get('flushes')} flushes, "
                f"{len(w.get('records') or [])} records retained, "
                f"{w.get('dropped')} dropped, "
                f"final={'yes' if w.get('final_flush_seen') else 'no'}"
            )
    tree = record.get("span_tree") or []
    if tree:
        lines.append("")
        lines.append("span tree:")
        for root in tree:
            _format_span(root, 1, lines, max_events)
    return "\n".join(lines)
