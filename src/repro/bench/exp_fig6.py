"""Experiment: Fig. 6 — overall runtime of all six algorithms.

Runs MBEA, iMBEA, PMBE, ooMBEA, ParMBE (96 simulated cores) and GMBE
(simulated A100) on every dataset analog and reports simulated seconds
per (algorithm, dataset) plus GMBE's speedup over the best CPU
competitor — the paper's headline 3.5×–70.6× claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import DATASET_ORDER, load
from ..gpusim.device import A100
from .common import DEVICE_SCALE, AlgoRun, run_algorithm, scale_device
from .tables import format_si, format_table

__all__ = ["Fig6Result", "ALGORITHMS", "experiment_fig6", "print_fig6"]

ALGORITHMS = ["MBEA", "iMBEA", "PMBE", "ooMBEA", "ParMBE", "GMBE"]


@dataclass
class Fig6Result:
    """Simulated seconds per algorithm per dataset."""

    seconds: dict[str, dict[str, float]] = field(default_factory=dict)
    runs: dict[tuple[str, str], AlgoRun] = field(default_factory=dict)

    def speedup_vs_best_cpu(self, code: str) -> float:
        """GMBE speedup over the fastest CPU algorithm on ``code``."""
        per = self.seconds[code]
        best_cpu = min(v for k, v in per.items() if k != "GMBE")
        return best_cpu / per["GMBE"] if per["GMBE"] > 0 else float("inf")

    def speedup_vs_parmbe(self, code: str) -> float:
        per = self.seconds[code]
        return per["ParMBE"] / per["GMBE"] if per["GMBE"] > 0 else float("inf")


def experiment_fig6(
    *,
    scale: float = 1.0,
    codes: list[str] | None = None,
    algorithms: list[str] | None = None,
    device_scale: int = DEVICE_SCALE,
) -> Fig6Result:
    """Run the Fig. 6 grid; results are memoized across drivers."""
    result = Fig6Result()
    device = scale_device(A100, device_scale)
    algos = algorithms if algorithms is not None else ALGORITHMS
    for code in codes if codes is not None else DATASET_ORDER:
        graph = load(code, scale=scale)
        per: dict[str, float] = {}
        counts: set[int] = set()
        for algo in algos:
            run = run_algorithm(algo, graph, device=device, cache_key=(code, scale))
            per[algo] = run.sim_seconds
            counts.add(run.n_maximal)
            result.runs[(code, algo)] = run
        if len(counts) != 1:
            raise AssertionError(
                f"algorithms disagree on {code}: {sorted(counts)}"
            )
        result.seconds[code] = per
    return result


def print_fig6(result: Fig6Result) -> str:
    """Print the Fig. 6 table; returns the rendered text."""
    codes = list(result.seconds)
    algos = [a for a in ALGORITHMS if all(a in result.seconds[c] for c in codes)]
    rows = []
    for code in codes:
        per = result.seconds[code]
        row = [code] + [format_si(per[a]) + "s" for a in algos]
        if "GMBE" in per and len(per) > 1:
            row.append(f"{result.speedup_vs_best_cpu(code):.1f}x")
        rows.append(row)
    out = format_table(
        ["Dataset"] + algos + ["GMBE vs best CPU"],
        rows,
        title="Fig. 6: overall runtime (simulated seconds, log-scale in paper)",
    )
    print(out)
    return out
