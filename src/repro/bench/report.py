"""Full-evaluation report generator.

Mirrors the paper artifact's ``scripts/`` + ``results.txt`` workflow:
one call runs every experiment and writes a single text report with all
tables and figure data.  Used by ``gmbe bench all`` and handy for
regression-diffing two checkouts.
"""

from __future__ import annotations

import io
import time
from contextlib import redirect_stdout

from . import (
    experiment_fig6,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_table1,
    experiment_table2,
    print_fig6,
    print_fig7,
    print_fig8,
    print_fig9,
    print_fig10,
    print_fig11,
    print_fig12,
    print_fig13,
    print_table1,
    print_table2,
)

__all__ = ["EXPERIMENTS", "generate_report"]

#: experiment name -> (driver, printer, default kwargs)
EXPERIMENTS = {
    "table1": (experiment_table1, print_table1, {}),
    "fig6": (experiment_fig6, print_fig6, {}),
    "fig7": (experiment_fig7, print_fig7, {}),
    "fig8": (experiment_fig8, print_fig8, {}),
    "table2": (experiment_table2, print_table2, {}),
    "fig9": (experiment_fig9, print_fig9, {}),
    "fig10": (experiment_fig10, print_fig10, {"scale": 0.5}),
    "fig11": (experiment_fig11, print_fig11, {"scale": 0.5}),
    "fig12": (experiment_fig12, print_fig12, {"scale": 0.5}),
    "fig13": (experiment_fig13, print_fig13, {}),
}


def generate_report(
    *,
    scale: float | None = None,
    only: list[str] | None = None,
    progress=None,
) -> str:
    """Run the selected experiments and return the combined report text.

    Parameters
    ----------
    scale:
        Override every experiment's dataset scale (default: per-
        experiment defaults — headline experiments at 1.0, sweeps 0.5).
    only:
        Subset of experiment names; default all, in paper order.
    progress:
        Optional callable receiving one status line per experiment (the
        artifact's ``progress.txt`` behaviour).
    """
    names = only if only is not None else list(EXPERIMENTS)
    unknown = set(names) - set(EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiments: {sorted(unknown)}")
    sections: list[str] = []
    for name in names:
        driver, printer, defaults = EXPERIMENTS[name]
        kwargs = dict(defaults)
        if scale is not None:
            kwargs["scale"] = scale
        if name == "fig7":
            kwargs.pop("scale", None)  # analytical; scale-free by default
        start = time.perf_counter()
        result = driver(**kwargs)
        buf = io.StringIO()
        with redirect_stdout(buf):
            printer(result)
        elapsed = time.perf_counter() - start
        if progress is not None:
            progress(f"{name}: done in {elapsed:.1f}s")
        sections.append(buf.getvalue().rstrip())
    return "\n\n".join(sections) + "\n"
