"""Experiment: Table 2 — pruning efficiency (δ/α ratios).

δ = non-maximal bicliques generated and rejected by the maximality
check; α = maximal bicliques.  The paper reports δ/α for GMBE vs
GMBE-w/o_PRUNE, showing the local-neighborhood-size rule avoids
48.7%–92.8% of non-maximal checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets import DATASET_ORDER, load
from ..gmbe import GMBEConfig
from .common import run_algorithm
from .tables import format_table

__all__ = ["Table2Row", "experiment_table2", "print_table2"]


@dataclass(frozen=True)
class Table2Row:
    code: str
    ratio_gmbe: float
    ratio_noprune: float

    @property
    def avoided_fraction(self) -> float:
        """Fraction of non-maximal checks avoided by pruning."""
        if self.ratio_noprune == 0:
            return 0.0
        return 1.0 - self.ratio_gmbe / self.ratio_noprune


def experiment_table2(
    *, scale: float = 1.0, codes: list[str] | None = None
) -> list[Table2Row]:
    """Compute Table 2's pruning-efficiency ratios per dataset."""
    rows: list[Table2Row] = []
    for code in codes if codes is not None else DATASET_ORDER:
        graph = load(code, scale=scale)
        on = run_algorithm(
            "GMBE", graph, config=GMBEConfig(), cache_key=(code, scale)
        )
        off = run_algorithm(
            "GMBE", graph, config=GMBEConfig(prune=False), cache_key=(code, scale)
        )
        assert on.n_maximal == off.n_maximal
        rows.append(
            Table2Row(
                code=code,
                ratio_gmbe=on.result.counters.nonmaximal_ratio(),
                ratio_noprune=off.result.counters.nonmaximal_ratio(),
            )
        )
    return rows


def print_table2(rows: list[Table2Row]) -> str:
    """Print the Table 2 table; returns the rendered text."""
    out = format_table(
        ["Dataset", "GMBE d/a", "w/o_PRUNE d/a", "checks avoided"],
        [
            (
                r.code,
                f"{r.ratio_gmbe:.3g}",
                f"{r.ratio_noprune:.3g}",
                f"{100 * r.avoided_fraction:.1f}%",
            )
            for r in rows
        ],
        title="Table 2: non-maximal/maximal ratio, GMBE vs GMBE-w/o_PRUNE",
    )
    print(out)
    return out
