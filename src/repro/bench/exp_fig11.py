"""Experiment: Fig. 11 — impact of WarpPerSM (8/16/24/32).

The trade-off: more resident warps per SM means more parallel MBE tasks
but fewer registers per warp; the paper finds 16 the sweet spot on most
datasets, with 32 occasionally winning on enumeration-heavy ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import DATASET_ORDER, load
from ..gmbe import GMBEConfig
from ..gpusim.device import A100
from .common import DEVICE_SCALE, run_algorithm, scale_device
from .tables import format_si, format_table

__all__ = ["WARP_GRID", "Fig11Result", "experiment_fig11", "print_fig11"]

WARP_GRID = [8, 16, 24, 32]


@dataclass
class Fig11Result:
    seconds: dict[str, dict[int, float]] = field(default_factory=dict)

    def best_warps(self, code: str) -> int:
        per = self.seconds[code]
        return min(per, key=per.get)


def experiment_fig11(
    *,
    scale: float = 1.0,
    codes: list[str] | None = None,
    grid: list[int] | None = None,
    device_scale: int = DEVICE_SCALE,
) -> Fig11Result:
    """Sweep WarpPerSM per Fig. 11."""
    result = Fig11Result()
    device = scale_device(A100, device_scale)
    for code in codes if codes is not None else DATASET_ORDER:
        graph = load(code, scale=scale)
        per: dict[int, float] = {}
        counts = set()
        for warps in grid if grid is not None else WARP_GRID:
            run = run_algorithm(
                "GMBE",
                graph,
                config=GMBEConfig(warps_per_sm=warps),
                device=device,
                cache_key=(code, scale),
            )
            per[warps] = run.sim_seconds
            counts.add(run.n_maximal)
        assert len(counts) == 1
        result.seconds[code] = per
    return result


def print_fig11(result: Fig11Result) -> str:
    """Print the Fig. 11 table; returns the rendered text."""
    rows = [
        [code]
        + [format_si(per[w]) + "s" for w in WARP_GRID if w in per]
        + [str(result.best_warps(code))]
        for code, per in result.seconds.items()
    ]
    out = format_table(
        ["Dataset"] + [f"GMBE({w})" for w in WARP_GRID] + ["best"],
        rows,
        title="Fig. 11: WarpPerSM sweep (simulated seconds)",
    )
    print(out)
    return out
