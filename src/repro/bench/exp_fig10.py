"""Experiment: Fig. 10 — sensitivity to the load-balancing thresholds.

Sweeps the (bound_height, bound_size) pairs the paper evaluates —
(20,1000), (20,1500), (30,1500), (30,2500), (40,2500), (40,3500) — over
all datasets.  Expected shape: (20,1500) near-best in most cases (it is
GMBE's default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import DATASET_ORDER, load
from ..gmbe import GMBEConfig
from ..gpusim.device import A100
from .common import DEVICE_SCALE, run_algorithm, scale_device
from .tables import format_si, format_table

__all__ = ["THRESHOLD_GRID", "Fig10Result", "experiment_fig10", "print_fig10"]

THRESHOLD_GRID = [
    (20, 1000),
    (20, 1500),
    (30, 1500),
    (30, 2500),
    (40, 2500),
    (40, 3500),
]


@dataclass
class Fig10Result:
    #: seconds[dataset][(height, size)]
    seconds: dict[str, dict[tuple[int, int], float]] = field(default_factory=dict)

    def best_config(self, code: str) -> tuple[int, int]:
        per = self.seconds[code]
        return min(per, key=per.get)

    def default_within_factor(self, code: str, factor: float = 1.25) -> bool:
        """Is the paper's default (20,1500) within ``factor`` of best?"""
        per = self.seconds[code]
        return per[(20, 1500)] <= factor * per[self.best_config(code)]


def experiment_fig10(
    *,
    scale: float = 1.0,
    codes: list[str] | None = None,
    grid: list[tuple[int, int]] | None = None,
    device_scale: int = DEVICE_SCALE,
) -> Fig10Result:
    """Sweep the (bound_height, bound_size) grid of Fig. 10."""
    result = Fig10Result()
    device = scale_device(A100, device_scale)
    for code in codes if codes is not None else DATASET_ORDER:
        graph = load(code, scale=scale)
        per: dict[tuple[int, int], float] = {}
        counts = set()
        for height, size in grid if grid is not None else THRESHOLD_GRID:
            run = run_algorithm(
                "GMBE",
                graph,
                config=GMBEConfig(bound_height=height, bound_size=size),
                device=device,
                cache_key=(code, scale),
            )
            per[(height, size)] = run.sim_seconds
            counts.add(run.n_maximal)
        assert len(counts) == 1
        result.seconds[code] = per
    return result


def print_fig10(result: Fig10Result) -> str:
    """Print the Fig. 10 table; returns the rendered text."""
    grid = THRESHOLD_GRID
    rows = []
    for code, per in result.seconds.items():
        rows.append(
            [code]
            + [format_si(per[g]) + "s" for g in grid if g in per]
            + [str(result.best_config(code))]
        )
    out = format_table(
        ["Dataset"] + [f"({h},{s})" for h, s in grid] + ["best"],
        rows,
        title="Fig. 10: GMBE-(bound_height, bound_size) sweep (simulated seconds)",
    )
    print(out)
    return out
