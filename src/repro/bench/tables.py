"""Plain-text table/series rendering for the benchmark drivers.

The paper's artifact prints results to text files and regenerates plots
separately; these helpers produce the same rows/series on stdout so each
``bench_*`` target's output can be compared line-by-line with the
paper's figures.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_si", "log_bucket"]


def format_si(value: float, *, digits: int = 3) -> str:
    """Human SI formatting: 1.23k, 45.6M, 0.012 …"""
    if value == 0:
        return "0"
    for cutoff, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= cutoff:
            return f"{value / cutoff:.{digits}g}{suffix}"
    if abs(value) >= 0.01:
        return f"{value:.{digits}g}"
    return f"{value:.2e}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], *, digits: int = 4
) -> str:
    """One named data series as ``name: x=y x=y …`` (figure line data)."""
    pairs = " ".join(f"{x}={format_si(float(y), digits=digits)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def log_bucket(value: float) -> str:
    """Coarse log-scale bucket label, for eyeballing log plots."""
    import math

    if value <= 0:
        return "0"
    exp = math.floor(math.log10(value))
    return f"1e{exp}"
