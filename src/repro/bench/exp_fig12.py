"""Experiment: Fig. 12 — adaptability across GPUs (A100/V100/2080Ti).

Same GMBE configuration, three device models.  Expected shape: all
three complete everything; the A100 is fastest, the 2080Ti slowest,
with modest gaps (the paper's differences are mostly SM count).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import DATASET_ORDER, load
from ..gpusim.device import A100, RTX2080TI, V100
from .common import DEVICE_SCALE, run_algorithm, scale_device
from .tables import format_si, format_table

__all__ = ["DEVICES", "Fig12Result", "experiment_fig12", "print_fig12"]

DEVICES = [A100, V100, RTX2080TI]


@dataclass
class Fig12Result:
    seconds: dict[str, dict[str, float]] = field(default_factory=dict)


def experiment_fig12(
    *,
    scale: float = 1.0,
    codes: list[str] | None = None,
    device_scale: int = DEVICE_SCALE,
) -> Fig12Result:
    """Run GMBE on each device preset per Fig. 12."""
    result = Fig12Result()
    for code in codes if codes is not None else DATASET_ORDER:
        graph = load(code, scale=scale)
        per: dict[str, float] = {}
        counts = set()
        for preset in DEVICES:
            device = scale_device(preset, device_scale)
            run = run_algorithm(
                "GMBE", graph, device=device, cache_key=(code, scale)
            )
            per[preset.name] = run.sim_seconds
            counts.add(run.n_maximal)
        assert len(counts) == 1
        result.seconds[code] = per
    return result


def print_fig12(result: Fig12Result) -> str:
    """Print the Fig. 12 table; returns the rendered text."""
    names = [d.name for d in DEVICES]
    rows = [
        [code] + [format_si(per[n]) + "s" for n in names]
        for code, per in result.seconds.items()
    ]
    out = format_table(
        ["Dataset"] + [f"GMBE-{n}" for n in names],
        rows,
        title="Fig. 12: adaptability on different GPUs (simulated seconds)",
    )
    print(out)
    return out
