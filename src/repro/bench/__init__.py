"""Benchmark harness: cost models, shared plumbing, and one experiment
driver per table/figure of the paper's evaluation (§6)."""

from .common import AlgoRun, clear_cache, run_algorithm
from .costmodel import XEON_5318Y, CPUModel
from .exp_fig6 import ALGORITHMS, Fig6Result, experiment_fig6, print_fig6
from .exp_fig7 import Fig7Row, experiment_fig7, print_fig7
from .exp_fig8 import VARIANTS, Fig8Result, experiment_fig8, print_fig8
from .exp_fig9 import Fig9Curve, experiment_fig9, print_fig9
from .exp_fig10 import THRESHOLD_GRID, Fig10Result, experiment_fig10, print_fig10
from .exp_fig11 import WARP_GRID, Fig11Result, experiment_fig11, print_fig11
from .exp_fig12 import DEVICES, Fig12Result, experiment_fig12, print_fig12
from .exp_fig13 import GPU_COUNTS, Fig13Row, experiment_fig13, print_fig13
from .exp_table1 import Table1Row, experiment_table1, print_table1
from .exp_table2 import Table2Row, experiment_table2, print_table2
from .report import EXPERIMENTS, generate_report
from .tables import format_series, format_si, format_table

__all__ = [
    "ALGORITHMS",
    "AlgoRun",
    "CPUModel",
    "DEVICES",
    "EXPERIMENTS",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "Fig13Row",
    "Fig6Result",
    "Fig7Row",
    "Fig8Result",
    "Fig9Curve",
    "GPU_COUNTS",
    "THRESHOLD_GRID",
    "Table1Row",
    "Table2Row",
    "VARIANTS",
    "WARP_GRID",
    "XEON_5318Y",
    "clear_cache",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig9",
    "experiment_table1",
    "experiment_table2",
    "format_series",
    "generate_report",
    "format_si",
    "format_table",
    "print_fig10",
    "print_fig11",
    "print_fig12",
    "print_fig13",
    "print_fig6",
    "print_fig7",
    "print_fig8",
    "print_fig9",
    "print_table1",
    "print_table2",
    "run_algorithm",
]
