"""Shared benchmark plumbing: algorithm dispatch, timing, memoization.

Every figure/table driver funnels through :func:`run_algorithm`, which
executes an algorithm once on a dataset and attaches both wall-clock
(host Python time, reported by pytest-benchmark separately) and
*simulated* seconds in the paper's cross-platform units (see
:mod:`repro.bench.costmodel`).  Results are memoized per process so the
figure drivers can share runs (Fig. 6 and Fig. 8 both need GMBE on all
datasets, for example) without re-enumerating.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from ..core import imbea, mbea, oombea, parmbe, pmbe
from ..core.bicliques import EnumerationResult
from ..gmbe import GMBEConfig, gmbe_gpu, gmbe_host
from ..gpusim.device import DEVICE_PRESETS, A100, DeviceSpec
from ..graph.bipartite import BipartiteGraph
from .costmodel import XEON_5318Y, CPUModel

__all__ = [
    "AlgoRun",
    "run_algorithm",
    "clear_cache",
    "scale_device",
    "DEVICE_SCALE",
    "SERIAL_CPU_ALGOS",
]

#: Default device down-scale factor for timing experiments.  The analog
#: datasets are ~2 orders of magnitude smaller than the paper's, so a
#: full A100 (1,728 resident warps) would never saturate and every
#: load-balance effect would vanish; dividing SM counts by 8 restores
#: the paper's regime (tasks ≫ warps) while preserving the A100 : V100 :
#: 2080Ti ratios.  Set to 1 to simulate full boards.
DEVICE_SCALE = 8


def scale_device(device: "DeviceSpec", factor: int = DEVICE_SCALE) -> "DeviceSpec":
    """Shrink a device's SM count by ``factor`` (min 1 SM), renaming it
    ``<name>/<factor>``; all other parameters are untouched."""
    if factor <= 1:
        return device
    return device.with_(
        name=f"{device.name}/{factor}",
        n_sms=max(1, round(device.n_sms / factor)),
    )

SERIAL_CPU_ALGOS = ("MBEA", "iMBEA", "PMBE", "ooMBEA")

_SERIAL: dict[str, Callable[..., EnumerationResult]] = {
    "MBEA": mbea,
    "iMBEA": imbea,
    "PMBE": pmbe,
    "ooMBEA": oombea,
}


@dataclass
class AlgoRun:
    """One algorithm × dataset execution."""

    algo: str
    dataset: str
    result: EnumerationResult
    wall_seconds: float
    sim_seconds: float

    @property
    def n_maximal(self) -> int:
        return self.result.n_maximal


_CACHE: dict[tuple, AlgoRun] = {}


def clear_cache() -> None:
    """Drop all memoized runs (tests use this for isolation)."""
    _CACHE.clear()


def run_algorithm(
    algo: str,
    graph: BipartiteGraph,
    *,
    cpu_model: CPUModel = XEON_5318Y,
    n_cores: int = 96,
    config: GMBEConfig | None = None,
    device: DeviceSpec | str = A100,
    n_gpus: int = 1,
    cache_key: Any = None,
) -> AlgoRun:
    """Run ``algo`` on ``graph`` once, with simulated-seconds attached.

    ``algo`` is one of ``MBEA``, ``iMBEA``, ``PMBE``, ``ooMBEA``,
    ``ParMBE``, ``GMBE`` (simulated GPU) or ``GMBE-HOST``.  GMBE accepts
    ``config``/``device``/``n_gpus``.  ``cache_key`` (e.g. the dataset
    code + scale) enables memoization; pass ``None`` to force a fresh
    run.
    """
    if isinstance(device, str):
        device = DEVICE_PRESETS[device]
    key = None
    if cache_key is not None:
        key = (algo, cache_key, config, device.name, n_gpus, n_cores)
        hit = _CACHE.get(key)
        if hit is not None:
            return hit

    start = time.perf_counter()
    if algo in _SERIAL:
        result = _SERIAL[algo](graph)
        sim = cpu_model.serial_seconds(result.counters)
    elif algo == "ParMBE":
        result = parmbe(graph, n_workers=n_cores)
        sim = cpu_model.parallel_seconds(
            result.extras["task_costs"], result.extras["task_nodes"], n_cores
        )
    elif algo == "GMBE":
        result = gmbe_gpu(
            graph,
            config=config if config is not None else GMBEConfig(),
            device=device,
            n_gpus=n_gpus,
        )
        sim = result.sim_time
    elif algo == "GMBE-HOST":
        result = gmbe_host(
            graph, config=config if config is not None else GMBEConfig()
        )
        sim = cpu_model.serial_seconds(result.counters)
    else:
        raise ValueError(f"unknown algorithm {algo!r}")
    wall = time.perf_counter() - start

    run = AlgoRun(
        algo=algo,
        dataset=graph.name,
        result=result,
        wall_seconds=wall,
        sim_seconds=sim,
    )
    if key is not None:
        _CACHE[key] = run
    return run
