"""Experiment: Figs. 4 and 9 — runtime load on SMs over time.

Samples the number of active SMs (an SM is active while any of its
resident warps executes a task) over simulated time for GMBE,
GMBE-WARP, and GMBE-BLOCK on the two datasets the paper plots: EuAll
and BookCrossing analogs.  Fig. 4 is the GMBE-WARP curve alone.

The paper's shape: the WARP curve decays early (most SMs idle waiting
for stragglers), BLOCK holds longer, and task-centric GMBE keeps nearly
all SMs busy until the very end, finishing first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import load
from ..gmbe import GMBEConfig
from ..gpusim.timeline import active_sm_curve, active_units_curve
from ..gpusim.device import A100
from .common import DEVICE_SCALE, run_algorithm, scale_device
from .tables import format_series

__all__ = ["Fig9Curve", "experiment_fig9", "print_fig9", "DEFAULT_FIG9_CODES"]

DEFAULT_FIG9_CODES = ["EE", "BX"]

_SCHEMES = {
    "GMBE": GMBEConfig(),
    "GMBE-WARP": GMBEConfig(scheduling="warp"),
    "GMBE-BLOCK": GMBEConfig(scheduling="block"),
}


@dataclass
class Fig9Curve:
    code: str
    scheme: str
    times_s: np.ndarray
    active_sms: np.ndarray
    finish_s: float

    def tail_idle_fraction(self, threshold: float = 0.5) -> float:
        """Fraction of the run spent with less than ``threshold`` of the
        peak SM count active — the 'waiting for the slowest' waste."""
        peak = self.active_sms.max(initial=0)
        if peak == 0:
            return 0.0
        low = self.active_sms < threshold * peak
        return float(np.count_nonzero(low)) / len(self.active_sms)


def experiment_fig9(
    *,
    scale: float = 1.0,
    codes: list[str] | None = None,
    n_samples: int = 120,
    device_scale: int = DEVICE_SCALE,
) -> list[Fig9Curve]:
    """Record Fig. 9's active-SM curves per dataset and scheme."""
    curves: list[Fig9Curve] = []
    dev_scaled = scale_device(A100, device_scale)
    for code in codes if codes is not None else DEFAULT_FIG9_CODES:
        graph = load(code, scale=scale)
        for scheme, config in _SCHEMES.items():
            run = run_algorithm(
                "GMBE", graph, config=config, device=dev_scaled,
                cache_key=(code, scale),
            )
            report = run.result.extras["report"]
            device = run.result.extras["device"]
            recorder = report.recorders[0]
            if config.scheduling == "block":
                times_c, counts = active_units_curve(
                    recorder, lambda unit: unit, n_samples=n_samples
                )
            else:
                times_c, counts = active_sm_curve(
                    recorder, device.warps_per_sm, n_samples=n_samples
                )
            curves.append(
                Fig9Curve(
                    code=code,
                    scheme=scheme,
                    times_s=times_c / device.clock_hz,
                    active_sms=counts,
                    finish_s=run.sim_seconds,
                )
            )
    return curves


def print_fig9(curves: list[Fig9Curve], *, points: int = 12) -> str:
    """Print the Fig. 9 series; returns the rendered text."""
    lines = ["Fig. 9 (and Fig. 4): active SMs over simulated time"]
    for c in curves:
        idx = np.linspace(0, len(c.times_s) - 1, points).astype(int)
        lines.append(
            format_series(
                f"{c.code}/{c.scheme} (finish {c.finish_s:.3g}s)",
                [f"{t:.2g}s" for t in c.times_s[idx]],
                c.active_sms[idx].astype(float),
                digits=3,
            )
        )
    out = "\n".join(lines)
    print(out)
    return out
