"""Cross-platform cost model: scalar work → simulated seconds.

The paper compares wall-clock across machines (96-core Xeon vs A100).
This reproduction executes every algorithm on one host, so cross-platform
times come from a common currency:

- **scalar work units** — ``Counters.set_op_work``, the summed lengths of
  all sorted-set operations an algorithm performed (identical inner
  loops across algorithms).  Packed-bitset operations
  (:mod:`repro.core.bitset`) contribute *words* instead of elements:
  one 64-bit word is one vector lane of work, covering
  :data:`BITSET_WORD_VERTICES` vertex slots — which is exactly the
  dense-task advantage the adaptive backend exploits, and why a bitset
  run reports less modeled work for the same enumeration;
- **warp steps** — ``Counters.simt_cycles``, the 32-lane version with
  divergence (per-row ceilings).  Bitset passes charge coalesced
  whole-warp steps (``Counters.charge_bitset``): every row is the same
  number of words, so there is no ragged-row lane waste — word-parallel
  AND/popcount, not galloping merges.  Used only by the GPU simulator.

:class:`CPUModel` converts scalar work into serial seconds and, through
:func:`repro.parallel.simpool.schedule_tasks`, ParMBE's 96-core
makespan.  The GPU side converts warp-step makespans with the device
clock (see :meth:`repro.gpusim.device.DeviceSpec.cycles_to_seconds`).

Constants are calibrated to commodity hardware (a cache-unfriendly
graph workload sustains a few scalar ops per cycle on a ~2 GHz Xeon;
each enumeration node carries fixed bookkeeping).  Absolute values are
honest-order-of-magnitude; the experiments compare *ratios*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.bicliques import Counters
from ..parallel.simpool import PoolSchedule, schedule_tasks

__all__ = ["BITSET_WORD_VERTICES", "CPUModel", "XEON_5318Y"]

#: Vertex slots carried by one packed-bitset work unit (a uint64 word).
#: A CPU/GPU lane moves one word per op just like one element per op, so
#: ``ops_per_second`` applies to both currencies unchanged; the bitset
#: speedup shows up as *fewer units*, not faster units.
BITSET_WORD_VERTICES = 64


@dataclass(frozen=True)
class CPUModel:
    """Timing model of one CPU core plus its multi-core pool."""

    name: str
    #: sustained scalar set-op throughput of one core (elements/second)
    ops_per_second: float
    #: fixed seconds of bookkeeping per enumeration node
    node_overhead_s: float
    #: per-task dispatch/steal overhead in the parallel pool (seconds)
    task_overhead_s: float = 2e-6
    #: work-conserving efficiency of the fine-grained stealing pool
    #: (ParMBE spawns tasks per candidate branch, so the pool stays
    #: nearly work-conserving; the residual covers contention and the
    #: serial critical path)
    stealing_efficiency: float = 0.8

    def serial_seconds(self, counters: Counters) -> float:
        """Simulated single-thread runtime for a finished run."""
        return (
            counters.set_op_work / self.ops_per_second
            + counters.nodes_generated * self.node_overhead_s
        )

    def task_seconds(self, work: float, nodes: int) -> float:
        """Simulated runtime of one task on one core."""
        return work / self.ops_per_second + nodes * self.node_overhead_s

    def parallel_schedule(
        self,
        task_works: Sequence[float],
        task_nodes: Sequence[int],
        n_cores: int,
    ) -> PoolSchedule:
        """List-schedule per-task costs onto ``n_cores``."""
        costs = [
            self.task_seconds(w, n) for w, n in zip(task_works, task_nodes)
        ]
        return schedule_tasks(
            costs, n_cores, per_task_overhead=self.task_overhead_s
        )

    def parallel_seconds(
        self,
        task_works: Sequence[float],
        task_nodes: Sequence[int],
        n_cores: int,
    ) -> float:
        """Simulated pool makespan (ParMBE's reported time).

        ParMBE (Das & Tirthapura) spawns tasks per candidate branch, not
        per root vertex, so even one giant enumeration tree spreads over
        the pool — the runtime is work-conserving rather than bounded by
        the largest per-vertex tree.  Modeled as total work over
        ``n_cores × stealing_efficiency`` plus amortized spawn overhead;
        never better than a perfectly split largest *node* (covered by
        the efficiency factor).
        """
        total = sum(
            self.task_seconds(w, n) for w, n in zip(task_works, task_nodes)
        )
        spawn = self.task_overhead_s * len(list(task_works)) / n_cores
        return total / (n_cores * self.stealing_efficiency) + spawn


#: The paper's CPU platform: Xeon Gold 5318Y @ 2.10 GHz, 96 cores.
XEON_5318Y = CPUModel(
    name="Xeon Gold 5318Y",
    ops_per_second=1.6e9,
    node_overhead_s=2.5e-7,
)
