"""Experiment: Fig. 7 — memory demand, GMBE vs GMBE-w/o_REUSE.

For each dataset, computes the modeled GPU memory both layouts would
pre-allocate on an A100 (graph + per-procedure buffers), flags which
demands exceed the device capacity, and reports the node-reuse saving
factor (the paper measures 49×–4,819×).

This experiment is purely analytical (it needs only Table 1's Δ/Δ2
statistics), so by default it runs on the **paper's published dataset
statistics** and reproduces the original figure's numbers exactly —
including the datasets whose naive demand exceeds the A100's 40 GB.
Pass ``source="analog"`` to evaluate the scaled synthetic analogs
instead (their Δ2 is far smaller, so savings are milder).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets import DATASET_ORDER, PAPER_TABLE1, load
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.memory import MemoryModel
from ..graph.stats import compute_stats
from .tables import format_si, format_table

__all__ = ["Fig7Row", "experiment_fig7", "print_fig7"]


@dataclass(frozen=True)
class Fig7Row:
    code: str
    reuse_bytes: int
    naive_bytes: int
    fits_reuse: bool
    fits_naive: bool
    #: *result*-side memory (the store subsystem): encoded result-store
    #: bytes vs the modeled materialized-list bytes.  Zero unless the
    #: experiment ran with ``measure_store=True`` (needs a real
    #: enumeration, so analog source only).
    store_encoded_bytes: int = 0
    store_list_bytes: int = 0

    @property
    def saving_factor(self) -> float:
        """Per-procedure memory saving of node reuse."""
        return self.naive_bytes / self.reuse_bytes if self.reuse_bytes else 0.0

    @property
    def store_saving_factor(self) -> float:
        """Result-memory saving of the delta-encoded store."""
        if not self.store_encoded_bytes:
            return 0.0
        return self.store_list_bytes / self.store_encoded_bytes


def experiment_fig7(
    *,
    scale: float = 1.0,
    device: DeviceSpec = A100,
    codes: list[str] | None = None,
    source: str = "paper",
    measure_store: bool = False,
) -> list[Fig7Row]:
    """Compute Fig. 7's per-dataset memory demands (both layouts).

    ``measure_store=True`` additionally enumerates each dataset (CPU
    baseline) into a compressed result store and reports the encoded vs
    materialized result bytes — the output-side counterpart of the
    figure's working-memory comparison.  Requires ``source="analog"``
    (the paper's statistics alone cannot produce result sets).
    """
    if source not in ("paper", "analog"):
        raise ValueError(f"unknown source {source!r}")
    if measure_store and source != "analog":
        raise ValueError(
            'measure_store=True needs source="analog": measuring the '
            "result store requires actually enumerating the datasets"
        )
    rows: list[Fig7Row] = []
    for code in codes if codes is not None else DATASET_ORDER:
        if source == "paper":
            stats = PAPER_TABLE1[code]
            graph = None
        else:
            graph = load(code, scale=scale)
            stats = compute_stats(graph)
        model = MemoryModel(stats)
        reuse = model.demand_with_reuse(device)
        naive = model.demand_without_reuse(device)
        store_encoded = store_list = 0
        if measure_store:
            from ..api import enumerate_maximal_bicliques
            from ..store import materialized_nbytes

            store = enumerate_maximal_bicliques(
                graph, algorithm="oombea", as_store=True
            )
            store_encoded = store.nbytes
            store_list = materialized_nbytes(store)
        rows.append(
            Fig7Row(
                code=code,
                reuse_bytes=reuse.total_bytes,
                naive_bytes=naive.total_bytes,
                fits_reuse=reuse.fits(device),
                fits_naive=naive.fits(device),
                store_encoded_bytes=store_encoded,
                store_list_bytes=store_list,
            )
        )
    return rows


def print_fig7(rows: list[Fig7Row], *, device: DeviceSpec = A100) -> str:
    """Print the Fig. 7 table; returns the rendered text."""
    with_store = any(r.store_encoded_bytes for r in rows)
    headers = ["Dataset", "GMBE", "GMBE-w/o_REUSE", "saving", "naive fits?"]
    if with_store:
        headers += ["result store", "result list", "store saving"]

    def _row(r: Fig7Row):
        base = (
            r.code,
            format_si(r.reuse_bytes) + "B",
            format_si(r.naive_bytes) + "B",
            f"{r.saving_factor:.0f}x",
            "yes" if r.fits_naive else f"NO (> {device.global_mem_bytes // 1024**3} GB)",
        )
        if with_store:
            base += (
                format_si(r.store_encoded_bytes) + "B",
                format_si(r.store_list_bytes) + "B",
                f"{r.store_saving_factor:.1f}x",
            )
        return base

    out = format_table(
        headers,
        [_row(r) for r in rows],
        title=f"Fig. 7: memory demand on {device.name} (log-scale in paper)",
    )
    print(out)
    return out
