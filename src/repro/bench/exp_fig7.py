"""Experiment: Fig. 7 — memory demand, GMBE vs GMBE-w/o_REUSE.

For each dataset, computes the modeled GPU memory both layouts would
pre-allocate on an A100 (graph + per-procedure buffers), flags which
demands exceed the device capacity, and reports the node-reuse saving
factor (the paper measures 49×–4,819×).

This experiment is purely analytical (it needs only Table 1's Δ/Δ2
statistics), so by default it runs on the **paper's published dataset
statistics** and reproduces the original figure's numbers exactly —
including the datasets whose naive demand exceeds the A100's 40 GB.
Pass ``source="analog"`` to evaluate the scaled synthetic analogs
instead (their Δ2 is far smaller, so savings are milder).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets import DATASET_ORDER, PAPER_TABLE1, load
from ..gpusim.device import A100, DeviceSpec
from ..gpusim.memory import MemoryModel
from ..graph.stats import compute_stats
from .tables import format_si, format_table

__all__ = ["Fig7Row", "experiment_fig7", "print_fig7"]


@dataclass(frozen=True)
class Fig7Row:
    code: str
    reuse_bytes: int
    naive_bytes: int
    fits_reuse: bool
    fits_naive: bool

    @property
    def saving_factor(self) -> float:
        """Per-procedure memory saving of node reuse."""
        return self.naive_bytes / self.reuse_bytes if self.reuse_bytes else 0.0


def experiment_fig7(
    *,
    scale: float = 1.0,
    device: DeviceSpec = A100,
    codes: list[str] | None = None,
    source: str = "paper",
) -> list[Fig7Row]:
    """Compute Fig. 7's per-dataset memory demands (both layouts)."""
    if source not in ("paper", "analog"):
        raise ValueError(f"unknown source {source!r}")
    rows: list[Fig7Row] = []
    for code in codes if codes is not None else DATASET_ORDER:
        if source == "paper":
            stats = PAPER_TABLE1[code]
        else:
            stats = compute_stats(load(code, scale=scale))
        model = MemoryModel(stats)
        reuse = model.demand_with_reuse(device)
        naive = model.demand_without_reuse(device)
        rows.append(
            Fig7Row(
                code=code,
                reuse_bytes=reuse.total_bytes,
                naive_bytes=naive.total_bytes,
                fits_reuse=reuse.fits(device),
                fits_naive=naive.fits(device),
            )
        )
    return rows


def print_fig7(rows: list[Fig7Row], *, device: DeviceSpec = A100) -> str:
    """Print the Fig. 7 table; returns the rendered text."""
    out = format_table(
        ["Dataset", "GMBE", "GMBE-w/o_REUSE", "saving", "naive fits?"],
        [
            (
                r.code,
                format_si(r.reuse_bytes) + "B",
                format_si(r.naive_bytes) + "B",
                f"{r.saving_factor:.0f}x",
                "yes" if r.fits_naive else f"NO (> {device.global_mem_bytes // 1024**3} GB)",
            )
            for r in rows
        ],
        title=f"Fig. 7: memory demand on {device.name} (log-scale in paper)",
    )
    print(out)
    return out
