"""Figure-file generation — the artifact's ``fig/`` directory, in SVG.

One ``render_*`` per figure, taking the corresponding experiment result
(see the ``exp_*`` drivers) and writing an SVG chart that mirrors the
paper's presentation (log-scale bars for the runtime figures, active-SM
step lines for Figs. 4/9, grouped per-GPU bars for Fig. 13).

``render_all(out_dir, ...)`` runs every experiment and writes the whole
figure set.
"""

from __future__ import annotations

import os
from pathlib import Path

from .exp_fig6 import ALGORITHMS, Fig6Result
from .exp_fig7 import Fig7Row
from .exp_fig8 import VARIANTS, Fig8Result
from .exp_fig9 import Fig9Curve
from .exp_fig10 import THRESHOLD_GRID, Fig10Result
from .exp_fig11 import WARP_GRID, Fig11Result
from .exp_fig12 import DEVICES, Fig12Result
from .exp_fig13 import Fig13Row
from .svgplot import grouped_bar_chart, line_chart

__all__ = [
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_fig13",
    "render_all",
]


def _write(path: str | os.PathLike[str], svg: str) -> str:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(svg, encoding="utf-8")
    return str(p)


def render_fig6(result: Fig6Result, path) -> str:
    codes = list(result.seconds)
    series = {
        algo: [result.seconds[c][algo] for c in codes]
        for algo in ALGORITHMS
        if all(algo in result.seconds[c] for c in codes)
    }
    return _write(path, grouped_bar_chart(
        codes, series,
        title="Fig. 6: overall runtime", ylabel="seconds (sim)", log=True,
    ))


def render_fig7(rows: list[Fig7Row], path) -> str:
    codes = [r.code for r in rows]
    series = {
        "GMBE": [r.reuse_bytes / 1e9 for r in rows],
        "GMBE-w/o_REUSE": [r.naive_bytes / 1e9 for r in rows],
    }
    return _write(path, grouped_bar_chart(
        codes, series,
        title="Fig. 7: memory demand (GB)", ylabel="GB", log=True,
    ))


def render_fig8(result: Fig8Result, path) -> str:
    codes = list(result.seconds)
    series = {
        name: [result.seconds[c][name] for c in codes] for name in VARIANTS
    }
    return _write(path, grouped_bar_chart(
        codes, series,
        title="Fig. 8: pruning & scheduling variants",
        ylabel="seconds (sim)", log=True,
    ))


def render_fig9(curves: list[Fig9Curve], path_prefix) -> list[str]:
    out = []
    by_code: dict[str, list[Fig9Curve]] = {}
    for c in curves:
        by_code.setdefault(c.code, []).append(c)
    for code, cs in by_code.items():
        series = {
            c.scheme: (c.times_s.tolist(), c.active_sms.tolist()) for c in cs
        }
        svg = line_chart(
            series,
            title=f"Fig. 9: active SMs over time ({code})",
            xlabel="simulated seconds",
            ylabel="active SMs",
        )
        out.append(_write(f"{path_prefix}_{code}.svg", svg))
    return out


def render_fig10(result: Fig10Result, path) -> str:
    codes = list(result.seconds)
    series = {
        f"({h},{s})": [result.seconds[c][(h, s)] for c in codes]
        for h, s in THRESHOLD_GRID
        if all((h, s) in result.seconds[c] for c in codes)
    }
    return _write(path, grouped_bar_chart(
        codes, series,
        title="Fig. 10: scheduling thresholds", ylabel="seconds (sim)", log=True,
    ))


def render_fig11(result: Fig11Result, path) -> str:
    codes = list(result.seconds)
    series = {
        f"GMBE({w})": [result.seconds[c][w] for c in codes]
        for w in WARP_GRID
        if all(w in result.seconds[c] for c in codes)
    }
    return _write(path, grouped_bar_chart(
        codes, series,
        title="Fig. 11: WarpPerSM", ylabel="seconds (sim)", log=True,
    ))


def render_fig12(result: Fig12Result, path) -> str:
    codes = list(result.seconds)
    series = {
        f"GMBE-{d.name}": [result.seconds[c][d.name] for c in codes]
        for d in DEVICES
    }
    return _write(path, grouped_bar_chart(
        codes, series,
        title="Fig. 12: GPU adaptability", ylabel="seconds (sim)", log=True,
    ))


def render_fig13(rows: list[Fig13Row], path_prefix) -> list[str]:
    out = []
    by_code: dict[str, list[Fig13Row]] = {}
    for r in rows:
        by_code.setdefault(r.code, []).append(r)
    for code, rs in by_code.items():
        counts = [str(r.n_gpus) for r in rs]
        max_gpus = max(r.n_gpus for r in rs)
        series = {}
        for gpu in range(max_gpus):
            series[f"GPU-{gpu}"] = [
                r.per_gpu_s[gpu] if gpu < len(r.per_gpu_s) else 0.0 for r in rs
            ]
        svg = grouped_bar_chart(
            counts, series,
            title=f"Fig. 13: multi-GPU scaling ({code})",
            ylabel="seconds (sim)",
        )
        out.append(_write(f"{path_prefix}_{code}.svg", svg))
    return out


def render_all(out_dir, *, scale: float = 1.0, sweep_scale: float = 0.5) -> list[str]:
    """Run every figure experiment and write the full SVG set."""
    from . import (
        experiment_fig6,
        experiment_fig7,
        experiment_fig8,
        experiment_fig9,
        experiment_fig10,
        experiment_fig11,
        experiment_fig12,
        experiment_fig13,
    )

    out = Path(out_dir)
    written = [
        render_fig6(experiment_fig6(scale=scale), out / "fig6.svg"),
        render_fig7(experiment_fig7(), out / "fig7.svg"),
        render_fig8(experiment_fig8(scale=scale), out / "fig8.svg"),
        *render_fig9(experiment_fig9(scale=scale), out / "fig9"),
        render_fig10(experiment_fig10(scale=sweep_scale), out / "fig10.svg"),
        render_fig11(experiment_fig11(scale=sweep_scale), out / "fig11.svg"),
        render_fig12(experiment_fig12(scale=sweep_scale), out / "fig12.svg"),
        *render_fig13(experiment_fig13(scale=scale), out / "fig13"),
    ]
    return written
