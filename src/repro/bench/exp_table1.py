"""Experiment: Table 1 — dataset statistics.

Reproduces the columns |U|, |V|, |E|, Δ(U), Δ2(U), Δ(V), Δ2(V) and the
maximal-biclique count for each of the 12 synthetic analogs, in the
paper's ascending-biclique-count order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets import DATASET_ORDER, load
from ..graph.stats import GraphStats, compute_stats
from .common import run_algorithm
from .tables import format_table

__all__ = ["Table1Row", "experiment_table1", "print_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One dataset's statistics row."""

    code: str
    stats: GraphStats
    n_maximal: int


def experiment_table1(
    *, scale: float = 1.0, codes: list[str] | None = None
) -> list[Table1Row]:
    """Compute Table 1 rows for the given datasets (all by default)."""
    rows: list[Table1Row] = []
    for code in codes if codes is not None else DATASET_ORDER:
        graph = load(code, scale=scale)
        stats = compute_stats(graph)
        run = run_algorithm("GMBE", graph, cache_key=(code, scale))
        rows.append(Table1Row(code=code, stats=stats, n_maximal=run.n_maximal))
    return rows


def print_table1(rows: list[Table1Row]) -> str:
    """Print the Table 1 table; returns the rendered text."""
    out = format_table(
        ["Dataset", "|U|", "|V|", "|E|", "dU", "d2U", "dV", "d2V", "Max. bicliques"],
        [
            (
                r.code,
                r.stats.n_u,
                r.stats.n_v,
                r.stats.n_edges,
                r.stats.max_deg_u,
                r.stats.max_two_hop_u,
                r.stats.max_deg_v,
                r.stats.max_two_hop_v,
                r.n_maximal,
            )
            for r in rows
        ],
        title="Table 1: dataset statistics (synthetic analogs)",
    )
    print(out)
    return out
