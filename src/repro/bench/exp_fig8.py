"""Experiment: Fig. 8 — effect of pruning and task scheduling.

Four GMBE variants per dataset: full GMBE, GMBE-w/o_PRUNE (pruning off),
GMBE-WARP (one tree per warp) and GMBE-BLOCK (one tree per block).  The
paper's shape: GMBE always fastest; the scheduling gap opens on the
large, skewed datasets (up to 44.7× vs WARP on EuAll).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import DATASET_ORDER, load
from ..gmbe import GMBEConfig
from ..gpusim.device import A100
from .common import DEVICE_SCALE, run_algorithm, scale_device
from .tables import format_si, format_table

__all__ = ["VARIANTS", "Fig8Result", "experiment_fig8", "print_fig8"]

VARIANTS: dict[str, GMBEConfig] = {
    "GMBE": GMBEConfig(),
    "GMBE-w/o_PRUNE": GMBEConfig(prune=False),
    "GMBE-WARP": GMBEConfig(scheduling="warp"),
    "GMBE-BLOCK": GMBEConfig(scheduling="block"),
}


@dataclass
class Fig8Result:
    seconds: dict[str, dict[str, float]] = field(default_factory=dict)

    def speedup(self, code: str, variant: str) -> float:
        per = self.seconds[code]
        return per[variant] / per["GMBE"] if per["GMBE"] > 0 else float("inf")


def experiment_fig8(
    *,
    scale: float = 1.0,
    codes: list[str] | None = None,
    device_scale: int = DEVICE_SCALE,
) -> Fig8Result:
    """Run the four GMBE variants of Fig. 8 on each dataset."""
    result = Fig8Result()
    device = scale_device(A100, device_scale)
    for code in codes if codes is not None else DATASET_ORDER:
        graph = load(code, scale=scale)
        per: dict[str, float] = {}
        counts = set()
        for name, config in VARIANTS.items():
            run = run_algorithm(
                "GMBE", graph, config=config, device=device,
                cache_key=(code, scale),
            )
            per[name] = run.sim_seconds
            counts.add(run.n_maximal)
        assert len(counts) == 1, f"variant counts disagree on {code}"
        result.seconds[code] = per
    return result


def print_fig8(result: Fig8Result) -> str:
    """Print the Fig. 8 table; returns the rendered text."""
    names = list(VARIANTS)
    rows = []
    for code, per in result.seconds.items():
        rows.append(
            [code]
            + [format_si(per[n]) + "s" for n in names]
            + [f"{result.speedup(code, 'GMBE-WARP'):.1f}x / {result.speedup(code, 'GMBE-BLOCK'):.1f}x"]
        )
    out = format_table(
        ["Dataset"] + names + ["GMBE gain vs WARP/BLOCK"],
        rows,
        title="Fig. 8: pruning and scheduling variants (simulated seconds)",
    )
    print(out)
    return out
