"""Dependency-free SVG charts.

The paper's artifact regenerates its figures with a plotting toolchain
(zplot + ghostscript); this reproduction ships a minimal SVG backend so
``repro.bench.figures`` can emit figure files with zero extra
dependencies.  Supports exactly what the paper's figures need: grouped
bar charts with optional log scale (Figs. 6–8, 10–12), line/step charts
(Figs. 4, 9), and grouped scaling bars (Fig. 13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["SvgCanvas", "grouped_bar_chart", "line_chart"]

#: categorical palette (colorblind-safe-ish)
PALETTE = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
]


def _esc(s: str) -> str:
    return (
        s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class SvgCanvas:
    """Tiny element-list SVG builder."""

    width: int
    height: int
    elements: list[str] = field(default_factory=list)

    def line(self, x1, y1, x2, y2, *, stroke="#333", width=1.0, dash=None):
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{d}/>'
        )

    def polyline(self, points, *, stroke="#4477aa", width=1.5):
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.elements.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def rect(self, x, y, w, h, *, fill="#4477aa", stroke="none"):
        self.elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def text(self, x, y, s, *, size=11, anchor="middle", rotate=None, fill="#222"):
        t = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self.elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="Helvetica,Arial,sans-serif"{t}>{_esc(str(s))}</text>'
        )

    def render(self) -> str:
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


def _log_ticks(lo: float, hi: float) -> list[float]:
    lo_e = math.floor(math.log10(lo))
    hi_e = math.ceil(math.log10(hi))
    return [10.0**e for e in range(lo_e, hi_e + 1)]


def _fmt_tick(v: float) -> str:
    if v >= 1 or v <= 0:
        if v >= 1000 or (v > 0 and v < 0.01):
            return f"1e{int(math.log10(v))}" if v > 0 else "0"
        return f"{v:g}"
    return f"1e{int(round(math.log10(v)))}"


def grouped_bar_chart(
    categories: Sequence[str],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    ylabel: str = "",
    log: bool = False,
    width: int = 760,
    height: int = 320,
) -> str:
    """Render a grouped bar chart; returns the SVG text."""
    if not categories or not series:
        raise ValueError("need at least one category and one series")
    margin_l, margin_r, margin_t, margin_b = 64, 12, 30, 58
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    values = [v for vs in series.values() for v in vs]
    positive = [v for v in values if v > 0]
    if log and not positive:
        log = False
    if log:
        lo = min(positive) / 1.5
        hi = max(positive) * 1.5

        def y_of(v: float) -> float:
            if v <= 0:
                return margin_t + plot_h
            frac = (math.log10(v) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
            return margin_t + plot_h * (1 - frac)

        ticks = [t for t in _log_ticks(lo, hi) if lo <= t <= hi]
    else:
        hi = max(values + [0.0]) * 1.1 or 1.0
        lo = 0.0

        def y_of(v: float) -> float:
            return margin_t + plot_h * (1 - v / hi)

        ticks = [hi * i / 4 for i in range(5)]

    svg = SvgCanvas(width, height)
    if title:
        svg.text(width / 2, 18, title, size=13)
    # axes + ticks
    svg.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    svg.line(margin_l, margin_t + plot_h, margin_l + plot_w, margin_t + plot_h)
    for t in ticks:
        y = y_of(t)
        svg.line(margin_l - 3, y, margin_l, y)
        svg.line(margin_l, y, margin_l + plot_w, y, stroke="#eee")
        svg.text(margin_l - 6, y + 3, _fmt_tick(t), size=9, anchor="end")
    if ylabel:
        svg.text(14, margin_t + plot_h / 2, ylabel, size=10, rotate=-90)

    n_cat = len(categories)
    n_ser = len(series)
    group_w = plot_w / n_cat
    bar_w = max(1.0, group_w * 0.8 / n_ser)
    for ci, cat in enumerate(categories):
        gx = margin_l + ci * group_w
        svg.text(gx + group_w / 2, margin_t + plot_h + 14, cat, size=9)
        for si, (name, vs) in enumerate(series.items()):
            v = vs[ci]
            x = gx + group_w * 0.1 + si * bar_w
            y = y_of(max(v, lo if log else 0.0))
            svg.rect(
                x, y, bar_w * 0.92, margin_t + plot_h - y,
                fill=PALETTE[si % len(PALETTE)],
            )
    # legend
    lx = margin_l
    ly = height - 18
    for si, name in enumerate(series):
        svg.rect(lx, ly - 8, 10, 10, fill=PALETTE[si % len(PALETTE)])
        svg.text(lx + 14, ly, name, size=9, anchor="start")
        lx += 16 + 7 * len(name)
    return svg.render()


def line_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 680,
    height: int = 300,
) -> str:
    """Render a multi-series line chart; returns the SVG text."""
    if not series:
        raise ValueError("need at least one series")
    margin_l, margin_r, margin_t, margin_b = 56, 12, 30, 52
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_hi = max(all_x) or 1.0
    y_hi = max(all_y) * 1.08 or 1.0

    def pt(x: float, y: float) -> tuple[float, float]:
        return (
            margin_l + plot_w * (x / x_hi),
            margin_t + plot_h * (1 - y / y_hi),
        )

    svg = SvgCanvas(width, height)
    if title:
        svg.text(width / 2, 18, title, size=13)
    svg.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    svg.line(margin_l, margin_t + plot_h, margin_l + plot_w, margin_t + plot_h)
    for i in range(5):
        fy = y_hi * i / 4
        _, y = pt(0, fy)
        svg.line(margin_l - 3, y, margin_l, y)
        svg.text(margin_l - 6, y + 3, f"{fy:g}", size=9, anchor="end")
        fx = x_hi * i / 4
        x, _ = pt(fx, 0)
        svg.line(x, margin_t + plot_h, x, margin_t + plot_h + 3)
        svg.text(x, margin_t + plot_h + 14, f"{fx:.3g}", size=9)
    if ylabel:
        svg.text(14, margin_t + plot_h / 2, ylabel, size=10, rotate=-90)
    if xlabel:
        svg.text(margin_l + plot_w / 2, height - 26, xlabel, size=10)
    for si, (name, (xs, ys)) in enumerate(series.items()):
        svg.polyline(
            [pt(x, y) for x, y in zip(xs, ys)],
            stroke=PALETTE[si % len(PALETTE)],
        )
    lx = margin_l
    ly = height - 8
    for si, name in enumerate(series):
        svg.line(lx, ly - 4, lx + 12, ly - 4, stroke=PALETTE[si % len(PALETTE)], width=2)
        svg.text(lx + 16, ly, name, size=9, anchor="start")
        lx += 22 + 7 * len(name)
    return svg.render()
