"""Experiment: Fig. 13 — multi-GPU scalability (1/2/4/8 V100s).

The paper's multi-GPU GMBE shares the ``processing_v`` atomic counter
system-wide (atomicInc_system) while keeping task queues per device;
per-GPU finish times land close together, so scaling is near-linear on
BookCrossing and Github.  This driver reports total and per-GPU times
for 1, 2, 4 and 8 simulated V100s on the BX and GH analogs.

Device scaling note: the analogs are ~100× smaller than the paper's
datasets, so a full V100 (1,280 resident warps) is never saturated by
one analog and adding GPUs would show nothing.  The default device here
is a V100 scaled to 10 SMs — same architecture, capacity matched to the
analog scale — which restores the paper's regime of tasks ≫ warps.
Pass ``device=V100`` to use the full board.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets import load
from ..gpusim.device import DeviceSpec, V100
from .common import DEVICE_SCALE, run_algorithm, scale_device
from .tables import format_si, format_table

__all__ = [
    "Fig13Row",
    "V100_SCALED",
    "experiment_fig13",
    "print_fig13",
    "DEFAULT_FIG13_CODES",
    "GPU_COUNTS",
]

DEFAULT_FIG13_CODES = ["BX", "GH"]
GPU_COUNTS = [1, 2, 4, 8]

#: V100 with SM count scaled to the analogs' dataset scale.
V100_SCALED = scale_device(V100, DEVICE_SCALE)


@dataclass(frozen=True)
class Fig13Row:
    code: str
    n_gpus: int
    total_s: float
    per_gpu_s: tuple[float, ...]

    @property
    def imbalance(self) -> float:
        """max/mean per-GPU finish time (1.0 = perfectly even)."""
        mean = sum(self.per_gpu_s) / len(self.per_gpu_s)
        return max(self.per_gpu_s) / mean if mean > 0 else 1.0


def experiment_fig13(
    *,
    scale: float = 1.0,
    codes: list[str] | None = None,
    gpu_counts: list[int] | None = None,
    device: DeviceSpec = V100_SCALED,
) -> list[Fig13Row]:
    """Measure Fig. 13's multi-GPU scaling rows."""
    rows: list[Fig13Row] = []
    for code in codes if codes is not None else DEFAULT_FIG13_CODES:
        graph = load(code, scale=scale)
        counts = set()
        for n in gpu_counts if gpu_counts is not None else GPU_COUNTS:
            run = run_algorithm(
                "GMBE", graph, device=device, n_gpus=n, cache_key=(code, scale)
            )
            counts.add(run.n_maximal)
            rows.append(
                Fig13Row(
                    code=code,
                    n_gpus=n,
                    total_s=run.sim_seconds,
                    per_gpu_s=tuple(run.result.extras["per_gpu_seconds"]),
                )
            )
        assert len(counts) == 1
    return rows


def print_fig13(rows: list[Fig13Row]) -> str:
    """Print the Fig. 13 table; returns the rendered text."""
    out = format_table(
        ["Dataset", "GPUs", "total", "per-GPU finish times", "imbalance"],
        [
            (
                r.code,
                r.n_gpus,
                format_si(r.total_s) + "s",
                " ".join(format_si(t) for t in r.per_gpu_s),
                f"{r.imbalance:.2f}",
            )
            for r in rows
        ],
        title="Fig. 13: multi-GPU scalability on V100s (simulated seconds)",
    )
    print(out)
    return out
