"""Sharded multi-worker enumeration for graphs one device can't hold.

The subsystem splits one enumeration into N independent *shard-jobs* by
partitioning root-task ownership (:class:`ShardPlan`), runs each shard
as an ordinary kernel run restricted to its owned roots
(:class:`ShardRunner`), and fans the shards over a worker pool and/or a
simulated cluster, stream-merging the per-shard results into one
duplicate-free ordered set (:class:`ShardCoordinator`).  DESIGN.md §11
has the architecture and the ownership/disjointness proof sketch.
"""

from .coordinator import (
    ShardCoordinator,
    ShardMergeError,
    ShardReport,
    iter_merged,
    merge_shard_results,
    merge_shard_results_to_store,
)
from .degraded import DegradedShardRun, PartialResult, ResumeHandle
from .plan import BALANCERS, ShardPlan, root_weights
from .runner import ShardResult, ShardRunner, run_shard_task

__all__ = [
    "BALANCERS",
    "DegradedShardRun",
    "PartialResult",
    "ResumeHandle",
    "ShardCoordinator",
    "ShardMergeError",
    "ShardPlan",
    "ShardReport",
    "ShardResult",
    "ShardRunner",
    "iter_merged",
    "merge_shard_results",
    "merge_shard_results_to_store",
    "root_weights",
    "run_shard_task",
]
