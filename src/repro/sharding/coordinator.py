"""Fan a graph too big for one device over N shard-jobs and merge.

:class:`ShardCoordinator` is the orchestration layer of the sharding
subsystem: build (or accept) a :class:`~repro.sharding.ShardPlan`,
dispatch one :class:`~repro.sharding.ShardRunner` per shard over a
:class:`~repro.parallel.WorkerPool`, and stream-merge the per-shard
sorted result lists into one duplicate-free ordered set.

Placement is simulated two ways:

- **dedicated** (default): every shard runs on its own copy of
  ``device`` — the fleet makespan is the max shard time.  This is the
  "N machines, each holding the graph" deployment the plan's balancer
  optimizes for.
- **cluster**: with a :class:`~repro.gmbe.ClusterSpec`, shards are
  placed round-robin over the cluster's GPUs, each paying that GPU's
  counter-claim surcharge; GPUs run their shards serially, so the
  makespan is the max *per-GPU sum*.

Either way the *results* are placement-independent — only the modeled
time changes.

Fault tolerance: each shard checkpoints to its own plan-signature-named
file.  A shard that crashes (or is halted by ``halt_after_tasks``)
leaves its snapshot behind; completed shards erase theirs — so simply
running the coordinator again resumes exactly the crashed shards and
re-enumerates nothing that already finished *within* a shard (the
kernel's emission ledger replays emitted bicliques from the snapshot).
"""

from __future__ import annotations

import contextvars
import heapq
import os
from concurrent.futures import FIRST_COMPLETED, CancelledError
from concurrent.futures import wait as cf_wait
from dataclasses import dataclass, field
from typing import Mapping

from ..core.bicliques import Biclique, Counters
from ..gmbe.cluster import ClusterSpec
from ..gmbe.config import GMBEConfig
from ..gpusim.device import A100, DeviceSpec
from ..graph.bipartite import BipartiteGraph
from ..parallel import (
    PoolBrokenError,
    ProcessWorkerPool,
    SupervisorPolicy,
    WorkerPool,
)
from ..telemetry import (
    NULL_TRACER,
    FlightRecorder,
    TelemetrySnapshot,
    TraceContext,
    current_telemetry,
    reparent_records,
    run_with_telemetry,
    write_flight_record,
)
from .degraded import PartialResult, ResumeHandle
from .plan import ShardPlan
from .runner import (
    ShardResult,
    ShardRunner,
    run_shard_task,
    shard_checkpoint_path,
)

__all__ = [
    "ShardCoordinator",
    "ShardReport",
    "ShardMergeError",
    "iter_merged",
    "merge_shard_results",
    "merge_shard_results_to_store",
]

#: telemetry counter per pool supervision event kind (DESIGN.md §12)
_SUPERVISOR_COUNTERS = {
    "spawn": "supervisor.workers_spawned",
    "death": "supervisor.worker_deaths",
    "restart": "supervisor.worker_restarts",
    "retire": "supervisor.workers_retired",
    "broken": "supervisor.pool_broken",
}

#: ``# HELP`` text for the supervision family (Prometheus export)
_SUPERVISOR_DESCRIPTIONS = {
    "supervisor.workers_spawned":
        "worker processes spawned, including restarts",
    "supervisor.worker_deaths":
        "worker processes that died (crash, OOM, SIGKILL, hang kill)",
    "supervisor.worker_hangs":
        "deaths caused by a missed-heartbeat or task-deadline verdict",
    "supervisor.worker_restarts": "dead workers respawned under backoff",
    "supervisor.workers_retired":
        "worker slots that exhausted their restart budget",
    "supervisor.pool_broken":
        "process pools declared broken (every slot retired)",
    "supervisor.shard_failures":
        "shard attempts lost to a dead or hung worker",
    "supervisor.shard_retries": "failed shard attempts re-dispatched",
    "supervisor.shards_quarantined":
        "shards abandoned after exhausting their attempt budget",
    "supervisor.jobs_degraded":
        "sharded jobs that returned a partial result",
}


def _register_supervisor_metrics(registry) -> None:
    """Pre-create the ``supervisor.*`` counters with their HELP text."""
    for name, description in _SUPERVISOR_DESCRIPTIONS.items():
        registry.counter(name, description=description)


class ShardMergeError(RuntimeError):
    """A biclique surfaced from more than one shard.

    The ownership rule makes this impossible for results produced by
    this package — seeing it means shards ran under *different* plans
    (or orders), e.g. mixed checkpoint generations.  Enumeration output
    must never be silently deduplicated, so the merge refuses instead.
    """


def iter_merged(results: list[ShardResult]):
    """K-way stream-merge per-shard sorted lists, yielding in order.

    Raises :class:`ShardMergeError` on any duplicate — disjoint
    ownership means equal bicliques from two shards indicate a plan
    mismatch, not a benign overlap.  A generator so consumers that
    compress or page (see :func:`merge_shard_results_to_store`) never
    hold the merged list.
    """
    def _stream(result: ShardResult):
        for b in result.bicliques:
            yield (b, result.shard_id)

    streams = [
        _stream(r) for r in sorted(results, key=lambda r: r.shard_id)
    ]
    prev: tuple[Biclique, int] | None = None
    for item, shard_id in heapq.merge(*streams, key=lambda t: t[0]):
        if prev is not None and item == prev[0]:
            raise ShardMergeError(
                f"duplicate biclique L={item.left} R={item.right} emitted "
                f"by shards {prev[1]} and {shard_id} — the shards did not "
                f"run under one plan (ownership sets must be disjoint)"
            )
        yield item
        prev = (item, shard_id)


def merge_shard_results(results: list[ShardResult]) -> list[Biclique]:
    """K-way stream-merge per-shard sorted lists into one ordered list."""
    return list(iter_merged(results))


def merge_shard_results_to_store(results: list[ShardResult], **kwargs):
    """Stream-merge straight into a compressed result store.

    The shard streams feed a :class:`~repro.store.ResultStoreWriter`
    one biclique at a time, so peak resident memory is the per-shard
    inputs plus O(one path) of encoder state — never the merged list.
    ``kwargs`` pass through to the writer (``block_records``,
    ``telemetry``).
    """
    from ..store import ResultStoreWriter

    writer = ResultStoreWriter(**kwargs)
    for b in iter_merged(results):
        writer.append(b.left, b.right)
    return writer.finish()


@dataclass
class ShardReport:
    """Aggregate outcome of one sharded enumeration."""

    #: complete-run marker (contrast :class:`PartialResult`)
    is_partial = False

    plan: ShardPlan
    shards: list[ShardResult]
    bicliques: list[Biclique]
    counters: Counters
    #: Fleet makespan under the chosen placement (seconds, simulated).
    sim_time: float
    #: GPU index each shard ran on (dedicated placement: shard i → i).
    placement: list[int]
    #: True when any shard halted early — the merged set is then a
    #: resumable *partial* result, not the full enumeration.
    halted: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def n_maximal(self) -> int:
        return len(self.bicliques)


class ShardCoordinator:
    """Plan → fan out → merge one sharded enumeration.

    Parameters
    ----------
    graph, n_shards:
        The input and how many ways to split its root-task space.
    config:
        Kernel knobs shared by every shard, or the string ``"tuned"``
        to resolve a per-graph tuned config from the tuning store
        (order is re-pinned to the plan's in either case).
    balancer:
        Ownership assignment strategy (:data:`~repro.sharding.BALANCERS`).
    plan:
        Pre-built plan to reuse (skips building; must match ``graph``
        and ``n_shards``).
    device, n_gpus_per_shard:
        Dedicated-placement hardware: each shard gets its own
        ``device`` with this many GPUs.
    cluster:
        Cluster placement instead: shards round-robin over the
        cluster's GPUs (one GPU per shard, plus that GPU's
        counter-claim surcharge), serial per GPU.
    pool, n_workers:
        Dispatch substrate.  ``pool`` is the string ``"thread"``
        (default: a private :class:`WorkerPool`) or ``"process"`` (a
        private supervised :class:`~repro.parallel.ProcessWorkerPool` —
        real crash isolation and wall-clock parallelism), or an
        external pool object of either kind to share; ``n_workers``
        sizes a private pool.  Process-backed dispatch adds per-shard
        retry: a shard whose worker dies is resubmitted (resuming from
        its checkpoint when ``checkpoint_dir`` is set) up to
        ``max_shard_attempts`` times, then **quarantined** — and the
        run returns a :class:`~repro.sharding.PartialResult` instead of
        raising, with resume handles for the lost shards.
    max_shard_attempts:
        Attempt budget per shard under process dispatch (>= 1); thread
        dispatch keeps the historical fail-fast behavior.
    supervisor_policy:
        Heartbeat/deadline/restart knobs for a private process pool
        (see :class:`~repro.parallel.SupervisorPolicy`).
    chaos_kills:
        Test-only fault injection, keyed by shard id:
        ``{shard: (n_attempts, delay_s)}`` SIGKILLs the worker running
        that shard ``delay_s`` seconds into each of its first
        ``n_attempts`` attempts.  The chaos harness for the supervision
        tests — never set it outside one.
    checkpoint_dir, checkpoint_every:
        Enable per-shard checkpointing under this directory.
    fault_plans, halt_after_tasks:
        Per-shard robustness injection, keyed by shard id (shards not
        in the mapping run clean).
    tuning_store:
        Store for ``config="tuned"`` resolution (default store if None).
    telemetry:
        Explicit telemetry; defaults to ambient discovery.  Thread and
        process dispatch honor the **same correlation contract**: every
        shard's ``sim.kernel``/``sim.phase.*``/fault records share the
        job's ``trace_id`` and ``job_id`` and sit under a per-shard
        span in the ``shard.job`` tree.  Thread dispatch gets this by
        shipping the contextvars context into the pool; process
        dispatch ships a picklable
        :class:`~repro.telemetry.TraceContext` into each worker, which
        records into a local buffering telemetry and returns picklable
        snapshots (incrementally on heartbeats, finally on the result)
        that the coordinator re-parents under its per-attempt
        ``shard.run``/``shard.retry`` spans and folds into the parent
        registry — plus parent-side ``supervisor.*`` counters.
    flight_dir:
        When set, a quarantined (degraded) run dumps its flight record
        — merged span tree, last-N records per worker including a dead
        worker's final heartbeat flush, supervisor verdicts, attempt
        ledger — to ``flight-{job}.json`` in this directory (see
        :mod:`repro.telemetry.flight`).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        n_shards: int,
        *,
        config: GMBEConfig | str | None = None,
        balancer: str = "greedy",
        plan: ShardPlan | None = None,
        device: DeviceSpec = A100,
        n_gpus_per_shard: int = 1,
        cluster: ClusterSpec | None = None,
        pool: WorkerPool | ProcessWorkerPool | str | None = None,
        n_workers: int | None = None,
        max_shard_attempts: int = 3,
        supervisor_policy: SupervisorPolicy | None = None,
        chaos_kills: Mapping[int, tuple[int, float]] | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 256,
        fault_plans: Mapping[int, object] | None = None,
        halt_after_tasks: Mapping[int, int] | None = None,
        tuning_store=None,
        telemetry=None,
        flight_dir: str | None = None,
    ) -> None:
        self.graph = graph
        self.n_shards = n_shards
        self._config_spec = config
        self.balancer = balancer
        self.device = device
        self.n_gpus_per_shard = n_gpus_per_shard
        self.cluster = cluster
        if isinstance(pool, str):
            if pool not in ("thread", "process"):
                raise ValueError(
                    f"pool must be 'thread', 'process', or a pool object, "
                    f"got {pool!r}"
                )
            self._pool = None
            self.pool_backend = pool
        else:
            self._pool = pool
            self.pool_backend = (
                "process" if isinstance(pool, ProcessWorkerPool) else "thread"
            )
        self.n_workers = n_workers
        if max_shard_attempts < 1:
            raise ValueError(
                f"max_shard_attempts must be >= 1, got {max_shard_attempts}"
            )
        self.max_shard_attempts = max_shard_attempts
        self.supervisor_policy = supervisor_policy
        self.chaos_kills = dict(chaos_kills) if chaos_kills else {}
        if self.chaos_kills and self.pool_backend != "process":
            raise ValueError(
                "chaos_kills requires the process pool backend"
            )
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.fault_plans = dict(fault_plans) if fault_plans else {}
        self.halt_after_tasks = (
            dict(halt_after_tasks) if halt_after_tasks else {}
        )
        self.tuning_store = tuning_store
        self.telemetry = telemetry
        self.flight_dir = flight_dir
        if plan is not None:
            plan.validate_against(graph)
            if plan.n_shards != n_shards:
                raise ValueError(
                    f"plan has {plan.n_shards} shards, coordinator was "
                    f"asked for {n_shards}"
                )
        self._plan = plan

    # ------------------------------------------------------------------
    def _resolve_config(self, telemetry) -> GMBEConfig:
        """Materialize the shared shard config (handles ``"tuned"``)."""
        spec = self._config_spec
        if spec is None:
            return GMBEConfig()
        if isinstance(spec, str):
            if spec != "tuned":
                raise ValueError(
                    f"config must be a GMBEConfig or the string 'tuned', "
                    f"got {spec!r}"
                )
            from ..tuning import resolve_config

            resolved, _hit = resolve_config(
                self.graph,
                store=self.tuning_store,
                device=self.cluster.device if self.cluster else self.device,
                n_gpus=1 if self.cluster else self.n_gpus_per_shard,
                telemetry=telemetry,
            )
            return resolved
        return spec

    def _placement(self) -> tuple[list[int], list[DeviceSpec], list[float | None], list[int]]:
        """Per-shard (gpu index, device, surcharge, n_gpus)."""
        if self.cluster is None:
            return (
                list(range(self.n_shards)),
                [self.device] * self.n_shards,
                [None] * self.n_shards,
                [self.n_gpus_per_shard] * self.n_shards,
            )
        surcharges = self.cluster.surcharges()
        gpu_of = [i % self.cluster.n_gpus for i in range(self.n_shards)]
        return (
            gpu_of,
            [self.cluster.device] * self.n_shards,
            [surcharges[g] for g in gpu_of],
            [1] * self.n_shards,
        )

    def _makespan(self, results: list[ShardResult], placement: list[int]) -> float:
        """Fleet time under the placement (max per-GPU serial sum)."""
        per_gpu: dict[int, float] = {}
        for r, gpu in zip(results, placement):
            per_gpu[gpu] = per_gpu.get(gpu, 0.0) + r.sim_time
        return max(per_gpu.values(), default=0.0)

    # ------------------------------------------------------------------
    def plan_shards(self) -> ShardPlan:
        """Build (or return the cached) ownership plan."""
        if self._plan is None:
            base = self._config_spec
            order = (
                base.order
                if isinstance(base, GMBEConfig)
                else GMBEConfig().order
            )
            self._plan = ShardPlan.build(
                self.graph,
                self.n_shards,
                order=order,
                balancer=self.balancer,
            )
        return self._plan

    def run(self) -> ShardReport:
        """Execute every shard and merge; see :class:`ShardReport`."""
        telemetry = (
            self.telemetry if self.telemetry is not None
            else current_telemetry()
        )
        if telemetry is not None and not telemetry.enabled:
            telemetry = None
        tracer = telemetry.tracer if telemetry is not None else NULL_TRACER

        with tracer.span(
            "shard.job", n_shards=self.n_shards, balancer=self.balancer
        ) as job_span:
            with tracer.span("shard.plan") as plan_span:
                plan = self.plan_shards()
                config = self._resolve_config(telemetry)
                if config.order != plan.order:
                    # A tuned entry may carry any order; ownership was
                    # computed under the plan's, which must win.
                    config = config.with_(order=plan.order)
                if telemetry is not None:
                    plan_span.set_attr("n_roots", plan.n_roots)
                    plan_span.set_attr("imbalance", round(plan.imbalance(), 4))
                    plan_span.set_attr("signature", plan.signature()[:16])

            gpu_of, devices, surcharges, gpu_counts = self._placement()
            if self.pool_backend == "process":
                results, attempts, quarantine, recorder = (
                    self._dispatch_supervised(
                        plan, config, devices, surcharges, gpu_counts,
                        telemetry, tracer, job_span,
                    )
                )
                if quarantine:
                    return self._degrade(
                        plan, config, results, attempts, quarantine,
                        gpu_of, telemetry, tracer, job_span, recorder,
                    )
                extra_dispatch = {
                    "shard_attempts": dict(attempts),
                    "pool_stats": getattr(self, "_last_pool_stats", {}),
                }
            else:
                results = self._dispatch_threaded(
                    plan, config, devices, surcharges, gpu_counts, telemetry
                )
                extra_dispatch = {}

            with tracer.span("shard.merge") as merge_span:
                bicliques = merge_shard_results(results)
                if telemetry is not None:
                    merge_span.set_attr("n_maximal", len(bicliques))

            counters = Counters()
            for r in results:
                counters.merge(r.counters)
            halted = any(r.halted for r in results)
            makespan = self._makespan(results, gpu_of)
            if telemetry is not None:
                job_span.set_attr("n_maximal", len(bicliques))
                job_span.set_attr("halted", halted)
                job_span.set_attr("sim_seconds", makespan)
                registry = telemetry.registry
                registry.counter("shard.jobs").add(1)
                registry.counter("shard.fanout").add(self.n_shards)
                if halted:
                    registry.counter("shard.jobs.halted").add(1)

        return ShardReport(
            plan=plan,
            shards=results,
            bicliques=bicliques,
            counters=counters,
            sim_time=makespan,
            placement=gpu_of,
            halted=halted,
            extras={
                "per_shard_seconds": [r.sim_time for r in results],
                "imbalance": plan.imbalance(),
                "plan_signature": plan.signature(),
                "resumed_shards": [r.shard_id for r in results if r.resumed],
                "config": config,
                **extra_dispatch,
            },
        )

    # ------------------------------------------------------------------
    # Dispatch backends
    # ------------------------------------------------------------------
    def _dispatch_threaded(
        self, plan, config, devices, surcharges, gpu_counts, telemetry
    ) -> list[ShardResult]:
        """Historical thread fan-out: fail-fast, shared interpreter."""
        runners = [
            ShardRunner(
                self.graph,
                plan,
                i,
                config=config,
                device=devices[i],
                n_gpus=gpu_counts[i],
                root_pull_surcharge=surcharges[i],
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_every=self.checkpoint_every,
                fault_plan=self.fault_plans.get(i),
                halt_after_tasks=self.halt_after_tasks.get(i),
                telemetry=telemetry,
            )
            for i in range(self.n_shards)
        ]
        pool = self._pool
        own_pool = pool is None
        if own_pool:
            pool = WorkerPool(
                self.n_workers or min(self.n_shards, 8),
                thread_name_prefix="repro-shard",
            )
        try:
            futures = []
            for i, runner in enumerate(runners):
                label = f"shard {i}/{self.n_shards}"
                if telemetry is not None:
                    # Ship a copy of the coordinator context across
                    # the thread hop so shard.run spans nest under
                    # shard.job (same pattern as broker dispatch).
                    ctx = contextvars.copy_context()
                    futures.append(pool.submit(
                        ctx.run, run_with_telemetry, telemetry,
                        runner.run, worker_label=label,
                    ))
                else:
                    futures.append(
                        pool.submit(runner.run, worker_label=label)
                    )
            return [f.result() for f in futures]
        finally:
            if own_pool:
                pool.shutdown()

    def _pool_event_recorder(self, telemetry, flight=None):
        """Map pool supervision events onto ``supervisor.*`` counters
        (and into the flight recorder's verdict log, when one exists)."""
        if telemetry is None and flight is None:
            return None
        registry = telemetry.registry if telemetry is not None else None
        tracer = telemetry.tracer if telemetry is not None else NULL_TRACER

        def record(kind: str, info: dict) -> None:
            if registry is not None:
                name = _SUPERVISOR_COUNTERS.get(kind)
                if name is not None:
                    registry.counter(name).add(1)
                if (kind == "death"
                        and info.get("reason") in ("hung", "deadline")):
                    registry.counter("supervisor.worker_hangs").add(1)
            if kind == "restart":
                tracer.event("worker.restart", **info)
            if flight is not None:
                flight.note_pool_event(kind, info)

        return record

    def _dispatch_supervised(
        self, plan, config, devices, surcharges, gpu_counts,
        telemetry, tracer, job_span,
    ):
        """Process fan-out with per-shard retry and quarantine.

        Returns ``(results, attempts, quarantine, recorder)`` where
        ``results`` maps shard id → :class:`ShardResult` for every shard
        that finished (as a list, shard-ordered), ``attempts`` counts
        attempts per shard, ``quarantine`` maps the shards that
        exhausted their budget to their last error string, and
        ``recorder`` is the job's :class:`FlightRecorder` (or None).

        Telemetry: the coordinator opens one *detached* span per
        dispatched attempt — ``shard.run`` for the first, ``shard.retry``
        for re-dispatches — closed when that future resolves, so a
        SIGKILLed attempt still leaves an ``status="error"`` span.  A
        :class:`TraceContext` naming that span travels into the worker;
        the snapshots the worker sends back (heartbeat piggyback + final
        flush on the result) are folded *after* the dispatch loop in
        shard/attempt/seq order, so the merged registry and trace are
        identical regardless of which worker finished first.
        """
        registry = telemetry.registry if telemetry is not None else None
        capture = telemetry is not None
        if registry is not None:
            _register_supervisor_metrics(registry)
        recorder = None
        if capture or self.flight_dir is not None:
            recorder = FlightRecorder(
                job_id=getattr(job_span, "job_id", None),
                trace_id=getattr(job_span, "trace_id", None),
            )
        pool = self._pool
        own_pool = pool is None
        if own_pool:
            pool = ProcessWorkerPool(
                self.n_workers
                or min(self.n_shards, os.cpu_count() or 1, 8),
                policy=self.supervisor_policy,
                on_event=self._pool_event_recorder(telemetry, recorder),
            )
        attempts = {i: 0 for i in range(self.n_shards)}
        quarantine: dict[int, str] = {}
        results: dict[int, ShardResult] = {}
        pending: dict = {}
        #: (shard, attempt) -> open coordinator-side Span
        attempt_spans: dict[tuple[int, int], object] = {}
        #: (shard, attempt) -> heartbeat-flushed TelemetrySnapshots
        flushes: dict[tuple[int, int], list] = {}
        #: (shard, attempt) -> the final flush off the ShardResult
        finals: dict[tuple[int, int], TelemetrySnapshot] = {}

        def on_aux(worker_id: int, payload) -> None:
            # Monitor-thread context: collect only; folding happens on
            # the coordinator thread after dispatch completes.
            if isinstance(payload, TelemetrySnapshot):
                key = (payload.shard_id, payload.attempt)
                flushes.setdefault(key, []).append(payload)

        aux_installed = False
        prev_aux = None
        if capture and hasattr(pool, "on_aux"):
            prev_aux = pool.on_aux
            pool.on_aux = on_aux
            aux_installed = True

        def submit(i: int, prior_error: str | None = None) -> None:
            attempts[i] += 1
            att = attempts[i]
            kwargs = dict(
                config=config,
                device=devices[i],
                n_gpus=gpu_counts[i],
                root_pull_surcharge=surcharges[i],
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_every=self.checkpoint_every,
                fault_plan=self.fault_plans.get(i),
                halt_after_tasks=self.halt_after_tasks.get(i),
            )
            chaos = self.chaos_kills.get(i)
            if chaos is not None and att <= chaos[0]:
                kwargs["chaos_kill_after"] = chaos[1]
            if capture:
                span = tracer.begin_span(
                    "shard.run" if att == 1 else "shard.retry",
                    parent=job_span,
                    shard=i,
                    attempt=att,
                    dispatch="process",
                )
                if prior_error is not None:
                    span.set_attr("error", prior_error)
                attempt_spans[(i, att)] = span
                kwargs["trace"] = TraceContext(
                    trace_id=span.trace_id,
                    parent_span_id=span.span_id,
                    job_id=span.job_id,
                )
                kwargs["attempt"] = att
            future = pool.submit(
                run_shard_task, self.graph, plan, i,
                worker_label=f"shard {i}/{self.n_shards}",
                **kwargs,
            )
            pending[future] = i

        try:
            for i in range(self.n_shards):
                submit(i)
            while pending:
                done, _ = cf_wait(
                    set(pending), return_when=FIRST_COMPLETED
                )
                for future in done:
                    i = pending.pop(future)
                    att = attempts[i]
                    span = attempt_spans.get((i, att))
                    try:
                        result = future.result()
                    except (Exception, CancelledError) as exc:
                        error = f"{type(exc).__name__}: {exc}"
                        pool_gone = isinstance(exc, PoolBrokenError)
                        if span is not None:
                            tracer.finish_span(
                                span, status="error", error=error
                            )
                        if recorder is not None:
                            recorder.note_attempt(
                                i, att, status="error", error=error
                            )
                        if registry is not None:
                            registry.counter(
                                "supervisor.shard_failures"
                            ).add(1)
                        dead_end = pool_gone or pool.broken
                        if (not dead_end
                                and att < self.max_shard_attempts):
                            # The shard resumes from its own checkpoint
                            # (if any) on a restarted worker; the pool
                            # already replaced the dead process
                            # underneath us.
                            submit(i, prior_error=error)
                            if registry is not None:
                                registry.counter(
                                    "supervisor.shard_retries"
                                ).add(1)
                        else:
                            quarantine[i] = error
                            if registry is not None:
                                registry.counter(
                                    "supervisor.shards_quarantined"
                                ).add(1)
                        continue
                    results[i] = result
                    final = result.extras.pop("telemetry", None)
                    if isinstance(final, TelemetrySnapshot):
                        finals[(i, att)] = final
                    if span is not None:
                        span.set_attr("n_maximal", result.n_maximal)
                        span.set_attr("resumed", result.resumed)
                        span.set_attr("halted", result.halted)
                        tracer.finish_span(span)
                    if recorder is not None:
                        recorder.note_attempt(
                            i, att, status="ok",
                            pid=(final.pid
                                 if isinstance(final, TelemetrySnapshot)
                                 else None),
                        )
        finally:
            if aux_installed:
                pool.on_aux = prev_aux
            if own_pool:
                pool.shutdown()
            self._last_pool_stats = (
                pool.stats() if hasattr(pool, "stats") else {}
            )
        if capture or recorder is not None:
            self._fold_worker_telemetry(
                telemetry, recorder, job_span, attempt_spans,
                flushes, finals,
            )
        ordered = [results[i] for i in sorted(results)]
        return ordered, attempts, quarantine, recorder

    def _fold_worker_telemetry(
        self, telemetry, recorder, job_span, attempt_spans, flushes,
        finals,
    ) -> None:
        """Re-parent and merge everything the workers sent back.

        Runs once, after the dispatch loop, iterating attempts in
        (shard, attempt, seq) order — worker *completion* order cannot
        influence the merged registry or the record stream.  Records
        from every attempt (including dead ones) are re-parented into
        the trace; registry dumps are folded only from *final* flushes
        — a dead attempt's counters stay out of the parent registry
        (its checkpoint-resumed retry partially replays that work) but
        survive in the flight record via its last heartbeat flush.
        """
        registry = telemetry.registry if telemetry is not None else None
        trace_id = getattr(job_span, "trace_id", None)
        job_id = getattr(job_span, "job_id", None)
        keys = sorted(set(attempt_spans) | set(flushes) | set(finals))
        for key in keys:
            shard_id, attempt = key
            span = attempt_spans.get(key)
            parent_sid = (
                span.span_id if span is not None
                else getattr(job_span, "span_id", None)
            )
            if recorder is not None and span is not None:
                recorder.add_record(span.to_dict())
            snaps = sorted(
                list(flushes.get(key, ())), key=lambda s: s.seq
            )
            final = finals.get(key)
            if final is not None:
                snaps.append(final)
            dropped = 0
            for snap in snaps:
                reparented = reparent_records(
                    snap.records,
                    trace_id=trace_id,
                    parent_span_id=parent_sid,
                    job_id=job_id,
                    prefix=f"s{shard_id}a{attempt}:",
                )
                if telemetry is not None:
                    telemetry.ingest(reparented)
                if recorder is not None:
                    recorder.add_snapshot(snap, records=reparented)
                dropped = snap.dropped
            if registry is not None:
                if final is not None and final.metrics:
                    registry.merge(final.metrics)
                if dropped:
                    registry.counter(
                        "telemetry.worker.dropped",
                        description=(
                            "records lost to worker-side ring overflow "
                            "before they could be flushed"
                        ),
                    ).add(dropped)

    def _degrade(
        self, plan, config, completed, attempts, quarantine,
        gpu_of, telemetry, tracer, job_span, recorder=None,
    ) -> PartialResult:
        """Build the explicit partial outcome of a quarantined run.

        When telemetry (or a ``flight_dir``) is active, the flight
        recorder's black box is attached to ``extras["flight"]`` —
        merged span tree, each worker's last flushed records, supervisor
        verdicts, and the attempt ledger — and additionally written to
        ``flight-{job}.json`` under ``self.flight_dir`` when set
        (``extras["flight_path"]``).
        """
        with tracer.span("shard.merge", partial=True) as merge_span:
            bicliques = merge_shard_results(completed)
            if telemetry is not None:
                merge_span.set_attr("n_maximal", len(bicliques))
        counters = Counters()
        for r in completed:
            counters.merge(r.counters)
        placement = [gpu_of[r.shard_id] for r in completed]
        makespan = self._makespan(completed, placement)
        resume = [
            ResumeHandle(
                shard_id=i,
                checkpoint_path=shard_checkpoint_path(
                    self.checkpoint_dir, plan, i
                ),
                attempts=attempts[i],
                last_error=quarantine[i],
            )
            for i in sorted(quarantine)
        ]
        if telemetry is not None:
            registry = telemetry.registry
            registry.counter("shard.jobs").add(1)
            registry.counter("supervisor.jobs_degraded").add(1)
            job_span.set_attr("degraded", True)
            job_span.set_attr("quarantined", sorted(quarantine))
        flight_extras: dict = {}
        if recorder is not None:
            if telemetry is not None and hasattr(job_span, "to_dict"):
                # Still open (no end_s yet) — recorded so the flight's
                # span tree has its shard.job root.
                recorder.add_record(job_span.to_dict())
            flight = recorder.build(
                "quarantine",
                quarantined=sorted(quarantine),
                shard_errors=dict(quarantine),
                shard_attempts=dict(attempts),
                pool_stats=getattr(self, "_last_pool_stats", {}),
            )
            flight_extras["flight"] = flight
            if self.flight_dir is not None:
                try:
                    flight_extras["flight_path"] = write_flight_record(
                        self.flight_dir, flight
                    )
                except OSError:
                    # The black box must never turn a degraded run into
                    # a failed one; the in-memory copy is still attached.
                    pass
        return PartialResult(
            plan=plan,
            completed=completed,
            quarantined=sorted(quarantine),
            bicliques=bicliques,
            counters=counters,
            sim_time=makespan,
            placement=placement,
            resume=resume,
            halted=any(r.halted for r in completed),
            extras={
                "per_shard_seconds": [r.sim_time for r in completed],
                "imbalance": plan.imbalance(),
                "plan_signature": plan.signature(),
                "resumed_shards": [
                    r.shard_id for r in completed if r.resumed
                ],
                "config": config,
                "shard_attempts": dict(attempts),
                "shard_errors": dict(quarantine),
                "pool_stats": getattr(self, "_last_pool_stats", {}),
                **flight_extras,
            },
        )
