"""Fan a graph too big for one device over N shard-jobs and merge.

:class:`ShardCoordinator` is the orchestration layer of the sharding
subsystem: build (or accept) a :class:`~repro.sharding.ShardPlan`,
dispatch one :class:`~repro.sharding.ShardRunner` per shard over a
:class:`~repro.parallel.WorkerPool`, and stream-merge the per-shard
sorted result lists into one duplicate-free ordered set.

Placement is simulated two ways:

- **dedicated** (default): every shard runs on its own copy of
  ``device`` — the fleet makespan is the max shard time.  This is the
  "N machines, each holding the graph" deployment the plan's balancer
  optimizes for.
- **cluster**: with a :class:`~repro.gmbe.ClusterSpec`, shards are
  placed round-robin over the cluster's GPUs, each paying that GPU's
  counter-claim surcharge; GPUs run their shards serially, so the
  makespan is the max *per-GPU sum*.

Either way the *results* are placement-independent — only the modeled
time changes.

Fault tolerance: each shard checkpoints to its own plan-signature-named
file.  A shard that crashes (or is halted by ``halt_after_tasks``)
leaves its snapshot behind; completed shards erase theirs — so simply
running the coordinator again resumes exactly the crashed shards and
re-enumerates nothing that already finished *within* a shard (the
kernel's emission ledger replays emitted bicliques from the snapshot).
"""

from __future__ import annotations

import contextvars
import heapq
from dataclasses import dataclass, field
from typing import Mapping

from ..core.bicliques import Biclique, Counters
from ..gmbe.cluster import ClusterSpec
from ..gmbe.config import GMBEConfig
from ..gpusim.device import A100, DeviceSpec
from ..graph.bipartite import BipartiteGraph
from ..parallel import WorkerPool
from ..telemetry import NULL_TRACER, current_telemetry, run_with_telemetry
from .plan import ShardPlan
from .runner import ShardResult, ShardRunner

__all__ = ["ShardCoordinator", "ShardReport", "ShardMergeError", "merge_shard_results"]


class ShardMergeError(RuntimeError):
    """A biclique surfaced from more than one shard.

    The ownership rule makes this impossible for results produced by
    this package — seeing it means shards ran under *different* plans
    (or orders), e.g. mixed checkpoint generations.  Enumeration output
    must never be silently deduplicated, so the merge refuses instead.
    """


def merge_shard_results(results: list[ShardResult]) -> list[Biclique]:
    """K-way stream-merge per-shard sorted lists into one ordered set.

    Raises :class:`ShardMergeError` on any duplicate — disjoint
    ownership means equal bicliques from two shards indicate a plan
    mismatch, not a benign overlap.
    """
    def _stream(result: ShardResult):
        for b in result.bicliques:
            yield (b, result.shard_id)

    streams = [
        _stream(r) for r in sorted(results, key=lambda r: r.shard_id)
    ]
    merged: list[Biclique] = []
    prev: tuple[Biclique, int] | None = None
    for item, shard_id in heapq.merge(*streams, key=lambda t: t[0]):
        if prev is not None and item == prev[0]:
            raise ShardMergeError(
                f"duplicate biclique L={item.left} R={item.right} emitted "
                f"by shards {prev[1]} and {shard_id} — the shards did not "
                f"run under one plan (ownership sets must be disjoint)"
            )
        merged.append(item)
        prev = (item, shard_id)
    return merged


@dataclass
class ShardReport:
    """Aggregate outcome of one sharded enumeration."""

    plan: ShardPlan
    shards: list[ShardResult]
    bicliques: list[Biclique]
    counters: Counters
    #: Fleet makespan under the chosen placement (seconds, simulated).
    sim_time: float
    #: GPU index each shard ran on (dedicated placement: shard i → i).
    placement: list[int]
    #: True when any shard halted early — the merged set is then a
    #: resumable *partial* result, not the full enumeration.
    halted: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def n_maximal(self) -> int:
        return len(self.bicliques)


class ShardCoordinator:
    """Plan → fan out → merge one sharded enumeration.

    Parameters
    ----------
    graph, n_shards:
        The input and how many ways to split its root-task space.
    config:
        Kernel knobs shared by every shard, or the string ``"tuned"``
        to resolve a per-graph tuned config from the tuning store
        (order is re-pinned to the plan's in either case).
    balancer:
        Ownership assignment strategy (:data:`~repro.sharding.BALANCERS`).
    plan:
        Pre-built plan to reuse (skips building; must match ``graph``
        and ``n_shards``).
    device, n_gpus_per_shard:
        Dedicated-placement hardware: each shard gets its own
        ``device`` with this many GPUs.
    cluster:
        Cluster placement instead: shards round-robin over the
        cluster's GPUs (one GPU per shard, plus that GPU's
        counter-claim surcharge), serial per GPU.
    pool, n_workers:
        Dispatch substrate: an external :class:`WorkerPool` to share,
        or the size of the private pool to create per :meth:`run`.
    checkpoint_dir, checkpoint_every:
        Enable per-shard checkpointing under this directory.
    fault_plans, halt_after_tasks:
        Per-shard robustness injection, keyed by shard id (shards not
        in the mapping run clean).
    tuning_store:
        Store for ``config="tuned"`` resolution (default store if None).
    telemetry:
        Explicit telemetry; defaults to ambient discovery.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        n_shards: int,
        *,
        config: GMBEConfig | str | None = None,
        balancer: str = "greedy",
        plan: ShardPlan | None = None,
        device: DeviceSpec = A100,
        n_gpus_per_shard: int = 1,
        cluster: ClusterSpec | None = None,
        pool: WorkerPool | None = None,
        n_workers: int | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 256,
        fault_plans: Mapping[int, object] | None = None,
        halt_after_tasks: Mapping[int, int] | None = None,
        tuning_store=None,
        telemetry=None,
    ) -> None:
        self.graph = graph
        self.n_shards = n_shards
        self._config_spec = config
        self.balancer = balancer
        self.device = device
        self.n_gpus_per_shard = n_gpus_per_shard
        self.cluster = cluster
        self._pool = pool
        self.n_workers = n_workers
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.fault_plans = dict(fault_plans) if fault_plans else {}
        self.halt_after_tasks = (
            dict(halt_after_tasks) if halt_after_tasks else {}
        )
        self.tuning_store = tuning_store
        self.telemetry = telemetry
        if plan is not None:
            plan.validate_against(graph)
            if plan.n_shards != n_shards:
                raise ValueError(
                    f"plan has {plan.n_shards} shards, coordinator was "
                    f"asked for {n_shards}"
                )
        self._plan = plan

    # ------------------------------------------------------------------
    def _resolve_config(self, telemetry) -> GMBEConfig:
        """Materialize the shared shard config (handles ``"tuned"``)."""
        spec = self._config_spec
        if spec is None:
            return GMBEConfig()
        if isinstance(spec, str):
            if spec != "tuned":
                raise ValueError(
                    f"config must be a GMBEConfig or the string 'tuned', "
                    f"got {spec!r}"
                )
            from ..tuning import resolve_config

            resolved, _hit = resolve_config(
                self.graph,
                store=self.tuning_store,
                device=self.cluster.device if self.cluster else self.device,
                n_gpus=1 if self.cluster else self.n_gpus_per_shard,
                telemetry=telemetry,
            )
            return resolved
        return spec

    def _placement(self) -> tuple[list[int], list[DeviceSpec], list[float | None], list[int]]:
        """Per-shard (gpu index, device, surcharge, n_gpus)."""
        if self.cluster is None:
            return (
                list(range(self.n_shards)),
                [self.device] * self.n_shards,
                [None] * self.n_shards,
                [self.n_gpus_per_shard] * self.n_shards,
            )
        surcharges = self.cluster.surcharges()
        gpu_of = [i % self.cluster.n_gpus for i in range(self.n_shards)]
        return (
            gpu_of,
            [self.cluster.device] * self.n_shards,
            [surcharges[g] for g in gpu_of],
            [1] * self.n_shards,
        )

    def _makespan(self, results: list[ShardResult], placement: list[int]) -> float:
        """Fleet time under the placement (max per-GPU serial sum)."""
        per_gpu: dict[int, float] = {}
        for r, gpu in zip(results, placement):
            per_gpu[gpu] = per_gpu.get(gpu, 0.0) + r.sim_time
        return max(per_gpu.values(), default=0.0)

    # ------------------------------------------------------------------
    def plan_shards(self) -> ShardPlan:
        """Build (or return the cached) ownership plan."""
        if self._plan is None:
            base = self._config_spec
            order = (
                base.order
                if isinstance(base, GMBEConfig)
                else GMBEConfig().order
            )
            self._plan = ShardPlan.build(
                self.graph,
                self.n_shards,
                order=order,
                balancer=self.balancer,
            )
        return self._plan

    def run(self) -> ShardReport:
        """Execute every shard and merge; see :class:`ShardReport`."""
        telemetry = (
            self.telemetry if self.telemetry is not None
            else current_telemetry()
        )
        if telemetry is not None and not telemetry.enabled:
            telemetry = None
        tracer = telemetry.tracer if telemetry is not None else NULL_TRACER

        with tracer.span(
            "shard.job", n_shards=self.n_shards, balancer=self.balancer
        ) as job_span:
            with tracer.span("shard.plan") as plan_span:
                plan = self.plan_shards()
                config = self._resolve_config(telemetry)
                if config.order != plan.order:
                    # A tuned entry may carry any order; ownership was
                    # computed under the plan's, which must win.
                    config = config.with_(order=plan.order)
                if telemetry is not None:
                    plan_span.set_attr("n_roots", plan.n_roots)
                    plan_span.set_attr("imbalance", round(plan.imbalance(), 4))
                    plan_span.set_attr("signature", plan.signature()[:16])

            gpu_of, devices, surcharges, gpu_counts = self._placement()
            runners = [
                ShardRunner(
                    self.graph,
                    plan,
                    i,
                    config=config,
                    device=devices[i],
                    n_gpus=gpu_counts[i],
                    root_pull_surcharge=surcharges[i],
                    checkpoint_dir=self.checkpoint_dir,
                    checkpoint_every=self.checkpoint_every,
                    fault_plan=self.fault_plans.get(i),
                    halt_after_tasks=self.halt_after_tasks.get(i),
                    telemetry=telemetry,
                )
                for i in range(self.n_shards)
            ]

            pool = self._pool
            own_pool = pool is None
            if own_pool:
                pool = WorkerPool(
                    self.n_workers or min(self.n_shards, 8),
                    thread_name_prefix="repro-shard",
                )
            try:
                futures = []
                for i, runner in enumerate(runners):
                    label = f"shard {i}/{self.n_shards}"
                    if telemetry is not None:
                        # Ship a copy of the coordinator context across
                        # the thread hop so shard.run spans nest under
                        # shard.job (same pattern as broker dispatch).
                        ctx = contextvars.copy_context()
                        futures.append(pool.submit(
                            ctx.run, run_with_telemetry, telemetry,
                            runner.run, worker_label=label,
                        ))
                    else:
                        futures.append(
                            pool.submit(runner.run, worker_label=label)
                        )
                results = [f.result() for f in futures]
            finally:
                if own_pool:
                    pool.shutdown()

            with tracer.span("shard.merge") as merge_span:
                bicliques = merge_shard_results(results)
                if telemetry is not None:
                    merge_span.set_attr("n_maximal", len(bicliques))

            counters = Counters()
            for r in results:
                counters.merge(r.counters)
            halted = any(r.halted for r in results)
            makespan = self._makespan(results, gpu_of)
            if telemetry is not None:
                job_span.set_attr("n_maximal", len(bicliques))
                job_span.set_attr("halted", halted)
                job_span.set_attr("sim_seconds", makespan)
                registry = telemetry.registry
                registry.counter("shard.jobs").add(1)
                registry.counter("shard.fanout").add(self.n_shards)
                if halted:
                    registry.counter("shard.jobs.halted").add(1)

        return ShardReport(
            plan=plan,
            shards=results,
            bicliques=bicliques,
            counters=counters,
            sim_time=makespan,
            placement=gpu_of,
            halted=halted,
            extras={
                "per_shard_seconds": [r.sim_time for r in results],
                "imbalance": plan.imbalance(),
                "plan_signature": plan.signature(),
                "resumed_shards": [r.shard_id for r in results if r.resumed],
                "config": config,
            },
        )
