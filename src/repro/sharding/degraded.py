"""Graceful degradation of a sharded run: explicit partial results.

When the process-backed :class:`~repro.sharding.ShardCoordinator`
exhausts a shard's retry budget (the shard's worker keeps dying or a
poison input keeps crashing it), failing the whole job would throw away
every shard that *did* finish — and silently returning the merged
survivors would be worse, because a caller could mistake a partial
enumeration for the full set.  The middle path is an explicit
:class:`PartialResult`: the completed shards merged (still
duplicate-free — ownership disjointness is per-shard, so a subset of
shards merges exactly like the full set), the quarantined shard ids,
and one :class:`ResumeHandle` per quarantined shard pointing at the
plan-signature-scoped checkpoint a later run can pick up.

Layers that must not hand back a partial set where a full one was
promised (the one-shot API returns a plain ``list``) raise
:class:`DegradedShardRun` around it instead; the service broker maps
that onto the ``degraded`` job status.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.bicliques import Biclique, Counters
from .plan import ShardPlan
from .runner import ShardResult

__all__ = ["DegradedShardRun", "PartialResult", "ResumeHandle"]


@dataclass(frozen=True)
class ResumeHandle:
    """Everything needed to finish one quarantined shard later.

    ``checkpoint_path`` is the shard's plan-signature-scoped snapshot
    file (``None`` when the coordinator ran without a checkpoint
    directory — the shard then has to restart from its beginning, which
    is still bit-identical).  Re-running the coordinator with the same
    graph, plan and checkpoint directory resumes exactly these shards.
    """

    shard_id: int
    checkpoint_path: str | None
    attempts: int
    last_error: str


@dataclass
class PartialResult:
    """Outcome of a sharded run that lost shards to quarantine.

    Mirrors :class:`~repro.sharding.ShardReport` closely enough for
    reporting code (``bicliques``/``counters``/``sim_time``/``extras``)
    but is a distinct type with ``is_partial = True`` — nothing
    downstream can treat it as a complete enumeration by accident.
    ``bicliques`` is the merged union of the **completed** shards only.
    """

    is_partial = True

    plan: ShardPlan
    completed: list[ShardResult]
    quarantined: list[int]
    bicliques: list[Biclique]
    counters: Counters
    #: makespan over the completed shards under the chosen placement
    sim_time: float
    #: GPU index per completed shard (same order as ``completed``)
    placement: list[int]
    resume: list[ResumeHandle]
    halted: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def n_maximal(self) -> int:
        return len(self.bicliques)

    @property
    def completed_shards(self) -> list[int]:
        return sorted(r.shard_id for r in self.completed)

    def describe(self) -> str:
        """One human line for logs and the CLI."""
        return (
            f"degraded: {self.n_maximal} bicliques from shards "
            f"{self.completed_shards} of {self.plan.n_shards}; "
            f"quarantined {sorted(self.quarantined)}"
        )


class DegradedShardRun(RuntimeError):
    """A sharded run completed only partially (see :class:`PartialResult`).

    Raised by surfaces whose contract is the *complete* enumeration
    (``enumerate_maximal_bicliques``); carries the partial result so a
    caller that can live with a partial set still gets it, along with
    the resume handles.
    """

    def __init__(self, partial: PartialResult) -> None:
        super().__init__(
            f"{partial.describe()} — re-run with the same checkpoint "
            f"directory to resume the quarantined shards"
        )
        self.partial = partial
