"""Root-task ownership partition: which shard enumerates which subtree.

The GMBE decomposition (``core/tasks.py``) already contains a perfect
sharding key: a root task for V-vertex ``v_s`` survives deduplication
exactly when ``v_s`` is the *minimum* vertex of its biclique's R side in
the prepared ordering — so every maximal biclique belongs to exactly one
root vertex.  A :class:`ShardPlan` partitions the prepared V space into
``n_shards`` ownership sets; each shard runs the ordinary kernel with a
:func:`~repro.gmbe.kernel.gmbe_gpu` ``root_mask`` restricted to its set,
and the union over shards is the exact biclique set with **zero
duplicates by construction** (the clustering scheme of Mukherjee &
Tirthapura's MapReduce MBE, see ``docs/paper_mapping.md``).

Because ownership lives in *prepared* vertex space, the partition is a
function of the graph **and** the ``order`` knob: every shard of one
plan must enumerate under the plan's ``order`` (the coordinator pins it,
even for per-shard tuned configs — see DESIGN.md §11).

Balancing: per-vertex root work is heavily skewed (hub vertices own
2-hop neighborhoods orders of magnitude larger than the median), so
round-robin assignment produces shards whose makespans differ by the
same orders of magnitude.  :func:`root_weights` estimates each root
task's cost from degree structure alone (no enumeration), and the
``greedy`` balancer assigns vertices longest-processing-time-first to
the least-loaded shard.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..graph.preprocess import prepare

__all__ = ["ShardPlan", "root_weights", "BALANCERS"]

#: Supported ownership balancers.
BALANCERS = ("greedy", "contiguous", "round-robin")


def root_weights(prepared_graph: BipartiteGraph) -> np.ndarray:
    """Estimated root-task cost per prepared V vertex (float64 array).

    The dominant costs of the root task for ``v_s`` scale with its
    2-hop gather volume ``vol(v) = Σ_{u ∈ N(v)} deg(u)`` — the task
    build plus one local-count pass per effective tree level, of which
    there are roughly ``log`` of the depth potential
    ``min(deg(v), vol(v))`` (pruning collapses most of the nominal §4.3
    height).  Calibrated against measured shard makespans over the
    dataset registry: a linear ``vol × depth`` product over-weights
    hubs (whose subtrees prune hard) and measurably worsens the
    achieved balance, while ``vol × log2(depth)`` lands within ~17% of
    ideal 4-way makespan (geomean, work-bound device).
    """
    g = prepared_graph
    deg_v = g.degrees_v.astype(np.float64)
    contrib = g.degrees_u[g.v_indices].astype(np.float64)
    csum = np.concatenate([[0.0], np.cumsum(contrib)])
    vol = csum[g.v_indptr[1:]] - csum[g.v_indptr[:-1]]
    # +1 keeps isolated vertices assignable (zero-weight everywhere
    # would make every balancer choice equivalent but ill-defined).
    return vol * np.log2(2.0 + np.minimum(deg_v, vol)) + deg_v + 1.0


def _balance_greedy(weights: np.ndarray, n_shards: int) -> np.ndarray:
    """LPT: heaviest vertex first onto the least-loaded shard.

    Deterministic: weight ties break toward the lower vertex id, load
    ties toward the lower shard id.
    """
    owner = np.empty(len(weights), dtype=np.int32)
    order = np.lexsort((np.arange(len(weights)), -weights))
    heap = [(0.0, s) for s in range(n_shards)]
    for v in order:
        load, s = heappop(heap)
        owner[v] = s
        heappush(heap, (load + float(weights[v]), s))
    return owner


def _balance_contiguous(weights: np.ndarray, n_shards: int) -> np.ndarray:
    """Split the prepared id range into runs of roughly equal weight.

    Keeps each shard's owned roots contiguous — the shape that
    amortizes best under batched root claiming — at the price of a
    coarser balance than LPT.
    """
    total = float(weights.sum())
    bounds = np.searchsorted(
        np.cumsum(weights),
        [total * (s + 1) / n_shards for s in range(n_shards - 1)],
        side="left",
    )
    owner = np.zeros(len(weights), dtype=np.int32)
    prev = 0
    for s, b in enumerate(bounds):
        owner[prev:b] = s
        prev = b
    owner[prev:] = n_shards - 1
    return owner


def _balance_round_robin(weights: np.ndarray, n_shards: int) -> np.ndarray:
    """``v % n_shards`` — the baseline the benchmarks compare against."""
    return (np.arange(len(weights)) % n_shards).astype(np.int32)


_BALANCE_FNS = {
    "greedy": _balance_greedy,
    "contiguous": _balance_contiguous,
    "round-robin": _balance_round_robin,
}


@dataclass(frozen=True)
class ShardPlan:
    """A duplicate-free partition of the root-task space.

    Attributes
    ----------
    n_shards:
        Number of ownership sets (shards may legitimately be empty when
        ``n_shards`` exceeds the prepared V count).
    order:
        The :attr:`~repro.gmbe.GMBEConfig.order` the prepared space —
        and therefore the ownership rule — was computed under.  Every
        shard of this plan must enumerate with this order.
    balancer:
        Which assignment strategy produced ``owner``.
    graph_fingerprint:
        Content hash of the input graph; guards against applying a plan
        to the wrong graph.
    owner:
        ``owner[prepared_v] = shard_id`` for every prepared V vertex.
    weights:
        The per-vertex cost estimates the balancer used.
    """

    n_shards: int
    order: str
    balancer: str
    graph_fingerprint: str
    owner: np.ndarray = field(repr=False)
    weights: np.ndarray = field(repr=False)

    @classmethod
    def build(
        cls,
        graph: BipartiteGraph,
        n_shards: int,
        *,
        order: str = "degree",
        balancer: str = "greedy",
    ) -> "ShardPlan":
        """Partition ``graph``'s root tasks into ``n_shards`` ownership sets."""
        if isinstance(n_shards, bool) or not isinstance(n_shards, int):
            raise ValueError(
                f"n_shards must be a positive integer, got {n_shards!r}"
            )
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if balancer not in _BALANCE_FNS:
            raise ValueError(
                f"unknown balancer {balancer!r}; "
                f"choose from {sorted(_BALANCE_FNS)}"
            )
        prepared = prepare(graph, order=order)
        weights = root_weights(prepared.graph)
        owner = _BALANCE_FNS[balancer](weights, n_shards)
        return cls(
            n_shards=n_shards,
            order=order,
            balancer=balancer,
            graph_fingerprint=graph.fingerprint,
            owner=owner,
            weights=weights,
        )

    # ------------------------------------------------------------------
    @property
    def n_roots(self) -> int:
        """Prepared V vertices covered by the partition."""
        return len(self.owner)

    def mask(self, shard_id: int) -> np.ndarray:
        """Boolean ``root_mask`` of ``shard_id`` over the prepared V space."""
        self._check_shard(shard_id)
        return self.owner == shard_id

    def owned(self, shard_id: int) -> np.ndarray:
        """Sorted prepared V ids owned by ``shard_id``."""
        return np.flatnonzero(self.mask(shard_id))

    def shard_loads(self) -> np.ndarray:
        """Estimated total root work per shard (the balancer's view)."""
        return np.bincount(
            self.owner, weights=self.weights, minlength=self.n_shards
        )

    def imbalance(self) -> float:
        """Max shard load over mean shard load (1.0 = perfectly even)."""
        loads = self.shard_loads()
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0

    def signature(self) -> str:
        """Content hash of the full partition.

        Two plans share a signature only when graph, shard count,
        order, balancer, *and* the resulting ownership array all match —
        the identity per-shard checkpoint files are named under, so a
        checkpoint of one plan can never be resumed under another.
        """
        h = hashlib.sha256()
        h.update(self.graph_fingerprint.encode())
        h.update(
            f"|{self.n_shards}|{self.order}|{self.balancer}|".encode()
        )
        h.update(np.ascontiguousarray(self.owner, dtype=np.int64).tobytes())
        return h.hexdigest()

    def validate_against(self, graph: BipartiteGraph) -> None:
        """Raise :class:`ValueError` unless ``graph`` is the plan's graph."""
        if graph.fingerprint != self.graph_fingerprint:
            raise ValueError(
                f"shard plan was built for graph "
                f"{self.graph_fingerprint[:12]}…, not "
                f"{graph.fingerprint[:12]}… — rebuild the plan for this "
                f"graph (ShardPlan.build)"
            )

    def _check_shard(self, shard_id: int) -> None:
        if isinstance(shard_id, bool) or not isinstance(shard_id, int):
            raise ValueError(
                f"shard_id must be an integer, got {shard_id!r}"
            )
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(
                f"shard_id must be in [0, {self.n_shards}), got {shard_id}"
            )
