"""One shard = one ordinary kernel run restricted to its owned roots.

:class:`ShardRunner` is deliberately thin: it derives the shard's
``root_mask`` from the plan, pins the config's ``order`` to the plan's
(the ownership rule lives in prepared vertex space — a shard enumerating
under a different order would own different bicliques), and hands
everything else to :func:`~repro.gmbe.kernel.gmbe_gpu` — so faults,
checkpoint/resume, telemetry, batching, and tuning all work inside a
shard exactly as they do in a single-node run.

Checkpoint isolation: each shard snapshots to its own file, named by the
plan *signature* × shard id, under the coordinator's checkpoint
directory.  The kernel's existing identity guards (graph fingerprint ×
config signature × device topology) validate the snapshot on resume;
the signature-scoped filename guarantees a snapshot written under one
partition can never be picked up by a different plan or shard.
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass, field

from ..core.bicliques import Biclique, BicliqueCollector, Counters
from ..gmbe.config import GMBEConfig
from ..gmbe.kernel import gmbe_gpu
from ..gpusim.device import A100, DeviceSpec
from ..graph.bipartite import BipartiteGraph
from ..telemetry import NULL_TRACER, current_telemetry
from .plan import ShardPlan

__all__ = [
    "ShardResult",
    "ShardRunner",
    "run_shard_task",
    "shard_checkpoint_path",
]


def shard_checkpoint_path(
    checkpoint_dir: str | None, plan: ShardPlan, shard_id: int
) -> str | None:
    """The snapshot file for one shard (plan signature × shard id)."""
    if checkpoint_dir is None:
        return None
    return os.path.join(
        checkpoint_dir,
        f"shard-{plan.signature()[:16]}-"
        f"{shard_id:04d}of{plan.n_shards}.ckpt",
    )


@dataclass
class ShardResult:
    """Everything one shard produced.

    ``bicliques`` is sorted (input labels), ready for the coordinator's
    k-way stream merge.  ``sim_time`` is this shard's modeled seconds on
    its own device — the coordinator folds per-device placement into a
    fleet makespan.
    """

    shard_id: int
    n_shards: int
    bicliques: list[Biclique]
    counters: Counters
    sim_time: float
    owned_roots: int
    resumed: bool = False
    halted: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def n_maximal(self) -> int:
        return len(self.bicliques)


class ShardRunner:
    """Execute one shard of a :class:`~repro.sharding.ShardPlan`.

    Parameters
    ----------
    graph:
        The *full* input graph (every shard sees the whole graph; only
        root-task ownership is restricted).
    plan, shard_id:
        The partition and this runner's slot in it.
    config:
        Kernel knobs for this shard.  ``order`` is pinned to the plan's
        order — per-shard tuned configs may vary every other knob (none
        of which change the enumerated set), but the ownership rule is a
        function of the prepared space.
    device, n_gpus, root_pull_surcharge:
        The simulated device this shard runs on; the optional surcharge
        models a cluster-placed shard paying PCIe/network cost per root
        claim (see :class:`~repro.gmbe.ClusterSpec`).
    checkpoint_dir, checkpoint_every:
        When set, the shard snapshots its frontier to its own
        plan-signature × shard-id file and auto-resumes from it if one
        is left over from a crashed attempt.
    fault_plan, halt_after_tasks:
        Robustness passthrough to the kernel (per-shard fault injection
        and the kill switch the crash tests use).
    telemetry:
        Explicit telemetry; defaults to ambient discovery, so shards
        dispatched by the coordinator inherit the job's correlation ids.
    emit_span:
        When False, the runner records its ``shard.*`` metrics but opens
        no ``shard.run`` span of its own.  The process-pool path uses
        this: the *coordinator* owns one span per dispatched attempt
        (it outlives a SIGKILLed worker), and the worker's records are
        re-parented under it on merge — a worker-side ``shard.run``
        would duplicate it.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        plan: ShardPlan,
        shard_id: int,
        *,
        config: GMBEConfig | None = None,
        device: DeviceSpec = A100,
        n_gpus: int = 1,
        root_pull_surcharge: float | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 256,
        fault_plan=None,
        halt_after_tasks: int | None = None,
        telemetry=None,
        emit_span: bool = True,
    ) -> None:
        plan.validate_against(graph)
        plan._check_shard(shard_id)
        self.graph = graph
        self.plan = plan
        self.shard_id = shard_id
        base = config if config is not None else GMBEConfig()
        self.config = (
            base if base.order == plan.order
            else base.with_(order=plan.order)
        )
        self.device = device
        self.n_gpus = n_gpus
        self.root_pull_surcharge = root_pull_surcharge
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.fault_plan = fault_plan
        self.halt_after_tasks = halt_after_tasks
        self.telemetry = telemetry
        self.emit_span = emit_span

    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> str | None:
        """This shard's snapshot file (plan signature × shard id)."""
        return shard_checkpoint_path(
            self.checkpoint_dir, self.plan, self.shard_id
        )

    def run(self) -> ShardResult:
        """Enumerate this shard's owned subtrees; see :class:`ShardResult`."""
        telemetry = (
            self.telemetry if self.telemetry is not None
            else current_telemetry()
        )
        if telemetry is not None and not telemetry.enabled:
            telemetry = None
        tracer = telemetry.tracer if telemetry is not None else NULL_TRACER

        mask = self.plan.mask(self.shard_id)
        owned = int(mask.sum())
        ckpt_path = self.checkpoint_path
        resume = ckpt_path is not None and os.path.exists(ckpt_path)
        if ckpt_path is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        collector = BicliqueCollector()
        surcharges = (
            None
            if self.root_pull_surcharge is None
            else [float(self.root_pull_surcharge)] * self.n_gpus
        )
        span_tracer = tracer if self.emit_span else NULL_TRACER
        with span_tracer.span(
            "shard.run",
            shard=self.shard_id,
            n_shards=self.plan.n_shards,
            owned_roots=owned,
            device=self.device.name,
            resumed=resume,
        ) as span:
            result = gmbe_gpu(
                self.graph,
                collector,
                config=self.config,
                device=self.device,
                n_gpus=self.n_gpus,
                root_mask=mask,
                root_pull_surcharges=surcharges,
                fault_plan=self.fault_plan,
                checkpoint_path=ckpt_path,
                checkpoint_every=self.checkpoint_every,
                resume=resume,
                halt_after_tasks=self.halt_after_tasks,
                telemetry=telemetry,
            )
            halted = bool(result.extras.get("halted", False))
            if telemetry is not None:
                span.set_attr("n_maximal", result.n_maximal)
                span.set_attr("halted", halted)
                registry = telemetry.registry
                registry.counter("shard.runs").add(1)
                if resume:
                    registry.counter("shard.resumed").add(1)
                registry.histogram("shard.owned_roots").record(owned)
                registry.histogram("shard.sim_seconds").record(
                    result.sim_time
                )
        bicliques = sorted(collector.bicliques)
        return ShardResult(
            shard_id=self.shard_id,
            n_shards=self.plan.n_shards,
            bicliques=bicliques,
            counters=result.counters,
            sim_time=result.sim_time,
            owned_roots=owned,
            resumed=resume,
            halted=halted,
            extras=result.extras,
        )


# ----------------------------------------------------------------------
# Spawn-safe entry point for process-pool dispatch
# ----------------------------------------------------------------------
def _arm_chaos_kill(delay_s: float) -> None:
    """SIGKILL *this* process after ``delay_s`` seconds (chaos tests).

    A non-positive delay kills immediately — before the shard does any
    work — which is the deterministic building block of the quarantine
    tests.  The timer thread is a daemon: if the shard finishes first,
    the process exits normally and the pending kill dies with it.
    """
    if delay_s <= 0:
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover — SIGKILL never returns
    timer = threading.Timer(
        delay_s, os.kill, args=(os.getpid(), signal.SIGKILL)
    )
    timer.daemon = True
    timer.start()


def run_shard_task(
    graph: BipartiteGraph,
    plan: ShardPlan,
    shard_id: int,
    *,
    config: GMBEConfig | None = None,
    device: DeviceSpec = A100,
    n_gpus: int = 1,
    root_pull_surcharge: float | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 256,
    fault_plan=None,
    halt_after_tasks: int | None = None,
    chaos_kill_after: float | None = None,
    trace: "TraceContext | None" = None,
    attempt: int = 1,
    telemetry_capacity: int = 2048,
) -> ShardResult:
    """Run one shard in the calling process — the process-pool entry.

    Module-level and fully picklable-in/picklable-out, so a
    :class:`~repro.parallel.ProcessWorkerPool` can ship it to a spawned
    worker: the graph, plan, and config cross the pipe; the sorted
    :class:`ShardResult` comes back.

    A live :class:`~repro.telemetry.Telemetry` still cannot cross the
    pipe (locks, sinks, contextvars) — but its *data* can.  When the
    coordinator passes a picklable
    :class:`~repro.telemetry.TraceContext` (``trace=``), the worker
    builds a local buffering :class:`~repro.telemetry.WorkerTelemetry`:
    the kernel records ``sim.kernel`` spans, ``sim.phase.*`` counters,
    and fault events exactly as an in-process run would, and the records
    travel back as picklable
    :class:`~repro.telemetry.TelemetrySnapshot`\\ s over two channels —
    incrementally piggybacked on every heartbeat (so a SIGKILLed worker
    still leaves its last buffered records with the parent) and as a
    final flush in ``ShardResult.extras["telemetry"]``.  The coordinator
    re-parents them under its per-attempt ``shard.run``/``shard.retry``
    span, giving process-pool shards the *same* correlation contract as
    thread-pool ones: one ``trace_id``, one ``job_id``, one grep.

    ``chaos_kill_after`` arms a SIGKILL against the worker's own pid
    after that many seconds — the chaos harness for the supervision
    tests; never set it outside one.
    """
    if chaos_kill_after is not None:
        _arm_chaos_kill(float(chaos_kill_after))
    worker = None
    if trace is not None:
        # Imported here, not at module top: the worker entry must stay
        # import-light for the spawn path when telemetry is off.
        from ..parallel.procpool import set_heartbeat_aux_provider
        from ..telemetry.remote import WorkerTelemetry

        worker = WorkerTelemetry(
            trace,
            shard_id=shard_id,
            attempt=attempt,
            capacity=telemetry_capacity,
        )
        # Mark the attempt immediately: the first heartbeat flush (one
        # interval away) then carries proof this worker started, even if
        # it is killed before the kernel emits anything.
        worker.telemetry.tracer.event(
            "shard.worker_start",
            shard=shard_id,
            attempt=attempt,
            pid=os.getpid(),
        )
        set_heartbeat_aux_provider(worker.flush)
    try:
        runner = ShardRunner(
            graph,
            plan,
            shard_id,
            config=config,
            device=device,
            n_gpus=n_gpus,
            root_pull_surcharge=root_pull_surcharge,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            fault_plan=fault_plan,
            halt_after_tasks=halt_after_tasks,
            telemetry=worker.telemetry if worker is not None else None,
            emit_span=worker is None,
        )
        result = runner.run()
    finally:
        if worker is not None:
            set_heartbeat_aux_provider(None)
    if worker is not None:
        result.extras["telemetry"] = worker.flush(final=True)
    return result
