"""Seeded coarse-grid → successive-halving search over configs.

The search engine is deliberately decoupled from the simulator: it sees
an ``evaluate(config, tasks_cap)`` callback returning an
:class:`EvalOutcome` and never touches a graph itself, which keeps it a
pure, deterministic function of ``(candidates, evaluate, budget)`` —
the property the store's reproducibility guarantee rests on.

Scoring exploits one monotonicity fact about the discrete-event
simulator: a run halted after *N* completed tasks reports a makespan
that can only grow if the run continues.  A budget-capped trial score
is therefore a **lower bound** on that config's full-run cycles, which
gives successive halving a *provable* early-termination rule — any
trial whose partial score already exceeds the incumbent's full-run
cycles can never win and is dropped without further simulator work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..gmbe import GMBEConfig

__all__ = ["EvalOutcome", "SuccessiveHalving", "Trial", "TuneBudget"]


@dataclass(frozen=True)
class EvalOutcome:
    """What one budget-capped simulator run reports back."""

    #: makespan in modeled cycles at the point the run stopped
    cycles: float
    #: True if the enumeration finished (the score is exact, not a bound)
    completed: bool
    #: tasks the scheduler executed before stopping
    tasks_executed: int = 0


@dataclass
class Trial:
    """One candidate configuration's state across the rungs."""

    config: GMBEConfig
    index: int
    #: best-known score: exact when ``completed``, else a lower bound
    cycles: float = math.inf
    completed: bool = False
    #: ``True`` once provably worse than the incumbent (never promoted)
    pruned: bool = False
    rung: int = -1
    evaluations: int = 0
    tasks_executed: int = 0

    def sort_key(self) -> tuple:
        # index breaks ties deterministically (stable across processes)
        return (self.cycles, self.index)


@dataclass(frozen=True)
class TuneBudget:
    """Budget semantics of one ``tune()`` call.

    ``max_trials`` caps how many candidate configs enter the bracket;
    rung *r* evaluates its survivors with the simulator halted after
    ``rung0_tasks * rung_growth**r`` completed tasks; after
    ``max_rungs`` halving rounds the remaining ``finalists`` (at most)
    run to completion.  Every number is deterministic — there is no
    wall-clock component, so the same budget always buys the same
    trial sequence.
    """

    max_trials: int = 24
    rung0_tasks: int = 64
    rung_growth: int = 4
    max_rungs: int = 2
    finalists: int = 3

    def __post_init__(self) -> None:
        if self.max_trials <= 0:
            raise ValueError("max_trials must be positive")
        if self.rung0_tasks <= 0:
            raise ValueError("rung0_tasks must be positive")
        if self.rung_growth < 2:
            raise ValueError("rung_growth must be >= 2")
        if self.max_rungs < 0:
            raise ValueError("max_rungs must be non-negative")
        if self.finalists <= 0:
            raise ValueError("finalists must be positive")

    @classmethod
    def from_trials(cls, max_trials: int) -> "TuneBudget":
        """Budget from a bare trial count (the CLI's ``--budget N``).

        Small counts get shallow brackets — with few candidates there
        is nothing to halve, so rungs would only burn the budget.
        """
        if max_trials <= 0:
            raise ValueError("max_trials must be positive")
        if max_trials <= 8:
            return cls(
                max_trials=max_trials, rung0_tasks=16,
                max_rungs=1, finalists=2,
            )
        return cls(max_trials=max_trials)


@dataclass
class SuccessiveHalving:
    """The bracket runner; see module docstring for the algorithm."""

    evaluate: Callable[[GMBEConfig, int | None], EvalOutcome]
    budget: TuneBudget = field(default_factory=TuneBudget)
    #: optional hook called after every evaluation (telemetry/logging)
    on_trial: Callable[[Trial, int | None], None] | None = None

    def _measure(self, trial: Trial, cap: int | None) -> None:
        outcome = self.evaluate(trial.config, cap)
        trial.cycles = outcome.cycles
        trial.completed = outcome.completed
        trial.rung += 1
        trial.evaluations += 1
        trial.tasks_executed = outcome.tasks_executed
        if self.on_trial is not None:
            self.on_trial(trial, cap)

    def run(
        self,
        candidates: list[GMBEConfig],
        *,
        incumbent_cycles: float = math.inf,
    ) -> tuple[Trial | None, list[Trial]]:
        """Run the bracket; returns ``(best_completed_trial, all_trials)``.

        ``incumbent_cycles`` seeds the provable-prune threshold (the
        caller passes the default config's full-run cycles, so the
        search never returns something worse than the default); it
        tightens further as finalists complete.
        """
        trials = [
            Trial(config=cfg, index=i) for i, cfg in enumerate(candidates)
        ]
        alive = list(trials)
        cap = self.budget.rung0_tasks
        for _rung in range(self.budget.max_rungs):
            if len(alive) <= self.budget.finalists:
                break
            for trial in alive:
                if not trial.completed:
                    self._measure(trial, cap)
            # Provable early termination: a partial score is a lower
            # bound, so exceeding the incumbent's full cycles is final.
            for trial in alive:
                if trial.cycles > incumbent_cycles:
                    trial.pruned = True
            alive = [t for t in alive if not t.pruned]
            if not alive:
                break
            alive.sort(key=Trial.sort_key)
            keep = max(self.budget.finalists, math.ceil(len(alive) / 2))
            for trial in alive[keep:]:
                trial.pruned = True
            alive = alive[:keep]
            cap *= self.budget.rung_growth
        # Finalists run to completion, best-bound-first so the incumbent
        # tightens as early as possible for the remaining ones.
        alive.sort(key=Trial.sort_key)
        best: Trial | None = None
        for trial in alive:
            if trial.cycles > incumbent_cycles:
                trial.pruned = True
                continue
            if not trial.completed:
                self._measure(trial, None)
            if trial.cycles > incumbent_cycles:
                trial.pruned = True
                continue
            if best is None or trial.sort_key() < best.sort_key():
                best = trial
                incumbent_cycles = min(incumbent_cycles, trial.cycles)
        return best, trials
