"""Per-graph autotuning of the GMBE kernel knobs.

The paper fixes one global configuration (§6.1: ``bound_height=20``,
``bound_size=1500``, ``WarpPerSM=16``) chosen empirically, but its own
Fig. 10/11 sensitivity sweeps show the optimal split thresholds and
residency vary per graph — and this reproduction exposes further knobs
(``set_backend``, ``scheduling``, vertex ``order``) whose best choice
depends on density and degree skew.  This subsystem makes the system
learn its own fastest configuration per workload and remember it:

- :mod:`~repro.tuning.features` — cheap, deterministic graph features
  (density, degree skew, 2-hop estimates) that seed the search;
- :mod:`~repro.tuning.space` — the typed search space over
  :class:`~repro.gmbe.GMBEConfig` knobs, with per-dimension,
  feature-driven priors;
- :mod:`~repro.tuning.search` — seeded coarse-grid → successive-halving
  trials, each a budget-capped simulator run scored on simulated
  cycles, with provable early termination against the incumbent;
- :mod:`~repro.tuning.store` — a content-addressed tuned-config store
  keyed by graph fingerprint × device topology × tuner version;
- :mod:`~repro.tuning.tuner` — the ``tune(graph, budget)`` orchestrator
  returning a :class:`TunedConfig` with full provenance.

Tuning may only ever change *speed*: every candidate configuration
enumerates the bit-identical maximal-biclique set (the hypothesis
property suite asserts this).  See ``docs/tuning.md``.
"""

from .features import GraphFeatures, compute_features
from .search import EvalOutcome, SuccessiveHalving, Trial, TuneBudget
from .space import Dimension, SearchSpace, default_space
from .store import (
    TUNER_VERSION,
    TunedConfig,
    TunedConfigStore,
    TuningStoreError,
    default_store,
    device_key,
    store_key,
)
from .tuner import resolve_config, tune

__all__ = [
    "Dimension",
    "EvalOutcome",
    "GraphFeatures",
    "SearchSpace",
    "SuccessiveHalving",
    "TUNER_VERSION",
    "Trial",
    "TuneBudget",
    "TunedConfig",
    "TunedConfigStore",
    "TuningStoreError",
    "compute_features",
    "default_space",
    "default_store",
    "device_key",
    "resolve_config",
    "store_key",
    "tune",
]
