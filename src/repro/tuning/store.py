"""Persistent content-addressed store of tuned configurations.

A :class:`TunedConfig` is the tuner's output: the winning
:class:`~repro.gmbe.GMBEConfig` plus everything needed to trust and
reproduce it — the graph fingerprint and device topology it was tuned
for, the tuner version, the seed and budget, the trial count, and the
incumbent-vs-default cycle counts.

The store keys entries by ``sha256(graph fingerprint × device key ×
tuner version)``: a content address, so structurally different graphs
can never share a tuned config, a topology change (different board or
GPU count) never reuses a stale one, and bumping
:data:`TUNER_VERSION` retires every entry produced by an older search
algorithm at once.  Files are atomic JSON (temp file + ``os.replace``),
exactly like :mod:`repro.checkpoint.snapshot` — a crash mid-write never
corrupts the previous good entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from ..gmbe import GMBEConfig
from ..gpusim.device import DeviceSpec

__all__ = [
    "TUNER_VERSION",
    "TunedConfig",
    "TunedConfigStore",
    "TuningStoreError",
    "default_store",
    "device_key",
    "store_key",
]

#: Bump on any change to the search algorithm, the search space, or the
#: trial scoring that could move the incumbent: old entries are then
#: unreachable (different content address) and re-tuned on demand.
TUNER_VERSION = 2  # v2: batch_tasks joined the search space

_KIND = "gmbe-tuned-config"

#: Environment override for the default store location.
STORE_ENV_VAR = "GMBE_TUNING_STORE"


class TuningStoreError(RuntimeError):
    """A tuned-config entry is corrupt or incompatible with this build."""


def device_key(device: DeviceSpec, n_gpus: int) -> str:
    """Topology part of the store key, e.g. ``"A100x1"``."""
    return f"{device.name}x{int(n_gpus)}"


def store_key(
    graph_fingerprint: str, dev_key: str, tuner_version: int = TUNER_VERSION
) -> str:
    """Content address of one (graph, topology, tuner) combination."""
    payload = f"{graph_fingerprint}\x00{dev_key}\x00{tuner_version}"
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class TunedConfig:
    """A tuned configuration with full provenance."""

    config: GMBEConfig
    graph_fingerprint: str
    device_key: str
    seed: int
    trials: int
    #: full-run modeled cycles of the winning config
    incumbent_cycles: float
    #: full-run modeled cycles of :data:`~repro.gmbe.DEFAULT_CONFIG`
    default_cycles: float
    tuner_version: int = TUNER_VERSION
    #: graph features, budget, and per-trial history (JSON-safe dicts)
    provenance: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Default-over-tuned cycle ratio (>= 1.0 by construction)."""
        if self.incumbent_cycles <= 0:
            return 1.0
        return self.default_cycles / self.incumbent_cycles

    def key(self) -> str:
        return store_key(
            self.graph_fingerprint, self.device_key, self.tuner_version
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": _KIND,
                "tuner_version": self.tuner_version,
                "config": json.loads(self.config.to_json()),
                "graph_fingerprint": self.graph_fingerprint,
                "device_key": self.device_key,
                "seed": self.seed,
                "trials": self.trials,
                "incumbent_cycles": self.incumbent_cycles,
                "default_cycles": self.default_cycles,
                "provenance": self.provenance,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "TunedConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TuningStoreError(
                f"tuned config {source} is corrupt (not valid JSON: {exc}); "
                f"delete it and re-run 'gmbe tune'"
            ) from exc
        if not isinstance(data, dict) or data.get("kind") != _KIND:
            raise TuningStoreError(
                f"tuned config {source} is not a GMBE tuned-config entry "
                f"(missing 'kind': '{_KIND}')"
            )
        try:
            return cls(
                config=GMBEConfig.from_dict(data["config"]),
                graph_fingerprint=str(data["graph_fingerprint"]),
                device_key=str(data["device_key"]),
                seed=int(data["seed"]),
                trials=int(data["trials"]),
                incumbent_cycles=float(data["incumbent_cycles"]),
                default_cycles=float(data["default_cycles"]),
                tuner_version=int(data["tuner_version"]),
                provenance=dict(data.get("provenance", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningStoreError(
                f"tuned config {source} has malformed fields ({exc}); "
                f"delete it and re-run 'gmbe tune'"
            ) from exc


class TunedConfigStore:
    """Directory of tuned-config JSON files, one per content address."""

    def __init__(self, root) -> None:
        self.root = os.fspath(root)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # ------------------------------------------------------------------
    def get(
        self,
        graph_fingerprint: str,
        dev_key: str,
        *,
        tuner_version: int = TUNER_VERSION,
    ) -> TunedConfig | None:
        """The stored entry, or ``None`` on a miss.

        A corrupt or incompatible file raises :class:`TuningStoreError`
        (deleting it is the fix) rather than silently re-tuning — a
        store that quietly loses entries would mask real problems.
        """
        key = store_key(graph_fingerprint, dev_key, tuner_version)
        path = self.path_for(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise TuningStoreError(
                f"tuned config {path} is unreadable: {exc}"
            ) from exc
        entry = TunedConfig.from_json(text, source=path)
        # The address encodes these, but a hand-copied file could lie.
        if (
            entry.graph_fingerprint != graph_fingerprint
            or entry.device_key != dev_key
            or entry.tuner_version != tuner_version
        ):
            raise TuningStoreError(
                f"tuned config {path} does not match its content address "
                f"(expected graph {graph_fingerprint[:12]}…/{dev_key}/"
                f"v{tuner_version}, found {entry.graph_fingerprint[:12]}…/"
                f"{entry.device_key}/v{entry.tuner_version}); delete it "
                f"and re-run 'gmbe tune'"
            )
        return entry

    def put(self, entry: TunedConfig) -> str:
        """Atomically persist ``entry``; returns the file path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(entry.key())
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(entry.to_json())
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def entries(self) -> list[TunedConfig]:
        """Every readable entry (sorted by key, for stable listings)."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            with open(path, "r", encoding="utf-8") as fh:
                out.append(TunedConfig.from_json(fh.read(), source=path))
        return out

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(
            1 for name in os.listdir(self.root) if name.endswith(".json")
        )


def default_store() -> TunedConfigStore:
    """The ambient store: ``$GMBE_TUNING_STORE`` or a user-cache dir."""
    root = os.environ.get(STORE_ENV_VAR)
    if not root:
        root = os.path.join(
            os.path.expanduser("~"), ".cache", "gmbe", "tuned"
        )
    return TunedConfigStore(root)
