"""``tune(graph, budget)`` — the autotuning orchestrator.

One call wires the subsystem end to end: check the store (a hit
resolves the config with **zero** simulator work), else compute the
graph features, build the prior-seeded search space, establish the
default config's full-run cycles as the incumbent, run the
successive-halving bracket, and persist the winner with provenance.

Determinism: with a fixed seed the entire trial sequence — candidate
order, rung caps, prune decisions, incumbent — is a pure function of
``(graph, device topology, budget, seed)``.  There is no wall-clock
input anywhere in the loop, so two machines produce byte-identical
tuned configs (the store is safe to share).

Because the incumbent starts at :data:`~repro.gmbe.DEFAULT_CONFIG`'s
own full-run score, ``tune()`` can never return a config slower than
the default: the worst case is the default itself.
"""

from __future__ import annotations

from ..gmbe import DEFAULT_CONFIG, GMBEConfig
from ..gmbe.kernel import gmbe_gpu
from ..gpusim.device import A100, DeviceSpec
from ..graph.bipartite import BipartiteGraph
from ..telemetry import NULL_TRACER, current_telemetry
from .features import compute_features
from .search import EvalOutcome, SuccessiveHalving, TuneBudget
from .space import SearchSpace, default_space
from .store import (
    TUNER_VERSION,
    TunedConfig,
    TunedConfigStore,
    device_key,
)

__all__ = ["resolve_config", "tune"]


def _as_budget(budget) -> TuneBudget:
    if budget is None:
        return TuneBudget()
    if isinstance(budget, TuneBudget):
        return budget
    if isinstance(budget, int):
        return TuneBudget.from_trials(budget)
    raise TypeError(
        f"budget must be a TuneBudget, an int trial count, or None; "
        f"got {type(budget).__name__}"
    )


def tune(
    graph: BipartiteGraph,
    *,
    budget: TuneBudget | int | None = None,
    seed: int = 0,
    device: DeviceSpec = A100,
    n_gpus: int = 1,
    store: TunedConfigStore | None = None,
    space: SearchSpace | None = None,
    force: bool = False,
    telemetry=None,
) -> TunedConfig:
    """Find (or recall) the fastest known config for ``graph``.

    Parameters
    ----------
    graph:
        The workload to tune for.
    budget:
        :class:`TuneBudget`, a bare trial count, or ``None`` for the
        default budget.  See ``docs/tuning.md`` for the semantics.
    seed:
        Seeds the exploration sampler; the whole run is deterministic
        in it.
    device, n_gpus:
        Simulated topology the config is tuned for (part of the store
        key — a 2080Ti tuning is never served to an A100 run).
    store:
        Optional :class:`TunedConfigStore`.  A fresh entry is persisted
        there; an existing one short-circuits the search entirely.
    space:
        Override the feature-seeded default search space.
    force:
        Re-tune even on a store hit (the fresh result overwrites it).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; falls back to the
        ambient one.  Emits a ``tune.trial`` span per simulator run and
        ``tune.*`` counters/gauges.
    """
    n_gpus = int(n_gpus)
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    budget = _as_budget(budget)
    if telemetry is None:
        telemetry = current_telemetry()
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    tracer = telemetry.tracer if telemetry is not None else NULL_TRACER
    registry = telemetry.registry if telemetry is not None else None

    fingerprint = graph.fingerprint
    dkey = device_key(device, n_gpus)
    if store is not None and not force:
        entry = store.get(fingerprint, dkey)
        if entry is not None:
            if registry is not None:
                registry.counter("tune.store.hits").add(1)
            return entry
    if registry is not None and store is not None:
        registry.counter("tune.store.misses").add(1)

    with tracer.span(
        "tune.graph", graph=graph.name, device=dkey, seed=seed
    ):
        features = compute_features(graph)
        if space is None:
            space = default_space(features)
        dev = device
        evaluations = [0]

        def evaluate(config: GMBEConfig, cap: int | None) -> EvalOutcome:
            evaluations[0] += 1
            with tracer.span(
                "tune.trial",
                trial=evaluations[0],
                tasks_cap=cap if cap is not None else -1,
            ) as span:
                res = gmbe_gpu(
                    graph,
                    None,
                    config=config,
                    device=dev,
                    n_gpus=n_gpus,
                    halt_after_tasks=cap,
                )
                report = res.extras["report"]
                halted = bool(res.extras.get("halted", False))
                span.set_attr("cycles", report.makespan_cycles)
                span.set_attr("completed", not halted)
            if registry is not None:
                registry.counter("tune.trials").add(1)
            return EvalOutcome(
                cycles=report.makespan_cycles,
                completed=not halted,
                tasks_executed=report.tasks_executed,
            )

        # The incumbent is the base (paper-default) config's *full* run:
        # every later prune against it is provable, and the search can
        # only improve on the static configuration, never regress it.
        default_config = space.base
        default_outcome = evaluate(default_config, None)
        incumbent_cycles = default_outcome.cycles

        candidates = [
            cfg
            for cfg in space.candidates(budget.max_trials, seed)
            if cfg != default_config
        ]
        bracket = SuccessiveHalving(evaluate=evaluate, budget=budget)
        best, trials = bracket.run(
            candidates, incumbent_cycles=incumbent_cycles
        )

        if best is not None and best.cycles < incumbent_cycles:
            winner, winner_cycles = best.config, best.cycles
        else:
            winner, winner_cycles = default_config, incumbent_cycles
        if registry is not None:
            registry.gauge("tune.incumbent_cycles").set(winner_cycles)

        entry = TunedConfig(
            config=winner,
            graph_fingerprint=fingerprint,
            device_key=dkey,
            seed=seed,
            trials=evaluations[0],
            incumbent_cycles=winner_cycles,
            default_cycles=default_outcome.cycles,
            tuner_version=TUNER_VERSION,
            provenance={
                "graph_name": graph.name,
                "features": features.to_dict(),
                "budget": {
                    "max_trials": budget.max_trials,
                    "rung0_tasks": budget.rung0_tasks,
                    "rung_growth": budget.rung_growth,
                    "max_rungs": budget.max_rungs,
                    "finalists": budget.finalists,
                },
                "candidates": len(candidates),
                "history": [
                    {
                        "assignment": space.assignment_of(t.config),
                        "cycles": t.cycles,
                        "completed": t.completed,
                        "pruned": t.pruned,
                        "evaluations": t.evaluations,
                    }
                    for t in trials
                ],
            },
        )
    if store is not None:
        store.put(entry)
    return entry


def resolve_config(
    graph: BipartiteGraph,
    *,
    store: TunedConfigStore | None = None,
    device: DeviceSpec = A100,
    n_gpus: int = 1,
    base: GMBEConfig | None = None,
    tune_on_miss: bool = False,
    budget: TuneBudget | int | None = None,
    seed: int = 0,
    telemetry=None,
) -> tuple[GMBEConfig, bool]:
    """Resolve the ``config="tuned"`` sentinel for one enumeration.

    Returns ``(config, hit)``: on a store hit the stored config (zero
    simulator work); on a miss either the fallback ``base`` (default
    behaviour — serving paths must not absorb a tuning run inline) or,
    with ``tune_on_miss=True``, the result of a synchronous
    :func:`tune` which is persisted for every later caller.
    """
    if store is None:
        from .store import default_store

        store = default_store()
    entry = store.get(graph.fingerprint, device_key(device, n_gpus))
    if entry is not None:
        if telemetry is not None and telemetry.enabled:
            telemetry.registry.counter("tune.store.hits").add(1)
        return entry.config, True
    if tune_on_miss:
        entry = tune(
            graph,
            budget=budget,
            seed=seed,
            device=device,
            n_gpus=n_gpus,
            store=store,
            telemetry=telemetry,
        )
        return entry.config, False
    if telemetry is not None and telemetry.enabled:
        telemetry.registry.counter("tune.store.misses").add(1)
    return (base if base is not None else DEFAULT_CONFIG), False
