"""Cheap graph features that seed the autotuner's search priors.

Everything here is linear-ish in the graph size except the 2-hop
estimate, which samples the highest-degree V vertices (the ones that
dominate Δ2 on the power-law graphs the paper studies) instead of
scanning all of V the way :func:`repro.graph.stats.compute_stats` does.
All features are deterministic functions of the graph, so the tuner's
trial sequence — and therefore the tuned config — is reproducible.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..graph.stats import two_hop_neighbors_v

__all__ = ["GraphFeatures", "compute_features"]

#: How many top-degree V vertices the 2-hop estimate probes.
_TWO_HOP_SAMPLE = 48


@dataclass(frozen=True)
class GraphFeatures:
    """Deterministic workload descriptors of one bipartite graph.

    ``density`` is edges over the biadjacency capacity ``|U|·|V|``;
    ``skew_u``/``skew_v`` are max/mean degree ratios (1.0 = perfectly
    regular, large = hub-dominated); ``two_hop_max_v`` is a sampled
    estimate of Δ2(V), the quantity the paper's ``bound_size`` keys on.
    """

    n_u: int
    n_v: int
    n_edges: int
    density: float
    avg_deg_u: float
    avg_deg_v: float
    max_deg_u: int
    max_deg_v: int
    skew_u: float
    skew_v: float
    two_hop_max_v: int

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GraphFeatures":
        return cls(**data)


def _skew(degrees: np.ndarray) -> float:
    """Max/mean degree over the non-isolated vertices (1.0 if empty)."""
    active = degrees[degrees > 0]
    if len(active) == 0:
        return 1.0
    return float(active.max()) / float(active.mean())


def _two_hop_estimate(graph: BipartiteGraph, sample: int) -> int:
    """Sampled Δ2(V): exact on the ``sample`` highest-degree V vertices.

    High-degree vertices are where the 2-hop maximum lives on skewed
    graphs; ties break on vertex id so the sample is deterministic.
    """
    if graph.n_v == 0 or graph.n_edges == 0:
        return 0
    degrees = graph.degrees_v
    # lexsort ascending on (id, degree) -> take the tail for top-degree.
    order = np.lexsort((np.arange(graph.n_v), degrees))
    probes = order[-min(sample, graph.n_v):]
    best = 0
    for v in probes:
        best = max(best, len(two_hop_neighbors_v(graph, int(v))))
    return best


def compute_features(
    graph: BipartiteGraph, *, two_hop_sample: int = _TWO_HOP_SAMPLE
) -> GraphFeatures:
    """Compute the tuner's feature vector for ``graph``."""
    n_u, n_v, m = graph.n_u, graph.n_v, graph.n_edges
    capacity = n_u * n_v
    return GraphFeatures(
        n_u=n_u,
        n_v=n_v,
        n_edges=m,
        density=(m / capacity) if capacity else 0.0,
        avg_deg_u=(m / n_u) if n_u else 0.0,
        avg_deg_v=(m / n_v) if n_v else 0.0,
        max_deg_u=int(graph.degrees_u.max(initial=0)),
        max_deg_v=int(graph.degrees_v.max(initial=0)),
        skew_u=_skew(graph.degrees_u),
        skew_v=_skew(graph.degrees_v),
        two_hop_max_v=_two_hop_estimate(graph, two_hop_sample),
    )
