"""Typed search space over the GMBE kernel knobs.

A :class:`SearchSpace` is an ordered set of :class:`Dimension`\\ s, each
a finite choice list with a positive *prior* weight per choice.  Priors
come from the graph features (:func:`default_space`): they decide which
assignments the coarse grid tries first and how the seeded sampler
weights the remainder — they never exclude a choice, so the space stays
fully explorable under a large budget.

Every dimension maps 1:1 onto a :class:`~repro.gmbe.GMBEConfig` field
(vertex ordering included — it is the ``order`` knob), so an assignment
converts to a config with :meth:`SearchSpace.to_config` and back with
:meth:`SearchSpace.assignment_of`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..gmbe import GMBEConfig
from .features import GraphFeatures

__all__ = ["Dimension", "SearchSpace", "default_space"]


@dataclass(frozen=True)
class Dimension:
    """One tunable knob: a finite choice list with per-choice priors."""

    name: str
    choices: tuple
    #: positive relative weights, parallel to ``choices`` (need not sum
    #: to 1); defaults to uniform.
    priors: tuple = ()

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"dimension {self.name!r} has no choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"dimension {self.name!r} has duplicate choices")
        priors = self.priors or tuple(1.0 for _ in self.choices)
        if len(priors) != len(self.choices):
            raise ValueError(
                f"dimension {self.name!r}: {len(priors)} priors for "
                f"{len(self.choices)} choices"
            )
        if any(p <= 0 for p in priors):
            raise ValueError(f"dimension {self.name!r}: priors must be > 0")
        object.__setattr__(self, "priors", tuple(float(p) for p in priors))

    def ranked(self) -> tuple:
        """Choices by descending prior; ties keep declaration order."""
        order = sorted(
            range(len(self.choices)), key=lambda i: (-self.priors[i], i)
        )
        return tuple(self.choices[i] for i in order)

    def sample(self, rng: random.Random):
        """One prior-weighted draw."""
        return rng.choices(self.choices, weights=self.priors, k=1)[0]


@dataclass(frozen=True)
class SearchSpace:
    """Ordered dimensions over :class:`GMBEConfig` fields."""

    dimensions: tuple = ()
    #: knobs held fixed for every candidate (e.g. ``prune=True``).
    base: GMBEConfig = field(default_factory=GMBEConfig)

    def __post_init__(self) -> None:
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        valid = set(GMBEConfig.__dataclass_fields__)
        unknown = sorted(set(names) - valid)
        if unknown:
            raise ValueError(
                f"dimension(s) {unknown} are not GMBEConfig fields; "
                f"valid: {sorted(valid)}"
            )

    # ------------------------------------------------------------------
    def to_config(self, assignment: dict) -> GMBEConfig:
        """Materialize an assignment as a full config over ``base``."""
        return self.base.with_(**assignment)

    def assignment_of(self, config: GMBEConfig) -> dict:
        """The dimensions' view of ``config`` (inverse of to_config)."""
        return {d.name: getattr(config, d.name) for d in self.dimensions}

    def prior_best(self) -> dict:
        """Assignment taking every dimension's highest-prior choice."""
        return {d.name: d.ranked()[0] for d in self.dimensions}

    # ------------------------------------------------------------------
    def coarse_grid(self) -> list[dict]:
        """Deterministic coordinate sweep around the prior-best point.

        The prior-best assignment first, then every one-dimension
        variation of it, dimensions in declaration order and choices in
        descending-prior order.  This is the classic coarse grid for
        mostly-separable knob interactions: ``1 + Σ(|choices|-1)``
        candidates instead of the full product.
        """
        center = self.prior_best()
        grid = [dict(center)]
        for dim in self.dimensions:
            for choice in dim.ranked()[1:]:
                variant = dict(center)
                variant[dim.name] = choice
                grid.append(variant)
        return grid

    def sample(self, rng: random.Random) -> dict:
        """One prior-weighted random assignment (exploration beyond the
        grid when the budget allows)."""
        return {d.name: d.sample(rng) for d in self.dimensions}

    def candidates(self, max_candidates: int, seed: int) -> list[GMBEConfig]:
        """The trial list: coarse grid, then seeded prior-weighted
        samples, deduplicated, capped at ``max_candidates``."""
        if max_candidates <= 0:
            raise ValueError("max_candidates must be positive")
        rng = random.Random(seed)
        out: list[GMBEConfig] = []
        seen: set = set()
        for assignment in self.coarse_grid():
            cfg = self.to_config(assignment)
            if cfg not in seen:
                seen.add(cfg)
                out.append(cfg)
            if len(out) >= max_candidates:
                return out[:max_candidates]
        # Exploration tail: bounded draw attempts so a tiny space
        # (every combination already in the grid) terminates.
        attempts = 0
        limit = 50 * max_candidates
        while len(out) < max_candidates and attempts < limit:
            attempts += 1
            cfg = self.to_config(self.sample(rng))
            if cfg not in seen:
                seen.add(cfg)
                out.append(cfg)
        return out


def default_space(
    features: GraphFeatures, *, base: GMBEConfig | None = None
) -> SearchSpace:
    """The standard GMBE tuning space, priors seeded by graph features.

    The priors encode what the paper's sensitivity sweeps and the
    cuMBE/GBC adaptive arguments say about where each knob's optimum
    moves: hub-skewed graphs want more splitting (lower bounds) and can
    justify >16 resident warps despite the occupancy derate (Fig. 11);
    dense graphs favor the packed-bitset backend; 2-hop-light graphs
    gain little from splitting at all.
    """
    base = base if base is not None else GMBEConfig()
    dense = features.density > 0.01 or features.avg_deg_v > 24
    skewed = features.skew_v > 4.0 or features.skew_u > 4.0
    heavy = features.two_hop_max_v > 200

    def w(values: dict, choices: tuple) -> tuple:
        return tuple(values[c] for c in choices)

    heights = (4, 8, 20, 48)
    height_priors = (
        w({4: 4.0, 8: 3.0, 20: 2.0, 48: 1.0}, heights)
        if skewed or heavy
        else w({4: 1.0, 8: 2.0, 20: 4.0, 48: 2.0}, heights)
    )
    sizes = (64, 300, 1500, 6000)
    size_priors = (
        w({64: 4.0, 300: 3.0, 1500: 2.0, 6000: 1.0}, sizes)
        if skewed or heavy
        else w({64: 1.0, 300: 2.0, 1500: 4.0, 6000: 2.0}, sizes)
    )
    warps = (8, 16, 24, 32)
    warp_priors = (
        w({8: 1.0, 16: 3.0, 24: 2.0, 32: 2.5}, warps)
        if heavy
        else w({8: 1.5, 16: 4.0, 24: 1.5, 32: 1.0}, warps)
    )
    backends = ("auto", "bitset", "sorted")
    backend_priors = (4.0, 3.0, 1.0) if dense else (4.0, 1.5, 2.0)
    orders = ("degree", "degeneracy", "none")
    order_priors = (3.0, 4.0, 1.0) if skewed else (4.0, 2.0, 1.0)

    return SearchSpace(
        dimensions=(
            Dimension("bound_height", heights, height_priors),
            Dimension("bound_size", sizes, size_priors),
            Dimension("warps_per_sm", warps, warp_priors),
            Dimension("set_backend", backends, backend_priors),
            Dimension("order", orders, order_priors),
            Dimension("scheduling", ("task", "warp"), (6.0, 1.0)),
            # Cycle-neutral by design (DESIGN.md §10) — kept in the space
            # so stores/sweeps cover it, with priors favoring "auto"
            # since it only moves wall-clock, never the objective.
            Dimension("batch_tasks", ("auto", "off"), (4.0, 1.0)),
        ),
        base=base,
    )
