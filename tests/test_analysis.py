"""Tests for the biclique analysis toolkit."""

import numpy as np
import pytest

from repro.analysis import (
    edge_coverage,
    greedy_edge_cover,
    jaccard,
    overlap_components,
    participation_counts,
    summarize,
)
from repro.core import Biclique, BicliqueCollector, oombea
from repro.graph import BipartiteGraph, complete_bipartite, random_bipartite


@pytest.fixture
def paper_bicliques(paper_graph):
    col = BicliqueCollector()
    oombea(paper_graph, col)
    return col.bicliques


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s.n_bicliques == 0 and s.max_edges == 0

    def test_paper_graph(self, paper_bicliques):
        s = summarize(paper_bicliques)
        assert s.n_bicliques == 6
        assert s.max_left == 4 and s.max_right == 4
        assert s.max_edges == 6  # {u1,u2}x{v1,v2,v3} or {u2,u4}x{v2,v3,v4}
        assert sum(s.shape_histogram.values()) == 6

    def test_means(self):
        bs = [Biclique.make([0], [0]), Biclique.make([0, 1, 2], [0, 1, 2])]
        s = summarize(bs)
        assert s.mean_left == 2.0 and s.mean_right == 2.0


class TestParticipation:
    def test_paper_graph(self, paper_graph, paper_bicliques):
        u_counts, v_counts = participation_counts(
            paper_bicliques, paper_graph.n_u, paper_graph.n_v
        )
        # u2 (index 1) is in every maximal biclique of G0
        assert u_counts[1] == 6
        assert u_counts.argmax() == 1
        assert v_counts.sum() == sum(len(b.right) for b in paper_bicliques)


class TestEdgeCoverage:
    def test_all_maximal_cover_everything(self, paper_graph, paper_bicliques):
        assert edge_coverage(paper_bicliques, paper_graph) == 1.0

    def test_partial(self, paper_graph, paper_bicliques):
        one = [max(paper_bicliques, key=lambda b: b.n_edges)]
        cov = edge_coverage(one, paper_graph)
        assert 0 < cov < 1

    def test_empty_graph(self):
        g = BipartiteGraph.from_edges(2, 2, [])
        assert edge_coverage([], g) == 1.0


class TestGreedyCover:
    def test_selects_biggest_first(self, paper_graph, paper_bicliques):
        res = greedy_edge_cover(paper_bicliques, paper_graph, k=1)
        assert len(res.selected) == 1
        assert res.marginal_gains[0] == max(b.n_edges for b in paper_bicliques)

    def test_full_coverage_eventually(self, paper_graph, paper_bicliques):
        res = greedy_edge_cover(paper_bicliques, paper_graph, k=10)
        assert res.coverage == 1.0
        # marginal gains are non-increasing (submodular greedy)
        assert all(
            res.marginal_gains[i] >= res.marginal_gains[i + 1]
            for i in range(len(res.marginal_gains) - 1)
        )

    def test_min_gain_stops_early(self, paper_graph, paper_bicliques):
        res = greedy_edge_cover(paper_bicliques, paper_graph, k=10, min_gain=3)
        assert all(g >= 3 for g in res.marginal_gains)

    def test_k_zero(self, paper_graph, paper_bicliques):
        res = greedy_edge_cover(paper_bicliques, paper_graph, k=0)
        assert res.selected == [] and res.coverage == 0.0

    def test_negative_k(self, paper_graph, paper_bicliques):
        with pytest.raises(ValueError):
            greedy_edge_cover(paper_bicliques, paper_graph, k=-1)

    def test_matches_bruteforce_greedy(self):
        g = random_bipartite(10, 8, 0.4, seed=5)
        col = BicliqueCollector()
        oombea(g, col)
        res = greedy_edge_cover(col.bicliques, g, k=3)
        # simple reference greedy
        covered: set = set()
        for expect_gain in res.marginal_gains:
            best = max(
                sum(
                    1
                    for u in b.left
                    for v in b.right
                    if (u, v) not in covered
                )
                for b in col.bicliques
            )
            assert expect_gain == best
            # apply the same pick the lazy greedy made
            pick = res.selected[res.marginal_gains.index(expect_gain)]
            covered |= {(u, v) for u in pick.left for v in pick.right}


class TestOverlap:
    def test_jaccard_identity(self):
        b = Biclique.make([0, 1], [2])
        assert jaccard(b, b) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard(Biclique.make([0], [0]), Biclique.make([1], [1])) == 0.0

    def test_sides_not_conflated(self):
        # u0 and v0 are different vertices even with the same id
        a = Biclique.make([0], [1])
        b = Biclique.make([1], [0])
        assert jaccard(a, b) == 0.0

    def test_components_merge_planted_ring(self):
        # one dense block fragments into overlapping maximal bicliques
        g = complete_bipartite(5, 5)
        edges = [e for e in g.edges() if e != (0, 0)]  # poke one hole
        g2 = BipartiteGraph.from_edges(5, 5, edges)
        col = BicliqueCollector()
        oombea(g2, col)
        comps = overlap_components(col.bicliques, min_jaccard=0.3)
        assert comps.n_components == 1
        us, vs = comps.merged_vertex_sets()[0]
        assert us == set(range(5)) and vs == set(range(5))

    def test_distinct_communities_stay_apart(self):
        from repro.graph import planted_bicliques

        g = planted_bicliques(40, 30, [(6, 5), (6, 5)], noise_p=0.0, seed=9)
        col = BicliqueCollector()
        oombea(g, col)
        big = [b for b in col.bicliques if b.n_edges >= 30]
        comps = overlap_components(big, min_jaccard=0.2)
        assert comps.n_components == len(big) == 2
