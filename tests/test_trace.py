"""Tests for the chrome-trace exporter (`repro.gpusim.trace`).

Event schema, multi-GPU pid mapping, metadata rows, the fault/split/
queue-depth annotations, round-trip through ``write_chrome_trace``,
and the shared actionable-error helper both trace and profiler use.
"""

import json

import pytest

from repro.core import EnumerationResult, oombea
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim import (
    chrome_trace_events,
    profile_run,
    require_sim_extras,
    write_chrome_trace,
)
from repro.gpusim.faults import FaultPlan
from repro.graph import random_bipartite
from repro.telemetry import Telemetry

SPLITTY = GMBEConfig(scheduling="task", bound_height=2, bound_size=4)


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(40, 40, 0.15, seed=2)


@pytest.fixture(scope="module")
def run(graph):
    return gmbe_gpu(graph)


class TestEventSchema:
    def test_complete_events(self, run):
        events = chrome_trace_events(run)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) >= run.extras["report"].tasks_executed
        for e in xs:
            assert e["cat"] == "gmbe"
            assert e["dur"] > 0 and e["ts"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}

    def test_metadata_rows(self, run):
        events = chrome_trace_events(run)
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == 1  # one device
        assert metas[0]["name"] == "process_name"
        assert metas[0]["pid"] == 0
        device = run.extras["device"]
        assert metas[0]["args"]["name"] == f"{device.name}[0]"

    def test_pid_maps_device_and_sm(self, run):
        events = chrome_trace_events(run)
        n_sms = run.extras["device"].n_sms
        for e in events:
            if e["ph"] == "X":
                assert 0 <= e["pid"] < n_sms  # device 0: pid == sm


class TestMultiGPU:
    def test_pid_namespace_per_device(self, graph):
        run2 = gmbe_gpu(graph, n_gpus=2)
        events = chrome_trace_events(run2)
        metas = {e["pid"]: e for e in events if e["ph"] == "M"}
        assert set(metas) == {0, 1000}
        assert metas[1000]["args"]["name"].endswith("[1]")
        x_pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert any(pid < 1000 for pid in x_pids)
        assert any(pid >= 1000 for pid in x_pids)


class TestAnnotations:
    def test_fault_instants(self, graph):
        plan = FaultPlan(
            seed=3, p_warp_hang=0.03, p_queue_drop=0.05, max_faults=10
        )
        res = gmbe_gpu(graph, config=SPLITTY, fault_plan=plan)
        log = res.extras["fault_log"]
        assert len(log) > 0
        events = chrome_trace_events(res)
        instants = [e for e in events if e["ph"] == "i" and e["cat"] == "fault"]
        assert len(instants) == len(log)
        names = {e["name"] for e in instants}
        assert names <= {
            "fault:warp_hang", "fault:queue_drop", "fault:requeue",
            "fault:sm_crash", "fault:mem_pressure", "fault:task_lost",
        }
        assert any(n == "fault:requeue" for n in names)
        for e in instants:
            assert e["s"] == "p" and e["ts"] >= 0
            assert "site" in e["args"] and "lineage" in e["args"]

    def test_split_instants_and_depth_counters(self, graph):
        res = gmbe_gpu(graph, config=SPLITTY, telemetry=Telemetry())
        events = chrome_trace_events(res)
        splits = [e for e in events if e["name"] == "task_split"]
        assert splits and all(e["ph"] == "i" for e in splits)
        assert all(e["args"]["children"] >= 1 for e in splits)
        depths = [e for e in events if e["name"] == "queue_depth"]
        report = res.extras["report"]
        assert len(depths) == len(report.queue_depth_samples)
        for e in depths:
            assert e["ph"] == "C"
            assert e["args"]["tasks"] >= 0

    def test_untraced_run_has_no_annotations(self, run):
        events = chrome_trace_events(run)
        assert not [e for e in events if e["ph"] in ("i", "C")]


class TestRoundTrip:
    def test_write_and_load(self, graph, tmp_path):
        res = gmbe_gpu(graph, config=SPLITTY,
                       fault_plan=FaultPlan(seed=1, p_warp_hang=0.02,
                                            max_faults=4),
                       telemetry=Telemetry())
        path = tmp_path / "trace.json"
        n = write_chrome_trace(res, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == n
        assert data["displayTimeUnit"] == "ns"
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"X", "M", "i", "C"} <= phases


class TestErrors:
    def test_consistent_actionable_errors(self):
        host_result = EnumerationResult(n_maximal=0)
        for fn, caller in (
            (chrome_trace_events, "chrome_trace_events"),
            (profile_run, "profile_run"),
        ):
            with pytest.raises(ValueError) as exc:
                fn(host_result)
            msg = str(exc.value)
            assert caller in msg
            assert "repro.gmbe.gmbe_gpu" in msg
            assert "'report'" in msg and "'device'" in msg

    def test_rejects_host_enumeration(self, graph):
        with pytest.raises(ValueError, match="gmbe_gpu"):
            chrome_trace_events(oombea(graph))

    def test_helper_returns_extras(self, run):
        report, device = require_sim_extras(run, "test")
        assert report is run.extras["report"]
        assert device is run.extras["device"]

    def test_helper_names_missing_keys(self):
        with pytest.raises(ValueError, match="missing 'report', 'device'"):
            require_sim_extras(EnumerationResult(n_maximal=0), "caller_x")
