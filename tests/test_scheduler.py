"""Tests for the persistent-thread scheduler with synthetic tasks."""

import pytest

from repro.gpusim import DeviceSpec, ExecOutcome, PersistentThreadScheduler

TINY = DeviceSpec(
    "tiny",
    n_sms=2,
    global_mem_bytes=1 << 30,
    clock_hz=1e9,
    warps_per_sm=2,
    local_queue_cycles=0,
    global_queue_cycles=0,
)


def make_roots(costs_and_tasks):
    def gen():
        yield from costs_and_tasks

    return gen()


class TestBasicScheduling:
    def test_single_task(self):
        sched = PersistentThreadScheduler(
            [TINY], 2, make_roots([(0.0, "t1")]),
            lambda task, dev: ExecOutcome(cycles=10.0),
        )
        report = sched.run()
        assert report.makespan_cycles == 10.0
        assert report.tasks_executed == 1

    def test_parallel_tasks_overlap(self):
        tasks = [(0.0, f"t{i}") for i in range(4)]
        sched = PersistentThreadScheduler(
            [TINY], 2, make_roots(tasks),
            lambda task, dev: ExecOutcome(cycles=10.0),
        )
        report = sched.run()
        # 4 units, 4 tasks of 10 cycles -> all in parallel
        assert report.makespan_cycles == 10.0

    def test_more_tasks_than_units(self):
        tasks = [(0.0, f"t{i}") for i in range(8)]
        sched = PersistentThreadScheduler(
            [TINY], 2, make_roots(tasks),
            lambda task, dev: ExecOutcome(cycles=10.0),
        )
        assert sched.run().makespan_cycles == 20.0

    def test_dedup_roots_charged_but_skipped(self):
        tasks = [(5.0, None), (0.0, "real")]
        executed = []

        def execute(task, dev):
            executed.append(task)
            return ExecOutcome(cycles=1.0)

        sched = PersistentThreadScheduler([TINY], 2, make_roots(tasks), execute)
        report = sched.run()
        assert executed == ["real"]
        assert report.tasks_executed == 1

    def test_children_executed(self):
        """A task that splits into children; children run after parent."""
        seen = []

        def execute(task, dev):
            seen.append(task)
            if task == "parent":
                return ExecOutcome(
                    cycles=10.0, children=[(5.0, "c1"), (10.0, "c2")]
                )
            return ExecOutcome(cycles=3.0)

        sched = PersistentThreadScheduler(
            [TINY], 2, make_roots([(0.0, "parent")]), execute
        )
        report = sched.run()
        assert set(seen) == {"parent", "c1", "c2"}
        assert report.tasks_split == 1
        # c1 available at 5, runs 3 cycles on an idle warp -> ends at 8;
        # c2 available at 10 -> ends at 13
        assert report.makespan_cycles == pytest.approx(13.0)

    def test_child_waits_for_availability(self):
        def execute(task, dev):
            if task == "p":
                return ExecOutcome(cycles=100.0, children=[(100.0, "c")])
            return ExecOutcome(cycles=1.0)

        sched = PersistentThreadScheduler([TINY], 1, make_roots([(0.0, "p")]), execute)
        # only 2 units (1 per SM); child can't start before cycle 100
        assert sched.run().makespan_cycles == pytest.approx(101.0)

    def test_multi_device_roots_shared(self):
        tasks = [(0.0, f"t{i}") for i in range(8)]
        sched = PersistentThreadScheduler(
            [TINY, TINY], 2, make_roots(tasks),
            lambda task, dev: ExecOutcome(cycles=10.0),
        )
        report = sched.run()
        assert report.makespan_cycles == 10.0  # 8 units across 2 devices
        assert len(report.per_device_cycles) == 2

    def test_requires_devices(self):
        with pytest.raises(ValueError):
            PersistentThreadScheduler([], 1, make_roots([]), lambda t, d: None)

    def test_root_pull_surcharge_delays_device(self):
        tasks = [(0.0, f"t{i}") for i in range(4)]
        plain = PersistentThreadScheduler(
            [TINY], 2, make_roots(list(tasks)),
            lambda task, dev: ExecOutcome(cycles=10.0),
        ).run()
        taxed = PersistentThreadScheduler(
            [TINY], 2, make_roots(list(tasks)),
            lambda task, dev: ExecOutcome(cycles=10.0),
            root_pull_surcharges=[5.0],
        ).run()
        assert taxed.makespan_cycles == plain.makespan_cycles + 5.0

    def test_surcharge_length_validated(self):
        with pytest.raises(ValueError):
            PersistentThreadScheduler(
                [TINY, TINY], 1, make_roots([]),
                lambda t, d: ExecOutcome(cycles=1.0),
                root_pull_surcharges=[1.0],
            )


class TestLoadBalanceShape:
    def test_one_giant_task_bounds_makespan_without_split(self):
        tasks = [(0.0, "giant")] + [(0.0, f"s{i}") for i in range(6)]

        def execute(task, dev):
            return ExecOutcome(cycles=100.0 if task == "giant" else 1.0)

        sched = PersistentThreadScheduler([TINY], 2, make_roots(tasks), execute)
        assert sched.run().makespan_cycles == 100.0

    def test_split_giant_task_balances(self):
        tasks = [(0.0, "giant")] + [(0.0, f"s{i}") for i in range(6)]

        def execute(task, dev):
            if task == "giant":
                return ExecOutcome(
                    cycles=4.0, children=[(4.0, f"piece{i}") for i in range(4)]
                )
            if str(task).startswith("piece"):
                return ExecOutcome(cycles=25.0)
            return ExecOutcome(cycles=1.0)

        sched = PersistentThreadScheduler([TINY], 2, make_roots(tasks), execute)
        # pieces run concurrently on the 4 units: ~4 + 25 + change
        assert sched.run().makespan_cycles < 60.0
