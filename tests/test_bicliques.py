"""Tests for biclique value types and sinks."""

import io

import numpy as np
import pytest

from repro.core.bicliques import (
    Biclique,
    BicliqueCollector,
    BicliqueCounter,
    BicliqueWriter,
    Counters,
    EnumerationResult,
)


class TestBiclique:
    def test_make_sorts_and_dedupes(self):
        b = Biclique.make([3, 1, 1], [2, 0])
        assert b.left == (1, 3) and b.right == (0, 2)

    def test_hashable_equality(self):
        a = Biclique.make([1, 2], [3])
        b = Biclique.make([2, 1], [3])
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_sizes(self):
        b = Biclique.make([1, 2, 3], [4, 5])
        assert b.n_vertices == 5
        assert b.n_edges == 6

    def test_ordering_defined(self):
        assert sorted([Biclique.make([2], [1]), Biclique.make([1], [2])])


class TestSinks:
    def test_counter_tracks_maxima(self):
        c = BicliqueCounter()
        c(np.array([1, 2, 3]), np.array([4]))
        c(np.array([1]), np.array([4, 5]))
        assert c.count == 2
        assert c.max_left == 3 and c.max_right == 2

    def test_collector(self):
        col = BicliqueCollector()
        col(np.array([1]), np.array([2]))
        col(np.array([1]), np.array([2]))
        assert col.count == 2
        assert len(col.as_set()) == 1

    def test_writer_format(self):
        buf = io.StringIO()
        w = BicliqueWriter(buf)
        w(np.array([1, 2]), np.array([3]))
        assert buf.getvalue() == "1,2 | 3\n"
        assert w.count == 1


class TestCounters:
    def test_defaults_zero(self):
        c = Counters()
        assert c.checks == 0 and c.set_op_work == 0

    def test_charge_ragged_scalar_equivalence(self):
        a, b = Counters(), Counters()
        a.charge(40, 0)
        b.charge_ragged(np.array([40]))
        assert a.set_op_work == b.set_op_work
        assert a.simt_cycles == b.simt_cycles


class TestEnumerationResult:
    def test_count_alias(self):
        r = EnumerationResult(n_maximal=7)
        assert r.count == 7
        assert r.sim_time == 0.0
        assert r.extras == {}
