"""Differential test: NodeBuffer DFS vs the frame-allocating engine.

The node-reuse buffer must visit exactly the same enumeration nodes as
a plain DFS that allocates fresh (L, R, C) frames, for both pruning
settings — the strongest correctness evidence for the depth-field
push/pop bookkeeping of §4.1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BicliqueCollector
from repro.core.bicliques import Counters
from repro.core.engine import EngineOptions, run_subtree
from repro.core.localcount import LocalCounter
from repro.core.tasks import build_root_task
from repro.gmbe.host import run_task_with_node_buffer
from repro.graph import BipartiteGraph, random_bipartite
from repro.graph.preprocess import prepare


def enumerate_both(graph, v_s, prune):
    lc = LocalCounter(graph)
    task = build_root_task(graph, lc, v_s)
    if task is None:
        return None
    buf_out = BicliqueCollector()
    buf_counters = Counters()
    run_task_with_node_buffer(
        graph, lc, task, buf_out, buf_counters, prune=prune
    )
    eng_out = BicliqueCollector()
    eng_counters = Counters()
    run_subtree(
        graph, lc, task.left, task.right, task.cands, task.counts,
        eng_out, eng_counters,
        EngineOptions("id", False, prune),
    )
    return buf_out, buf_counters, eng_out, eng_counters


@pytest.mark.parametrize("prune", [True, False])
def test_per_task_equivalence_random(prune):
    for seed in range(6):
        g = prepare(random_bipartite(18, 13, 0.35, seed=seed)).graph
        for v_s in range(g.n_v):
            res = enumerate_both(g, v_s, prune)
            if res is None:
                continue
            buf_out, buf_c, eng_out, eng_c = res
            assert buf_out.as_set() == eng_out.as_set(), (seed, v_s)
            # Same nodes visited, same check outcomes.
            assert buf_c.nodes_generated == eng_c.nodes_generated, (seed, v_s)
            assert buf_c.maximal == eng_c.maximal
            assert buf_c.non_maximal == eng_c.non_maximal


@given(st.integers(0, 10_000), st.booleans())
@settings(max_examples=25, deadline=None)
def test_per_task_equivalence_hypothesis(seed, prune):
    rng = np.random.default_rng(seed)
    n_u, n_v = int(rng.integers(2, 14)), int(rng.integers(2, 11))
    mask = rng.random((n_u, n_v)) < 0.4
    g = BipartiteGraph.from_biadjacency(mask.astype(np.int8))
    g = prepare(g).graph
    for v_s in range(g.n_v):
        res = enumerate_both(g, v_s, prune)
        if res is None:
            continue
        buf_out, buf_c, eng_out, eng_c = res
        assert buf_out.as_set() == eng_out.as_set()
        assert buf_c.nodes_generated == eng_c.nodes_generated
