"""Supervised process-pool tests: dispatch, crash, hang, budget, drain.

Two layers.  ``TestSupervisor`` unit-tests the watchdog ledger against a
fake clock — verdicts, restart budgets, backoff — with zero processes.
``TestProcessWorkerPool`` runs real spawned workers and does real
violence to them (SIGKILL, SIGSTOP), asserting the pool detects each
failure mode, surfaces the right exception on the victim's future, and
keeps serving afterwards.  Worker targets live at module level — spawn
pickles them by qualified name.
"""

import os
import signal
import time

import pytest

from repro.parallel import (
    PoolBrokenError,
    ProcessWorkerPool,
    RemoteTaskError,
    Supervisor,
    SupervisorPolicy,
    WorkerCrashError,
    WorkerHungError,
)


# ----------------------------------------------------------------------
# Spawn targets (must be module-level for pickling)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _sleep_return(seconds, value):
    time.sleep(seconds)
    return value


def _raise_value_error(msg):
    raise ValueError(msg)


def _return_unpicklable():
    return lambda: None


# A policy fast enough for tests but with a heartbeat timeout that
# comfortably covers worker boot (spawn + imports) on a loaded machine.
FAST = SupervisorPolicy(
    heartbeat_interval=0.05,
    heartbeat_timeout=5.0,
    tick=0.02,
    restart_backoff_base=0.01,
    restart_backoff_max=0.05,
)


# ----------------------------------------------------------------------
# Supervisor (fake clock; no processes)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestSupervisor:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_interval=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_interval=1.0, heartbeat_timeout=0.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(task_deadline=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(restart_backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(tick=0)

    def test_restart_backoff_schedule_caps(self):
        p = SupervisorPolicy(
            restart_backoff_base=0.1,
            restart_backoff_multiplier=2.0,
            restart_backoff_max=0.3,
        )
        assert p.restart_backoff(1) == pytest.approx(0.1)
        assert p.restart_backoff(2) == pytest.approx(0.2)
        assert p.restart_backoff(3) == pytest.approx(0.3)  # capped
        assert p.restart_backoff(10) == pytest.approx(0.3)

    def test_verdicts(self):
        clock = FakeClock()
        sup = Supervisor(
            SupervisorPolicy(
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                task_deadline=5.0,
            ),
            clock=clock,
        )
        sup.register(0)
        assert sup.verdict(0, alive=True) is None
        assert sup.verdict(0, alive=False) == "dead"
        # silent past the heartbeat timeout -> hung
        clock.now += 1.5
        assert sup.verdict(0, alive=True) == "hung"
        sup.beat(0)
        assert sup.verdict(0, alive=True) is None
        # a task held past the deadline -> deadline (beats keep coming)
        sup.task_started(0)
        clock.now += 6.0
        sup.beat(0)
        assert sup.verdict(0, alive=True) == "deadline"
        sup.task_finished(0)
        assert sup.verdict(0, alive=True) is None

    def test_restart_budget_and_retire(self):
        clock = FakeClock()
        events = []
        sup = Supervisor(
            SupervisorPolicy(
                max_restarts=2,
                restart_backoff_base=0.5,
                restart_backoff_multiplier=2.0,
                restart_backoff_max=10.0,
            ),
            clock=clock,
            on_event=lambda kind, info: events.append((kind, info)),
        )
        sup.register(0)
        sup.note_death(0, "dead")
        assert sup.plan_restart(0) == pytest.approx(clock.now + 0.5)
        sup.note_death(0, "hung")
        assert sup.plan_restart(0) == pytest.approx(clock.now + 1.0)
        sup.note_death(0, "dead")
        assert sup.plan_restart(0) is None  # budget spent -> retire
        s = sup.summary()
        assert s["deaths"] == 3 and s["hangs"] == 1
        assert s["restarts"] == 2 and s["retired"] == 1
        kinds = [k for k, _ in events]
        assert kinds.count("death") == 3
        assert kinds.count("retire") == 1

    def test_observer_exceptions_are_swallowed(self):
        def bad_observer(kind, info):
            raise RuntimeError("observer bug")

        sup = Supervisor(SupervisorPolicy(), on_event=bad_observer)
        sup.register(0)  # must not raise
        sup.note_death(0, "dead")
        assert sup.deaths == 1


# ----------------------------------------------------------------------
# Real processes
# ----------------------------------------------------------------------
def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.mark.slow
class TestProcessWorkerPool:
    def test_submit_drain_results(self):
        with ProcessWorkerPool(2, policy=FAST) as pool:
            futures = [pool.submit(_square, i) for i in range(6)]
            assert pool.drain(timeout=60.0)
            assert [f.result(timeout=5) for f in futures] == [
                i * i for i in range(6)
            ]
            assert pool.completed == 6
            assert not pool.broken
            assert pool.stats()["spawned"] == 2

    def test_remote_exception_carries_traceback(self):
        with ProcessWorkerPool(1, policy=FAST) as pool:
            fut = pool.submit(
                _raise_value_error, "poison", worker_label="poison-task"
            )
            with pytest.raises(RemoteTaskError) as ei:
                fut.result(timeout=60)
            assert ei.value.exc_type == "ValueError"
            assert "poison" in str(ei.value)
            notes = " ".join(getattr(ei.value, "__notes__", ()))
            assert "ValueError" in notes  # remote traceback attached
            assert "poison-task" in notes  # label attached
            # the worker survives its task's exception
            assert pool.submit(_square, 3).result(timeout=60) == 9

    def test_unpicklable_result_fails_only_the_task(self):
        with ProcessWorkerPool(1, policy=FAST) as pool:
            with pytest.raises(RemoteTaskError):
                pool.submit(_return_unpicklable).result(timeout=60)
            assert pool.submit(_square, 4).result(timeout=60) == 16

    def test_sigkill_is_detected_and_worker_restarts(self):
        with ProcessWorkerPool(1, policy=FAST) as pool:
            assert _wait_for(lambda: pool.worker_pids())
            fut = pool.submit(_sleep_return, 60.0, "never")
            assert _wait_for(lambda: 0 in pool.running_labels())
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            with pytest.raises(WorkerCrashError) as ei:
                fut.result(timeout=60)
            assert ei.value.exitcode == -signal.SIGKILL
            # the slot respawns and the pool keeps serving
            assert pool.submit(_square, 5).result(timeout=60) == 25
            stats = pool.stats()
            assert stats["deaths"] == 1 and stats["restarts"] == 1
            assert pool.worker_pids()[0] != victim

    def test_sigstop_is_declared_hung_and_killed(self):
        policy = SupervisorPolicy(
            heartbeat_interval=0.05,
            heartbeat_timeout=2.0,
            tick=0.02,
            restart_backoff_base=0.01,
        )
        with ProcessWorkerPool(1, policy=policy) as pool:
            fut = pool.submit(_sleep_return, 60.0, "never")
            assert _wait_for(lambda: 0 in pool.running_labels())
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGSTOP)
            try:
                with pytest.raises(WorkerHungError, match="heartbeat"):
                    fut.result(timeout=60)
            finally:
                # pool already SIGKILLed it, but never leave a stopped
                # process behind if the assertion failed first
                try:
                    os.kill(victim, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert pool.stats()["hangs"] == 1
            assert pool.submit(_square, 6).result(timeout=60) == 36

    def test_task_deadline_enforced(self):
        # the deadline clock starts at dispatch, so it must also cover a
        # freshly respawned worker's boot (spawn + imports) for the
        # follow-up task below
        policy = SupervisorPolicy(
            heartbeat_interval=0.05,
            heartbeat_timeout=5.0,
            task_deadline=2.0,
            tick=0.02,
            restart_backoff_base=0.01,
        )
        with ProcessWorkerPool(1, policy=policy) as pool:
            fut = pool.submit(_sleep_return, 60.0, "never")
            with pytest.raises(WorkerHungError, match="deadline"):
                fut.result(timeout=60)
            # a fast task is fine under the same deadline
            assert pool.submit(_square, 7).result(timeout=60) == 49
            assert pool.stats()["deadline_kills"] == 1

    def test_restart_budget_exhaustion_breaks_pool(self):
        policy = SupervisorPolicy(
            heartbeat_interval=0.05,
            heartbeat_timeout=5.0,
            max_restarts=0,
            tick=0.02,
        )
        with ProcessWorkerPool(1, policy=policy) as pool:
            fut = pool.submit(_sleep_return, 60.0, "never")
            queued = pool.submit(_square, 8)  # waits behind the blocker
            assert _wait_for(lambda: 0 in pool.running_labels())
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                fut.result(timeout=60)
            # no restart budget -> the only slot retires -> pool broken;
            # queued work fails loudly instead of hanging forever
            with pytest.raises(PoolBrokenError):
                queued.result(timeout=60)
            assert _wait_for(lambda: pool.broken)
            with pytest.raises(PoolBrokenError):
                pool.submit(_square, 9)

    def test_shutdown_without_wait_fails_inflight_futures(self):
        pool = ProcessWorkerPool(1, policy=FAST)
        try:
            fut = pool.submit(_sleep_return, 60.0, "never")
            assert _wait_for(lambda: 0 in pool.running_labels())
        finally:
            pool.shutdown(wait=False)
        with pytest.raises(PoolBrokenError):
            fut.result(timeout=10)

    def test_warm_spawns_and_imports(self):
        with ProcessWorkerPool(2, policy=FAST) as pool:
            assert pool.warm(modules=("repro.gmbe",), hold_s=0.2)
            assert len(pool.worker_pids()) == 2
            assert pool.completed == 2  # one warmup task per worker
