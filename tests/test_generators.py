"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    block_overlap_bipartite,
    complete_bipartite,
    crown_graph,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
)


class TestComplete:
    def test_sizes(self):
        g = complete_bipartite(3, 5)
        assert g.n_edges == 15
        assert g.degrees_u.tolist() == [5, 5, 5]

    def test_single_maximal_biclique(self):
        from repro.core import reference_mbe

        g = complete_bipartite(3, 4)
        assert len(reference_mbe(g)) == 1


class TestCrown:
    def test_structure(self):
        g = crown_graph(4)
        assert g.n_edges == 4 * 3
        for i in range(4):
            assert not g.has_edge(i, i)

    def test_known_count(self):
        """Crown S_n^0 has 2^n - 2 maximal bicliques for n >= 2."""
        from repro.core import reference_mbe

        for n in (3, 4, 5):
            assert len(reference_mbe(crown_graph(n))) == 2**n - 2


class TestRandom:
    def test_deterministic(self):
        g1 = random_bipartite(20, 15, 0.2, seed=7)
        g2 = random_bipartite(20, 15, 0.2, seed=7)
        assert set(g1.edges()) == set(g2.edges())

    def test_seed_changes_graph(self):
        g1 = random_bipartite(20, 15, 0.2, seed=7)
        g2 = random_bipartite(20, 15, 0.2, seed=8)
        assert set(g1.edges()) != set(g2.edges())

    def test_density_roughly_p(self):
        g = random_bipartite(100, 100, 0.3, seed=1)
        assert 0.25 < g.n_edges / 10000 < 0.35

    def test_extreme_p(self):
        assert random_bipartite(5, 5, 0.0, seed=0).n_edges == 0
        assert random_bipartite(5, 5, 1.0, seed=0).n_edges == 25


class TestPowerLaw:
    def test_deterministic(self):
        g1 = power_law_bipartite(200, 100, 800, seed=3)
        g2 = power_law_bipartite(200, 100, 800, seed=3)
        assert set(g1.edges()) == set(g2.edges())

    def test_edge_count_near_target(self):
        g = power_law_bipartite(500, 300, 3000, seed=1)
        assert 0.5 * 3000 <= g.n_edges <= 3000

    def test_has_skew(self):
        g = power_law_bipartite(800, 400, 5000, exponent_v=1.8, seed=2)
        degs = g.degrees_v
        assert degs.max() > 4 * max(1.0, degs.mean())


class TestPlanted:
    def test_blocks_are_bicliques(self):
        g = planted_bicliques(30, 20, [(5, 4), (6, 3)], seed=1)
        from repro.core import verify_biclique, reference_mbe

        # Each planted block appears inside some maximal biclique.
        found = reference_mbe(g)
        sizes = {(len(b.left), len(b.right)) for b in found}
        assert any(a >= 5 and b >= 4 for a, b in sizes)

    def test_block_too_large_rejected(self):
        with pytest.raises(ValueError):
            planted_bicliques(4, 4, [(5, 2)])

    def test_overlap_shares_u_vertices(self):
        g = planted_bicliques(40, 30, [(8, 5), (8, 5)], overlap=0.5, seed=2)
        assert g.n_edges <= 2 * 8 * 5  # shared U rows overlap in edges? sanity

    def test_noise_adds_edges(self):
        g0 = planted_bicliques(30, 20, [(4, 4)], noise_p=0.0, seed=3)
        g1 = planted_bicliques(30, 20, [(4, 4)], noise_p=0.2, seed=3)
        assert g1.n_edges > g0.n_edges


class TestBlockOverlap:
    def test_deterministic(self):
        kw = dict(memberships_u=2.0, memberships_v=1.5, intra_p=0.4, seed=9)
        g1 = block_overlap_bipartite(100, 50, 8, **kw)
        g2 = block_overlap_bipartite(100, 50, 8, **kw)
        assert set(g1.edges()) == set(g2.edges())

    def test_density_grows_with_p(self):
        lo = block_overlap_bipartite(100, 50, 8, intra_p=0.1, seed=1)
        hi = block_overlap_bipartite(100, 50, 8, intra_p=0.8, seed=1)
        assert hi.n_edges > lo.n_edges
