"""Tests for the ParMBE parallel baseline."""

import pytest

from repro.core import BicliqueCollector, parmbe, reference_mbe
from repro.graph import power_law_bipartite, random_bipartite


class TestCorrectness:
    def test_vs_oracle(self, paper_graph):
        col = BicliqueCollector()
        res = parmbe(paper_graph, col)
        assert res.n_maximal == 6
        assert col.as_set() == reference_mbe(paper_graph)

    def test_random_graphs(self):
        for seed in range(4):
            g = random_bipartite(12, 9, 0.35, seed=seed)
            col = BicliqueCollector()
            parmbe(g, col)
            assert col.as_set() == reference_mbe(g)

    def test_threads_match_serial(self):
        g = power_law_bipartite(150, 80, 700, seed=2)
        serial = BicliqueCollector()
        threaded = BicliqueCollector()
        r1 = parmbe(g, serial, mode="serial")
        r2 = parmbe(g, threaded, mode="threads", n_threads=4)
        assert serial.as_set() == threaded.as_set()
        assert r1.n_maximal == r2.n_maximal

    def test_unknown_mode_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            parmbe(paper_graph, mode="gpu")


class TestScheduling:
    def test_extras_present(self, paper_graph):
        res = parmbe(paper_graph)
        assert "schedule" in res.extras
        assert len(res.extras["task_costs"]) == len(res.extras["task_nodes"])

    def test_more_workers_not_slower(self):
        g = power_law_bipartite(200, 100, 900, seed=1)
        r1 = parmbe(g, n_workers=1)
        r96 = parmbe(g, n_workers=96)
        assert r96.sim_time <= r1.sim_time
        assert r1.n_maximal == r96.n_maximal

    def test_single_worker_makespan_is_total_work(self):
        g = random_bipartite(20, 14, 0.3, seed=5)
        r = parmbe(g, n_workers=1)
        total = sum(r.extras["task_costs"])
        assert r.sim_time == pytest.approx(total)

    def test_speedup_bounded_by_worker_count(self):
        g = power_law_bipartite(200, 100, 900, seed=3)
        r1 = parmbe(g, n_workers=1)
        r8 = parmbe(g, n_workers=8)
        assert r1.sim_time / max(r8.sim_time, 1e-12) <= 8.0 + 1e-9
