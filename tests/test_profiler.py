"""Tests for the kernel profiler and chrome-trace export."""

import json

import pytest

from repro.bench.common import scale_device
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim import A100, chrome_trace_events, profile_run, write_chrome_trace
from repro.graph import power_law_bipartite


@pytest.fixture(scope="module")
def run():
    g = power_law_bipartite(300, 160, 1500, seed=31)
    return gmbe_gpu(
        g,
        device=scale_device(A100),
        config=GMBEConfig(bound_height=4, bound_size=40),
    )


class TestProfile:
    def test_metrics_in_range(self, run):
        p = profile_run(run)
        assert 0.0 < p.warp_execution_efficiency <= 1.0
        assert 0.0 <= p.memory_utilization <= 1.0
        assert 0.0 < p.achieved_occupancy <= 1.0
        assert 0.0 < p.sm_efficiency <= 1.0
        assert p.sim_seconds == pytest.approx(run.sim_time)

    def test_counts_match_report(self, run):
        p = profile_run(run)
        rep = run.extras["report"]
        assert p.tasks_executed == rep.tasks_executed
        assert p.tasks_split == rep.tasks_split
        assert p.queue_ops > 0  # splitting happened

    def test_report_text(self, run):
        text = profile_run(run).report()
        assert "Warp execution efficiency" in text
        assert "us" in text

    def test_rejects_non_gpu_results(self):
        from repro.core import oombea

        g = power_law_bipartite(50, 30, 200, seed=1)
        with pytest.raises(ValueError):
            profile_run(oombea(g))

    def test_divergent_workload_lowers_efficiency(self):
        """Hub-skewed candidates (many short rows) waste lanes vs a
        dense uniform graph."""
        from repro.graph import complete_bipartite, random_bipartite

        dense = gmbe_gpu(complete_bipartite(64, 40))
        sparse = gmbe_gpu(random_bipartite(200, 150, 0.02, seed=3))
        assert (
            profile_run(sparse).warp_execution_efficiency
            < profile_run(dense).warp_execution_efficiency
        )


class TestTrace:
    def test_events_structure(self, run):
        events = chrome_trace_events(run)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) >= run.extras["report"].tasks_executed
        for e in xs[:20]:
            assert e["dur"] > 0 and e["ts"] >= 0

    def test_write_valid_json(self, run, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(run, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == n

    def test_rejects_non_gpu_results(self):
        from repro.core import EnumerationResult

        with pytest.raises(ValueError):
            chrome_trace_events(EnumerationResult(n_maximal=0))
