"""Tests for the combined report generator."""

import pytest

from repro.bench import EXPERIMENTS, clear_cache, generate_report


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestGenerateReport:
    def test_covers_every_experiment(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13",
        }

    def test_subset_report(self):
        lines = []
        text = generate_report(
            scale=0.1, only=["table2", "fig7"], progress=lines.append
        )
        assert "Table 2" in text
        assert "Fig. 7" in text
        assert len(lines) == 2
        assert lines[0].startswith("table2: done")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            generate_report(only=["fig99"])

    def test_cli_bench_all(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "results.txt"
        rc = main(
            ["bench", "all", "--scale", "0.1", "--report", str(path)]
        )
        assert rc == 0
        text = path.read_text()
        for header in ("Table 1", "Fig. 6", "Fig. 13", "Table 2"):
            assert header in text
