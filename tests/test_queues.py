"""Tests for the two-level task-queue model."""

import pytest

from repro.gpusim import TwoLevelTaskQueue


class TestPushPop:
    def test_local_first(self):
        q = TwoLevelTaskQueue(2)
        q.push(0, 0.0, "a")
        got = q.pop_ready(0, 1.0)
        assert got == ("a", "local")

    def test_not_ready_before_avail(self):
        q = TwoLevelTaskQueue(1)
        q.push(0, 5.0, "later")
        assert q.pop_ready(0, 1.0) is None
        assert q.pop_ready(0, 5.0) == ("later", "local")

    def test_fifo_by_avail_time(self):
        q = TwoLevelTaskQueue(1)
        q.push(0, 3.0, "b")
        q.push(0, 1.0, "a")
        assert q.pop_ready(0, 10.0)[0] == "a"
        assert q.pop_ready(0, 10.0)[0] == "b"

    def test_spill_to_global_when_full(self):
        q = TwoLevelTaskQueue(1, local_capacity=2)
        assert q.push(0, 0.0, "a") == "local"
        assert q.push(0, 0.0, "b") == "local"
        assert q.push(0, 0.0, "c") == "global"
        assert q.stats.spills == 1

    def test_other_sm_reads_global(self):
        q = TwoLevelTaskQueue(2, local_capacity=0)
        q.push(0, 0.0, "x")  # forced global
        assert q.pop_ready(1, 1.0) == ("x", "global")

    def test_pop_earliest_waits(self):
        q = TwoLevelTaskQueue(1)
        q.push(0, 9.0, "future")
        payload, avail, level = q.pop_earliest(0)
        assert payload == "future" and avail == 9.0 and level == "local"

    def test_pop_earliest_steals_from_sibling(self):
        q = TwoLevelTaskQueue(2)
        q.push(0, 2.0, "sibling-task")
        got = q.pop_earliest(1)
        assert got is not None and got[0] == "sibling-task"

    def test_pop_earliest_empty(self):
        q = TwoLevelTaskQueue(2)
        assert q.pop_earliest(0) is None

    def test_len(self):
        q = TwoLevelTaskQueue(2, local_capacity=1)
        q.push(0, 0.0, 1)
        q.push(0, 0.0, 2)
        q.push(1, 0.0, 3)
        assert len(q) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TwoLevelTaskQueue(1, local_capacity=-1)


class TestStats:
    def test_op_counts(self):
        q = TwoLevelTaskQueue(1, local_capacity=1)
        q.push(0, 0.0, "a")
        q.push(0, 0.0, "b")  # spills
        q.pop_ready(0, 1.0)
        q.pop_ready(0, 1.0)
        s = q.stats
        assert s.local_enqueues == 1 and s.global_enqueues == 1
        assert s.local_dequeues + s.global_dequeues == 2
        assert s.total_ops == 4

    def test_requeues_counted_separately_from_pushes(self):
        q = TwoLevelTaskQueue(1)
        q.push(0, 0.0, "fresh")
        q.requeue(1.0, "retry")
        s = q.stats
        # a recovery re-enqueue is not fresh work: it must not inflate
        # the enqueue counters the contention model is built on
        assert s.requeues == 1
        assert s.local_enqueues + s.global_enqueues == 1
        assert s.total_ops == 1  # requeues excluded

    def test_requeued_task_is_poppable(self):
        q = TwoLevelTaskQueue(2)
        q.requeue(2.0, "retry")
        assert q.pop_ready(0, 1.0) is None  # not before avail_time
        got = q.pop_ready(0, 2.0)
        assert got is not None and got[0] == "retry"

    def test_drain_sm_empties_local_queue(self):
        q = TwoLevelTaskQueue(2)
        q.push(0, 0.0, "a")
        q.push(0, 1.0, "b")
        q.push(1, 0.0, "other-sm")
        drained = q.drain_sm(0)
        assert sorted(drained) == ["a", "b"]
        assert q.pop_ready(0, 5.0) is None  # SM 0 now empty
        assert q.pop_ready(1, 5.0)[0] == "other-sm"  # SM 1 untouched

    def test_drain_all_returns_everything(self):
        q = TwoLevelTaskQueue(2, local_capacity=1)
        q.push(0, 0.0, "a")
        q.push(0, 0.0, "spilled")  # forced global
        q.push(1, 0.0, "b")
        drained = q.drain_all()
        assert sorted(drained) == ["a", "b", "spilled"]
        assert len(q) == 0
