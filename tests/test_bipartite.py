"""Unit tests for the CSR bipartite graph."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph, EdgeListError


class TestConstruction:
    def test_from_edges_basic(self):
        g = BipartiteGraph.from_edges(3, 2, [(0, 0), (1, 1), (2, 0)])
        assert g.n_u == 3 and g.n_v == 2 and g.n_edges == 3
        assert g.neighbors_u(0).tolist() == [0]
        assert g.neighbors_v(0).tolist() == [0, 2]

    def test_duplicate_edges_collapsed(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 1), (0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 2
        assert g.neighbors_u(0).tolist() == [1]

    def test_adjacency_sorted(self):
        g = BipartiteGraph.from_edges(1, 5, [(0, 4), (0, 1), (0, 3), (0, 0)])
        nbrs = g.neighbors_u(0)
        assert nbrs.tolist() == sorted(nbrs.tolist())

    def test_empty_graph(self):
        g = BipartiteGraph.from_edges(0, 0, [])
        assert g.n_edges == 0

    def test_vertices_without_edges(self):
        g = BipartiteGraph.from_edges(4, 4, [(0, 0)])
        assert g.degree_u(3) == 0
        assert g.neighbors_v(3).tolist() == []

    def test_out_of_range_u_rejected(self):
        with pytest.raises(EdgeListError):
            BipartiteGraph.from_edges(2, 2, [(2, 0)])

    def test_out_of_range_v_rejected(self):
        with pytest.raises(EdgeListError):
            BipartiteGraph.from_edges(2, 2, [(0, -1)])

    def test_bad_shape_rejected(self):
        with pytest.raises(EdgeListError):
            BipartiteGraph.from_edges(2, 2, np.zeros((3, 3), dtype=np.int64))

    def test_from_biadjacency(self):
        m = np.array([[1, 0, 1], [0, 1, 0]])
        g = BipartiteGraph.from_biadjacency(m)
        assert g.n_edges == 3
        assert np.array_equal(g.to_biadjacency(), m)

    def test_biadjacency_roundtrip_random(self):
        rng = np.random.default_rng(5)
        m = (rng.random((7, 9)) < 0.4).astype(np.int8)
        g = BipartiteGraph.from_biadjacency(m)
        assert np.array_equal(g.to_biadjacency(), m)


class TestQueries:
    def test_degrees(self, paper_graph):
        assert paper_graph.degrees_u.tolist() == [3, 4, 1, 3, 1]
        assert paper_graph.degrees_v.tolist() == [2, 4, 3, 3]

    def test_has_edge(self, paper_graph):
        assert paper_graph.has_edge(0, 0)
        assert not paper_graph.has_edge(4, 0)

    def test_edges_iteration(self, paper_graph):
        edges = set(paper_graph.edges())
        assert len(edges) == paper_graph.n_edges
        for u, v in edges:
            assert paper_graph.has_edge(u, v)

    def test_symmetry_of_csr_directions(self, paper_graph):
        for u in range(paper_graph.n_u):
            for v in paper_graph.neighbors_u(u):
                assert u in paper_graph.neighbors_v(int(v)).tolist()


class TestTransforms:
    def test_swapped_involution(self, paper_graph):
        g2 = paper_graph.swapped().swapped()
        assert np.array_equal(g2.u_indptr, paper_graph.u_indptr)
        assert np.array_equal(g2.u_indices, paper_graph.u_indices)

    def test_swapped_exchanges_sides(self, paper_graph):
        s = paper_graph.swapped()
        assert s.n_u == paper_graph.n_v
        assert s.neighbors_u(0).tolist() == paper_graph.neighbors_v(0).tolist()

    def test_relabeled_identity(self, paper_graph):
        g2 = paper_graph.relabeled()
        assert np.array_equal(g2.u_indices, paper_graph.u_indices)

    def test_relabeled_preserves_structure(self, paper_graph):
        perm = np.array([3, 2, 1, 0])
        g2 = paper_graph.relabeled(v_perm=perm)
        for u in range(paper_graph.n_u):
            old = sorted(perm[paper_graph.neighbors_u(u)].tolist())
            assert g2.neighbors_u(u).tolist() == old

    def test_relabeled_rejects_non_permutation(self, paper_graph):
        with pytest.raises(EdgeListError):
            paper_graph.relabeled(v_perm=[0, 0, 1, 2])

    def test_relabeled_u_side(self, paper_graph):
        perm = np.array([4, 3, 2, 1, 0])
        g2 = paper_graph.relabeled(u_perm=perm)
        assert g2.degree_u(4) == paper_graph.degree_u(0)
