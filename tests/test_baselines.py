"""Cross-algorithm correctness tests for the serial baselines."""

import numpy as np
import pytest

from repro.core import (
    BicliqueCollector,
    BicliqueCounter,
    imbea,
    mbea,
    oombea,
    pmbe,
    reference_mbe,
    verify_biclique,
)
from repro.graph import (
    BipartiteGraph,
    crown_graph,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
)

ALGOS = [mbea, imbea, pmbe, oombea]


@pytest.mark.parametrize("algo", ALGOS, ids=lambda a: a.__name__)
class TestAgainstOracle:
    def test_paper_graph(self, algo, paper_graph):
        col = BicliqueCollector()
        res = algo(paper_graph, col)
        assert res.n_maximal == 6
        assert col.as_set() == reference_mbe(paper_graph)

    def test_random_graphs(self, algo):
        for seed in range(5):
            g = random_bipartite(12, 10, 0.3, seed=seed)
            col = BicliqueCollector()
            algo(g, col)
            assert col.as_set() == reference_mbe(g), f"seed={seed}"

    def test_crown(self, algo):
        g = crown_graph(7)
        col = BicliqueCollector()
        algo(g, col)
        assert col.as_set() == reference_mbe(g)

    def test_sparse(self, algo):
        g = random_bipartite(15, 12, 0.08, seed=3)
        col = BicliqueCollector()
        algo(g, col)
        assert col.as_set() == reference_mbe(g)

    def test_dense(self, algo):
        g = random_bipartite(9, 8, 0.75, seed=4)
        col = BicliqueCollector()
        algo(g, col)
        assert col.as_set() == reference_mbe(g)

    def test_swapped_side_input(self, algo):
        """|U| < |V| input exercises the side-selection preprocessing."""
        g = random_bipartite(7, 13, 0.3, seed=6)
        col = BicliqueCollector()
        algo(g, col)
        assert col.as_set() == reference_mbe(g)

    def test_empty(self, algo):
        g = BipartiteGraph.from_edges(3, 4, [])
        assert algo(g).n_maximal == 0

    def test_single_edge(self, algo):
        g = BipartiteGraph.from_edges(2, 2, [(1, 1)])
        col = BicliqueCollector()
        algo(g, col)
        assert col.bicliques == [col.bicliques[0]]
        assert col.bicliques[0].left == (1,) and col.bicliques[0].right == (1,)


class TestCrossAlgorithmAgreement:
    def test_larger_graphs_agree(self):
        for maker in (
            lambda: power_law_bipartite(300, 150, 1400, seed=1),
            lambda: planted_bicliques(60, 40, [(8, 6), (7, 5)], noise_p=0.05, overlap=0.4, seed=2),
            lambda: random_bipartite(80, 50, 0.12, seed=3),
        ):
            g = maker()
            counts = {a.__name__: a(g).n_maximal for a in ALGOS}
            assert len(set(counts.values())) == 1, counts

    def test_outputs_are_maximal_bicliques(self):
        g = random_bipartite(25, 18, 0.25, seed=8)
        col = BicliqueCollector()
        oombea(g, col)
        for b in col.bicliques:
            is_bc, is_max = verify_biclique(g, b.left, b.right)
            assert is_bc and is_max

    def test_no_duplicates(self):
        g = power_law_bipartite(200, 120, 900, seed=4)
        col = BicliqueCollector()
        res = imbea(g, col)
        assert len(col.bicliques) == len(col.as_set()) == res.n_maximal


class TestPerformanceLadder:
    """The Fig. 6 ordering: each refinement explores fewer nodes."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.graph import block_overlap_bipartite

        g = block_overlap_bipartite(
            200, 80, 10, memberships_u=1.8, memberships_v=1.5, intra_p=0.35, seed=6
        )
        return {a.__name__: a(g) for a in ALGOS}

    def test_same_counts(self, results):
        assert len({r.n_maximal for r in results.values()}) == 1

    def test_mbea_most_nodes(self, results):
        worst = results["mbea"].counters.nodes_generated
        for name in ("imbea", "pmbe", "oombea"):
            assert results[name].counters.nodes_generated <= worst

    def test_oombea_least_nodes(self, results):
        best = results["oombea"].counters.nodes_generated
        assert best <= results["imbea"].counters.nodes_generated
        assert best <= results["mbea"].counters.nodes_generated


class TestSinks:
    def test_counter_sink(self, paper_graph):
        sink = BicliqueCounter()
        mbea(paper_graph, sink)
        assert sink.count == 6
        assert sink.max_left == 4 and sink.max_right == 4

    def test_writer_sink(self, paper_graph, tmp_path):
        from repro.core import BicliqueWriter

        path = tmp_path / "out.txt"
        with path.open("w") as fh:
            sink = BicliqueWriter(fh)
            oombea(paper_graph, sink)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 6
        assert all("|" in line for line in lines)

    def test_relabel_false_gives_prepared_labels(self):
        g = random_bipartite(6, 9, 0.4, seed=2)  # will be swapped
        col_in = BicliqueCollector()
        oombea(g, col_in, relabel=True)
        for b in col_in.bicliques:
            is_bc, is_max = verify_biclique(g, b.left, b.right)
            assert is_bc and is_max
