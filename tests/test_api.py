"""Tests for the high-level convenience API."""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro import as_bipartite_graph, enumerate_maximal_bicliques
from repro.core import Biclique, reference_mbe
from repro.graph import BipartiteGraph

MATRIX = np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]], dtype=np.int8)


class TestCoercion:
    def test_graph_passthrough(self, paper_graph):
        assert as_bipartite_graph(paper_graph) is paper_graph

    def test_numpy(self):
        g = as_bipartite_graph(MATRIX)
        assert (g.n_u, g.n_v, g.n_edges) == (3, 3, 7)

    def test_scipy(self):
        g = as_bipartite_graph(csr_matrix(MATRIX))
        assert g.n_edges == 7

    def test_networkx(self):
        nxg = nx.Graph()
        nxg.add_node("u0", bipartite=0)
        nxg.add_node("v0", bipartite=1)
        nxg.add_edge("u0", "v0")
        assert as_bipartite_graph(nxg).n_edges == 1

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_bipartite_graph([1, 2, 3])


class TestEnumerate:
    def test_matches_oracle_all_algorithms(self):
        g = BipartiteGraph.from_biadjacency(MATRIX)
        ref = sorted(reference_mbe(g))
        for algo in ("gmbe", "gmbe-host", "mbea", "imbea", "pmbe", "oombea", "parmbe"):
            assert enumerate_maximal_bicliques(MATRIX, algorithm=algo) == ref

    def test_size_filter(self):
        out = enumerate_maximal_bicliques(MATRIX, min_left=2, min_right=2)
        assert out == [Biclique.make([0, 1], [0, 1]), Biclique.make([1, 2], [1, 2])]

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            enumerate_maximal_bicliques(MATRIX, algorithm="magic")

    def test_custom_config(self):
        from repro.gmbe import GMBEConfig

        out = enumerate_maximal_bicliques(
            MATRIX, config=GMBEConfig(prune=False, bound_height=1, bound_size=1)
        )
        assert len(out) == 4

    def test_deterministic_order(self):
        a = enumerate_maximal_bicliques(MATRIX)
        b = enumerate_maximal_bicliques(MATRIX, algorithm="mbea")
        assert a == b == sorted(a)

    def test_tuned_sentinel_miss_falls_back(self, tmp_path):
        out = enumerate_maximal_bicliques(
            MATRIX, config="tuned", tuning_store=tmp_path
        )
        assert out == enumerate_maximal_bicliques(MATRIX)

    def test_tuned_sentinel_tune_on_miss_persists(self, tmp_path):
        from repro.tuning import TunedConfigStore

        store = TunedConfigStore(tmp_path)
        out = enumerate_maximal_bicliques(
            MATRIX, config="tuned", tuning_store=store, tune_on_miss=True
        )
        assert out == enumerate_maximal_bicliques(MATRIX)
        assert len(store) == 1
        # The persisted entry now serves without tuning again.
        again = enumerate_maximal_bicliques(
            MATRIX, config="tuned", tuning_store=store
        )
        assert again == out

    def test_tuned_sentinel_ignored_for_cpu_baselines(self, tmp_path):
        out = enumerate_maximal_bicliques(
            MATRIX, algorithm="oombea", config="tuned",
            tuning_store=tmp_path,
        )
        assert out == enumerate_maximal_bicliques(MATRIX)

    def test_bad_config_string_rejected(self):
        with pytest.raises(ValueError, match="tuned"):
            enumerate_maximal_bicliques(MATRIX, config="fastest")


class TestSizeFilterValidation:
    def test_negative_values_rejected_with_value_in_message(self):
        with pytest.raises(ValueError, match="min_left.*-3"):
            enumerate_maximal_bicliques(MATRIX, min_left=-3)
        with pytest.raises(ValueError, match="min_right.*-1"):
            enumerate_maximal_bicliques(MATRIX, min_right=-1)

    def test_non_integral_values_rejected(self):
        with pytest.raises(ValueError, match="min_left.*1.5"):
            enumerate_maximal_bicliques(MATRIX, min_left=1.5)
        with pytest.raises(ValueError, match="min_right.*'2'"):
            enumerate_maximal_bicliques(MATRIX, min_right="2")

    def test_bool_rejected_despite_being_int_subclass(self):
        with pytest.raises(ValueError, match="min_left.*True"):
            enumerate_maximal_bicliques(MATRIX, min_left=True)

    def test_numpy_integers_accepted(self):
        out = enumerate_maximal_bicliques(
            MATRIX, min_left=np.int64(2), min_right=np.int32(2)
        )
        assert out == enumerate_maximal_bicliques(MATRIX, min_left=2, min_right=2)

    def test_zero_is_a_valid_no_op_filter(self):
        assert enumerate_maximal_bicliques(
            MATRIX, min_left=0, min_right=0
        ) == enumerate_maximal_bicliques(MATRIX)
