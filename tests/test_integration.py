"""End-to-end integration: the full pipeline a downstream user runs.

Generate a realistic workload → enumerate on the simulated GPU →
post-process (stats, cover, overlap) → certify with the independent
verifier → profile and export a trace.  One scenario, every layer.
"""

import json

import numpy as np
import pytest

from repro import enumerate_maximal_bicliques, verify_enumeration
from repro.analysis import (
    edge_coverage,
    greedy_edge_cover,
    overlap_components,
    participation_counts,
    summarize,
)
from repro.bench.common import scale_device
from repro.core import BicliqueCollector
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim import A100, profile_run, write_chrome_trace
from repro.graph import planted_bicliques


@pytest.fixture(scope="module")
def workload():
    graph = planted_bicliques(
        300, 200, [(10, 7), (8, 8)], noise_p=0.01, overlap=0.4, seed=17,
        name="integration",
    )
    collector = BicliqueCollector()
    result = gmbe_gpu(
        graph,
        collector,
        device=scale_device(A100),
        config=GMBEConfig(bound_height=6, bound_size=80),
    )
    return graph, collector, result


class TestPipeline:
    def test_enumeration_certified(self, workload):
        graph, collector, _ = workload
        report = verify_enumeration(graph, collector.bicliques, deep_check=False)
        assert report.ok, report.summary()

    def test_facade_agrees(self, workload):
        graph, collector, _ = workload
        via_facade = enumerate_maximal_bicliques(graph, algorithm="oombea")
        assert set(via_facade) == collector.as_set()

    def test_stats_reflect_planted_blocks(self, workload):
        graph, collector, _ = workload
        stats = summarize(collector.bicliques)
        assert stats.n_bicliques == collector.count
        assert stats.max_edges >= 10 * 7

    def test_cover_explains_graph(self, workload):
        graph, collector, _ = workload
        cover = greedy_edge_cover(collector.bicliques, graph, k=50)
        assert cover.coverage > 0.5
        assert edge_coverage(cover.selected, graph) == pytest.approx(
            cover.coverage
        )

    def test_participation_hubs_exist(self, workload):
        graph, collector, _ = workload
        u_counts, v_counts = participation_counts(
            collector.bicliques, graph.n_u, graph.n_v
        )
        assert u_counts.max() > 1  # overlap region vertices

    def test_overlap_clusters_blocks(self, workload):
        graph, collector, _ = workload
        big = [b for b in collector.bicliques if b.n_edges >= 40]
        comps = overlap_components(big, min_jaccard=0.15)
        assert 1 <= comps.n_components <= len(big)

    def test_profile_and_trace(self, workload, tmp_path):
        _, _, result = workload
        profile = profile_run(result)
        assert 0 < profile.warp_execution_efficiency <= 1
        path = tmp_path / "trace.json"
        n = write_chrome_trace(result, path)
        assert n > 0
        assert json.loads(path.read_text())["traceEvents"]

    def test_simulation_metadata_consistent(self, workload):
        _, collector, result = workload
        assert result.n_maximal == collector.count
        assert result.sim_time > 0
        assert result.counters.maximal == result.n_maximal
