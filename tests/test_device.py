"""Tests for GPU device specs."""

import pytest

from repro.gpusim import A100, DEVICE_PRESETS, RTX2080TI, V100, DeviceSpec


class TestPresets:
    def test_paper_sm_counts(self):
        assert A100.n_sms == 108
        assert V100.n_sms == 80
        assert RTX2080TI.n_sms == 68

    def test_paper_memory_capacities(self):
        assert A100.global_mem_bytes == 40 * 1024**3
        assert V100.global_mem_bytes == 32 * 1024**3
        assert RTX2080TI.global_mem_bytes == 11 * 1024**3

    def test_registry(self):
        assert set(DEVICE_PRESETS) == {"A100", "V100", "2080Ti"}

    def test_n_warps(self):
        assert A100.n_warps == 108 * 16


class TestBehaviour:
    def test_with_updates(self):
        d = A100.with_(warps_per_sm=32)
        assert d.warps_per_sm == 32 and d.n_sms == 108
        assert A100.warps_per_sm == 16  # original untouched

    def test_warp_efficiency_flat_then_declines(self):
        assert A100.with_(warps_per_sm=8).warp_efficiency() == 1.0
        assert A100.with_(warps_per_sm=16).warp_efficiency() == 1.0
        e24 = A100.with_(warps_per_sm=24).warp_efficiency()
        e32 = A100.with_(warps_per_sm=32).warp_efficiency()
        assert 1.0 > e24 > e32 >= 0.45

    def test_cycles_to_seconds(self):
        assert A100.cycles_to_seconds(A100.clock_hz) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0, 1, 1e9)
        with pytest.raises(ValueError):
            DeviceSpec("bad", 4, 1, -1.0)
        with pytest.raises(ValueError):
            DeviceSpec("bad", 4, 1, 1e9, block_parallel_fraction=1.5)
