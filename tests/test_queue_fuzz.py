"""Randomized differential tests for the two-level queue and scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    DeviceSpec,
    ExecOutcome,
    PersistentThreadScheduler,
    TwoLevelTaskQueue,
)

pytestmark = pytest.mark.slow  # deselect with -m "not slow"


@given(st.integers(0, 10_000), st.integers(0, 2))
@settings(max_examples=40, deadline=None)
def test_queue_never_loses_or_duplicates_items(seed, capacity_case):
    """Whatever the capacity/spill behaviour, the multiset of payloads
    pushed equals the multiset popped."""
    rng = np.random.default_rng(seed)
    capacity = [0, 4, 1000][capacity_case]
    q = TwoLevelTaskQueue(3, local_capacity=capacity)
    pushed = []
    popped = []
    now = 0.0
    for step in range(60):
        op = rng.random()
        sm = int(rng.integers(0, 3))
        now += float(rng.random())
        if op < 0.55:
            payload = step
            q.push(sm, now + float(rng.random() * 2 - 1), payload)
            pushed.append(payload)
        elif op < 0.8:
            got = q.pop_ready(sm, now)
            if got is not None:
                popped.append(got[0])
        else:
            got = q.pop_earliest(sm)
            if got is not None:
                popped.append(got[0])
    while True:
        got = q.pop_earliest(0)
        if got is None:
            break
        popped.append(got[0])
    assert sorted(pushed) == sorted(popped)
    assert len(q) == 0


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_pop_ready_respects_availability(seed):
    rng = np.random.default_rng(seed)
    q = TwoLevelTaskQueue(1, local_capacity=2)  # force some spills
    avails = {}
    for i in range(20):
        a = float(rng.random() * 10)
        avails[i] = a
        q.push(0, a, i)
    now = 5.0
    while True:
        got = q.pop_ready(0, now)
        if got is None:
            break
        assert avails[got[0]] <= now


class TestSchedulerDeterminism:
    def _run(self, seed):
        rng = np.random.default_rng(seed)
        dev = DeviceSpec("t", n_sms=2, global_mem_bytes=1 << 20, clock_hz=1e9,
                         warps_per_sm=2, local_queue_cycles=1, global_queue_cycles=2)
        costs = rng.integers(1, 50, size=20).tolist()

        def roots():
            for i, c in enumerate(costs):
                yield float(c) * 0.1, ("root", i)

        def execute(task, dev_id):
            kind, i = task
            if kind == "root" and costs[i] > 40:
                return ExecOutcome(
                    cycles=5.0,
                    children=[(5.0, ("child", i * 100 + k)) for k in range(3)],
                )
            return ExecOutcome(cycles=float(costs[i % len(costs)]))

        sched = PersistentThreadScheduler([dev], 2, roots(), execute)
        return sched.run()

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_repeatable(self, seed):
        a = self._run(seed)
        b = self._run(seed)
        assert a.makespan_cycles == b.makespan_cycles
        assert a.tasks_executed == b.tasks_executed
        assert [r.intervals for r in a.recorders] == [
            r.intervals for r in b.recorders
        ]

    def test_all_work_executed(self):
        report = self._run(3)
        # every root executes; splitting roots add 3 children each
        assert report.tasks_executed >= 20
